#!/usr/bin/env bash
# Full offline verification gate for wsp-repro.
#
# Everything runs with --offline: the workspace has no external crate
# dependencies, so no network access is ever required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release build (offline) =="
cargo build --release --offline --workspace

echo "== workspace tests (offline) =="
cargo test -q --offline --workspace

echo "== crash sweeps under a pinned seed =="
WSP_DET_SEED=42 cargo test -q --offline --test fault_injection
WSP_DET_SEED=42 cargo test -q --offline --test crash_consistency

echo "== golden traces: pinned at both recorded seeds =="
cargo test -q --offline --test golden_trace
WSP_DET_SEED=7 cargo test -q --offline --test golden_trace
WSP_DET_SEED=42 cargo test -q --offline --test golden_trace

echo "== observability error-path contracts =="
cargo test -q --offline --test observability

echo "== trace schema validation (sweep export must parse) =="
cargo run --release --offline --example trace_export -- --out target/trace-gate.jsonl

echo "== crash-sweep soak: three seeds, serial and sharded =="
for seed in 11 42 1337; do
    echo "  -- seed $seed (thread default)"
    WSP_DET_SEED=$seed cargo test -q --offline --test fault_injection
    echo "  -- seed $seed (WSP_FAULTSIM_THREADS=1)"
    WSP_DET_SEED=$seed WSP_FAULTSIM_THREADS=1 cargo test -q --offline --test fault_injection
done

echo "== cross-shard 2PC sweep: serial and sharded must agree =="
WSP_DET_SEED=7 WSP_FAULTSIM_THREADS=1 cargo test -q --offline --test fault_injection cross_shard
WSP_DET_SEED=7 WSP_FAULTSIM_THREADS=4 cargo test -q --offline --test fault_injection cross_shard

echo "== benches compile (bench feature) =="
cargo build --offline -p wsp-bench --features bench --benches

echo "== bench smoke (quick mode) =="
cargo test -q --offline -p wsp-bench --features bench

echo "== host-time throughput gate (>20% hash-table regression fails) =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr2 -- check BENCH_PR2.json

echo "== recovery-ladder time gate (>20% sweep slowdown fails) =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr3 -- check BENCH_PR3.json

echo "== epoch group-commit + shard-scaling gate =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr5 -- check BENCH_PR5.json

echo "== cross-shard 2PC throughput gate =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr6 -- check BENCH_PR6.json

echo "== FliT elision + seal-pipeline gate (epoch-32 STM floor 1.8x) =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr7 -- check BENCH_PR7.json

echo "== shared-domain triage + storm-survival gate =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr8 -- check BENCH_PR8.json

echo "== concurrent in-shard scaling + FoF-gap gate (floor 1.8x at 4 threads) =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr9 -- check BENCH_PR9.json

echo "== group-decided 2PC gate (batching floor 2.0x, coordinator floor 1.8x) =="
cargo run --release --offline -p wsp-bench --features bench --bin bench_pr10 -- check BENCH_PR10.json

echo "== grouped split-resolution sweep: serial and sharded must agree =="
WSP_FAULTSIM_THREADS=1 cargo test -q --offline --test crash_consistency grouped_split
WSP_FAULTSIM_THREADS=4 cargo test -q --offline --test crash_consistency grouped_split

echo "== lock-free interleaving sweep: fixed-seed corpus at both worker counts =="
WSP_FAULTSIM_THREADS=1 cargo test -q --release --offline --test lockfree_detect
WSP_FAULTSIM_THREADS=4 cargo test -q --release --offline --test lockfree_detect

echo "== power-storm soak: three seeds, serial and sharded must agree =="
for seed in 42 7 4242; do
    echo "  -- seed $seed (WSP_FAULTSIM_THREADS=1)"
    WSP_DET_SEED=$seed WSP_FAULTSIM_THREADS=1 \
        cargo test -q --release --offline --test fault_injection power_storm
    echo "  -- seed $seed (WSP_FAULTSIM_THREADS=4)"
    WSP_DET_SEED=$seed WSP_FAULTSIM_THREADS=4 \
        cargo test -q --release --offline --test fault_injection power_storm
done

echo "== extended mid-seal crash sweep: serial and sharded must agree =="
WSP_DET_SEED=7 WSP_FAULTSIM_THREADS=1 cargo test -q --offline --test crash_consistency mid_epoch
WSP_DET_SEED=7 WSP_FAULTSIM_THREADS=4 cargo test -q --offline --test crash_consistency mid_epoch

echo "== sharded KV determinism spot-check (single worker) =="
WSP_KV_SHARDS=1 cargo test -q --offline -p wsp-workloads shard::

echo "== deny-warnings build =="
RUSTFLAGS="-D warnings" cargo build --offline --workspace --all-targets

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "verify.sh: all gates passed"
