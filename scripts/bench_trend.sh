#!/usr/bin/env bash
# Print the recorded bench trajectory: one row per BENCH_PR*.json at the
# repository root, showing each PR's headline gate quantities. Purely a
# reporting convenience — verify.sh is the enforcement surface.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - "$@" <<'EOF'
import glob
import json
import re

def fmt(v):
    if isinstance(v, float):
        return f"{v:,.2f}" if v < 1000 else f"{v:,.0f}"
    return str(v)

def flat(prefix, node, out):
    if isinstance(node, dict):
        for k, v in node.items():
            flat(f"{prefix}.{k}" if prefix else k, v, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out.append((prefix, node))

paths = sorted(
    glob.glob("BENCH_PR*.json"),
    key=lambda p: int(re.search(r"(\d+)", p).group(1)),
)
if not paths:
    raise SystemExit("bench_trend: no BENCH_PR*.json files at the repo root")

print(f"{'pr':<4} {'schema':<22} headline gate quantities")
print("-" * 78)
for path in paths:
    with open(path) as f:
        doc = json.load(f)
    pr = re.search(r"(\d+)", path).group(1)
    schema = doc.get("schema", "?")
    metrics = []
    flat("", doc.get("gate", {}), metrics)
    head = ", ".join(f"{k}={fmt(v)}" for k, v in metrics[:4])
    if len(metrics) > 4:
        head += f", +{len(metrics) - 4} more"
    print(f"{pr:<4} {schema:<22} {head or '(no numeric gate)'}")
EOF
