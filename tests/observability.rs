//! Observability contracts on the error paths: every typed refusal is
//! traced exactly once, crash-during-restore re-climbs replay the same
//! event shapes, and the JSONL export round-trips losslessly.

use wsp_repro::cluster::ClusterSpec;
use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::obs::{self, Ctr, DiffMode, Event};
use wsp_repro::pheap::{BackendStore, HeapConfig, PersistentHeap, RecoveryLadder};
use wsp_repro::units::ByteSize;
use wsp_repro::wsp::{
    clean_failure_trace, flush_on_fail_save, restore, run_recovery_ladder, supervised_save,
    sweep_save_path, LadderInput, LadderRung, RestartStrategy, SaveBudget, SaveVerdict, WspError,
    WspSystem,
};

fn refusal_events<'a>(events: &'a [Event], subsystem: &str) -> Vec<&'a Event> {
    events
        .iter()
        .filter(|e| e.subsystem == subsystem && e.name == "refusal")
        .collect()
}

fn heap_with_root(value: u64) -> PersistentHeap {
    let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FofUndo);
    let mut tx = heap.begin();
    let p = tx.alloc(16).unwrap();
    tx.write_word(p, value).unwrap();
    tx.set_root(p).unwrap();
    tx.commit().unwrap();
    heap
}

fn partial_budget(machine: &Machine, heap: &PersistentHeap) -> SaveBudget {
    // The shared-domain formula (stage A + marker + arm + slack); see
    // wsp_repro::wsp::priority_stage_window for why the inline arithmetic left.
    SaveBudget {
        window_cap: Some(wsp_repro::wsp::priority_stage_window(machine, heap)),
        ..SaveBudget::trusting()
    }
}

// ---- exactly one typed refusal event per error return ------------------

#[test]
fn backend_recovery_refusal_is_traced_exactly_once() {
    let ((), cap) = obs::capture(|| {
        let mut machine = Machine::amd_testbed();
        machine.system_power_loss();
        machine.system_power_on();
        let err = restore(&mut machine, RestartStrategy::RestorePathReinit).unwrap_err();
        assert_eq!(err.kind(), "backend-recovery-required");
    });
    let refusals = refusal_events(cap.trace.events(), "restore");
    assert_eq!(refusals.len(), 1, "{:?}", cap.trace.events());
    assert_eq!(refusals[0].detail, "backend-recovery-required");
    assert_eq!(cap.metrics.counter(Ctr::RestoreRefusals), 1);
}

#[test]
fn partial_image_refusal_is_traced_exactly_once() {
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Busy, 3);
    let mut heap = heap_with_root(3);
    let budget = partial_budget(&machine, &heap);
    let report = supervised_save(
        &mut machine,
        &mut heap,
        SystemLoad::Busy,
        &clean_failure_trace(),
        budget,
    )
    .unwrap();
    assert_eq!(report.verdict, SaveVerdict::PartialPriority);
    machine.system_power_loss();
    machine.system_power_on();

    let ((), cap) = obs::capture(|| {
        let err = restore(&mut machine, RestartStrategy::RestorePathReinit).unwrap_err();
        assert!(matches!(err, WspError::PartialImage));
        assert_eq!(err.kind(), "partial-image");
    });
    let refusals = refusal_events(cap.trace.events(), "restore");
    assert_eq!(refusals.len(), 1);
    assert_eq!(refusals[0].detail, "partial-image");
    assert_eq!(cap.metrics.counter(Ctr::RestoreRefusals), 1);
}

#[test]
fn torn_image_refusal_is_traced_exactly_once() {
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Idle, 4);
    let save = flush_on_fail_save(
        &mut machine,
        SystemLoad::Idle,
        RestartStrategy::RestorePathReinit,
    );
    assert!(save.completed);
    // Tear one module's flash image behind the valid flag: only the
    // checksum knows, and the refusal must say "torn-image".
    machine.nvram_mut().dimms_mut()[0].tear_saved_image(512);
    machine.system_power_loss();
    machine.system_power_on();

    let ((), cap) = obs::capture(|| {
        let err = restore(&mut machine, RestartStrategy::RestorePathReinit).unwrap_err();
        assert!(matches!(err, WspError::TornImage { .. }));
        assert_eq!(err.kind(), "torn-image");
    });
    let refusals = refusal_events(cap.trace.events(), "restore");
    assert_eq!(refusals.len(), 1);
    assert_eq!(refusals[0].detail, "torn-image");
    assert_eq!(cap.metrics.counter(Ctr::RestoreRefusals), 1);
}

/// Across the whole save-path sweep, the refusal counter and refusal
/// events agree exactly with the outcomes that returned an error — no
/// silent refusals, no double counting, at any fault point.
#[test]
fn sweep_refusals_match_traced_refusals_exactly() {
    let report = sweep_save_path(
        Machine::intel_testbed,
        SystemLoad::Busy,
        RestartStrategy::RestorePathReinit,
        42,
    );
    let refused = report
        .outcomes
        .iter()
        .filter(|o| o.refusal.is_some())
        .count() as u64;
    assert!(refused > 0, "the sweep exercises pre-arm faults");
    assert_eq!(report.metrics.counter(Ctr::RestoreRefusals), refused);
    assert_eq!(
        refusal_events(report.trace.events(), "restore").len() as u64,
        refused
    );
    assert_eq!(
        report.metrics.counter(Ctr::FaultsInjected),
        report.outcomes.len() as u64
    );
    assert_eq!(
        report.metrics.counter(Ctr::RestoreAttempts),
        report.outcomes.len() as u64
    );
}

// ---- crash-during-restore re-climbs are idempotent ---------------------

/// Runs the partial-save ladder scenario, optionally crashing at a
/// rung's entry, and returns the captured ladder trace.
fn ladder_trace(crash_at: Option<LadderRung>) -> Vec<Event> {
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Busy, 9);
    let backend = RecoveryLadder::new(BackendStore::disk_array());
    let cluster = ClusterSpec::memcache_tier(50);
    let mut heap = heap_with_root(9);
    let budget = partial_budget(&machine, &heap);
    let report = supervised_save(
        &mut machine,
        &mut heap,
        SystemLoad::Busy,
        &clean_failure_trace(),
        budget,
    )
    .unwrap();
    assert_eq!(report.verdict, SaveVerdict::PartialPriority);
    machine.system_power_loss();
    machine.system_power_on();
    let ((), cap) = obs::capture(|| {
        let (report, _) = run_recovery_ladder(LadderInput {
            machine: &mut machine,
            strategy: RestartStrategy::RestorePathReinit,
            image: Some(heap.crash(false)),
            backend: &backend,
            cluster: &cluster,
            crash_at,
        });
        assert!(report.outcome.is_recovered(), "{report:?}");
    });
    cap.trace.events().to_vec()
}

/// A second outage at a rung's entry restarts the ladder from the top;
/// because rungs are idempotent until one succeeds, the re-climb after
/// the power cycle replays exactly the events of an uncrashed run.
#[test]
fn crashed_reclimb_replays_the_uncrashed_trace() {
    let baseline = ladder_trace(None);
    assert_eq!(baseline[0].name, "begin");
    for rung in [LadderRung::LocalWsp, LadderRung::HeapLogReplay] {
        let crashed = ladder_trace(Some(rung));
        let cycle = crashed
            .iter()
            .position(|e| e.name == "power_cycle")
            .unwrap_or_else(|| panic!("{rung:?}: no power_cycle event"));
        // Everything after the power cycle is a fresh climb from the
        // top: structurally identical to the baseline minus its own
        // "begin" marker. (Structural mode: timestamps shift with the
        // ladder clock, shapes and payloads must not.)
        if let Err(report) =
            obs::diff_events(&baseline[1..], &crashed[cycle + 1..], DiffMode::Structural)
        {
            panic!("{rung:?}: re-climb diverges from uncrashed run:\n{report}");
        }
    }
}

// ---- JSONL round trip --------------------------------------------------

#[test]
fn jsonl_export_round_trips_losslessly() {
    let mut system = WspSystem::new(Machine::amd_testbed());
    let ((), cap) = obs::capture(|| {
        let _ = system.power_failure_drill(SystemLoad::Busy, RestartStrategy::RestorePathReinit, 8);
    });
    assert!(!cap.trace.is_empty());
    let text = obs::trace_to_jsonl(&cap.trace);
    let parsed = obs::parse_jsonl(&text).expect("export must satisfy its own schema");
    assert_eq!(parsed.len(), cap.trace.len());
    for (p, e) in parsed.iter().zip(cap.trace.events()) {
        assert!(p.same_content(e), "round-trip changed {e} into {}", p.display());
    }
}
