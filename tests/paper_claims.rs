//! The paper's headline quantitative claims, asserted against the
//! reproduction at reduced (but shape-preserving) scale. Each test names
//! the claim it checks.

use wsp_repro::cache::{CpuProfile, FlushAnalysis, FlushMethod};
use wsp_repro::cluster::ClusterSpec;
use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::obs::{self, Ctr, Gauge, Hist};
use wsp_repro::pheap::{HeapConfig, PersistentHeap};
use wsp_repro::power::Psu;
use wsp_repro::units::{ByteSize, Nanos, Watts};
use wsp_repro::wsp::{
    clean_failure_trace, feasibility_matrix, supervised_save, SaveBudget, SaveVerdict,
};
use wsp_repro::workloads::{HashBenchmark, LdapBenchmark};

fn hash_bench() -> HashBenchmark {
    HashBenchmark {
        prepopulate: 20_000,
        ops: 60_000,
        region: ByteSize::mib(64),
    }
}

/// Abstract: "this approach has 1.6–13 times better runtime performance
/// than a persistent heap" — the ratio band of Figure 5.
#[test]
fn abstract_claim_1_6_to_13x() {
    let bench = hash_bench();
    let fof = |p: f64| bench.run(HeapConfig::Fof, p, 1).unwrap().time_per_op;
    let lo = bench.run(HeapConfig::FocUndo, 0.0, 1).unwrap().time_per_op;
    let hi = bench.run(HeapConfig::FocStm, 1.0, 1).unwrap().time_per_op;
    let low_ratio = lo.as_nanos() as f64 / fof(0.0).as_nanos() as f64;
    let high_ratio = hi.as_nanos() as f64 / fof(1.0).as_nanos() as f64;
    assert!(
        (1.3..2.2).contains(&low_ratio),
        "cheapest persistent config ~1.6x: got {low_ratio:.2}"
    );
    assert!(
        (9.0..17.0).contains(&high_ratio),
        "most expensive ~13x: got {high_ratio:.2}"
    );
}

/// §5.1: "the FoC + STM configuration is 6–13x slower than FoF", growing
/// with the update ratio.
#[test]
fn foc_stm_six_to_thirteen_x() {
    let bench = hash_bench();
    let mut last = 0.0f64;
    for p in [0.0, 0.5, 1.0] {
        let foc = bench.run(HeapConfig::FocStm, p, 2).unwrap().time_per_op;
        let fof = bench.run(HeapConfig::Fof, p, 2).unwrap().time_per_op;
        let ratio = foc.as_nanos() as f64 / fof.as_nanos() as f64;
        assert!(
            (4.5..17.0).contains(&ratio),
            "p={p}: ratio {ratio:.1} outside the paper band"
        );
        assert!(ratio > last, "penalty must grow with update ratio");
        last = ratio;
    }
}

/// §5.1: read-only FoC + UL overhead is ~60% (transactional-context
/// creation dominates short read-only operations).
#[test]
fn foc_undo_read_only_overhead_sixty_percent() {
    let bench = hash_bench();
    let ul = bench.run(HeapConfig::FocUndo, 0.0, 3).unwrap().time_per_op;
    let fof = bench.run(HeapConfig::Fof, 0.0, 3).unwrap().time_per_op;
    let overhead = ul.as_nanos() as f64 / fof.as_nanos() as f64 - 1.0;
    assert!(
        (0.35..0.95).contains(&overhead),
        "read-only undo overhead ~60%: got {:.0}%",
        overhead * 100.0
    );
}

/// Table 1: WSP ~2.4x Mnemosyne on the OpenLDAP insert workload.
#[test]
fn table1_wsp_2_4x_mnemosyne() {
    let bench = LdapBenchmark {
        entries: 4_000,
        region: ByteSize::mib(32),
        per_op_overhead: Nanos::new(10_000),
    };
    let mnemosyne = bench.run(HeapConfig::FocStm, 4).unwrap();
    let wsp = bench.run(HeapConfig::Fof, 4).unwrap();
    let speedup = wsp.updates_per_sec / mnemosyne.updates_per_sec;
    assert!(
        (1.8..3.2).contains(&speedup),
        "paper: 2.4x; got {speedup:.2}x"
    );
}

/// Table 2 + §5.3: worst-case flushes of 1.3–2.8 ms, always under 5 ms,
/// and 2.5–80x smaller than the measured windows.
#[test]
fn save_times_within_windows() {
    for profile in CpuProfile::paper_testbeds() {
        let t = FlushAnalysis::new(profile.clone())
            .state_save_time(FlushMethod::Wbinvd, profile.machine_cache());
        assert!(t.as_millis_f64() < 5.0, "{}: {t}", profile.name);
    }
    for row in feasibility_matrix() {
        let ratio = row.window.as_secs_f64() / row.save_time.as_secs_f64();
        assert!(
            (2.5..400.0).contains(&ratio),
            "{} + {}: window/save {ratio:.1}",
            row.machine,
            row.psu
        );
    }
}

/// Abstract: "flush-on-fail can complete safely within 2–35% of the
/// residual energy window" (we allow the AMD 400 W unit's roomier
/// window to push below 2%).
#[test]
fn save_fraction_band() {
    for row in feasibility_matrix() {
        let f = row.fraction.unwrap();
        assert!(f < 0.35, "{} + {}: {f:.3}", row.machine, row.psu);
        assert!(row.fits);
    }
}

/// §5.2: measured windows span 10–400 ms depending on PSU and load.
#[test]
fn fig7_window_range() {
    let mut windows: Vec<f64> = Vec::new();
    for psu in Psu::paper_psus() {
        let loads = if psu.rated.get() >= 700.0 {
            [350.0, 200.0]
        } else {
            [120.0, 60.0]
        };
        for w in loads {
            windows.push(psu.residual_window(Watts::new(w)).as_millis_f64());
        }
    }
    let min = windows.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = windows.iter().cloned().fold(0.0, f64::max);
    assert!((9.0..12.0).contains(&min), "min window {min} ms");
    assert!((300.0..430.0).contains(&max), "max window {max} ms");
}

/// §2: a single 256 GB server at 0.5 GB/s takes over 8 minutes to
/// recover from the back end.
#[test]
fn intro_recovery_arithmetic() {
    let mut spec = ClusterSpec::memcache_tier(1);
    spec.replay_overhead = 1.0;
    assert!(spec.backend_recovery_time(1).as_secs_f64() > 8.0 * 60.0);
}

/// §6 (SCMs): slower-writing memories widen flush-on-fail's advantage —
/// the flush-on-commit penalty grows with the write penalty while the
/// save-path cost grows only with cache size.
#[test]
fn scm_widen_fof_advantage() {
    let bench = HashBenchmark {
        prepopulate: 2_000,
        ops: 6_000,
        region: ByteSize::mib(8),
    };
    let dram_profile = CpuProfile::intel_c5528();
    let scm_profile = CpuProfile::intel_c5528().with_scm(10.0);
    let ratio_on = |profile: CpuProfile| {
        let overheads = wsp_repro::pheap::OverheadModel::default();
        let run = |config| {
            let mut heap = wsp_repro::pheap::PersistentHeap::create_with(
                ByteSize::mib(8),
                config,
                profile.clone(),
                overheads,
            );
            let table = wsp_repro::workloads::PmHashTable::create(&mut heap, 512).unwrap();
            let t0 = heap.elapsed();
            for k in 0..bench.ops {
                table.insert(&mut heap, k % 2_000, k).unwrap();
            }
            (heap.elapsed() - t0).as_nanos() as f64
        };
        run(HeapConfig::FocUndo) / run(HeapConfig::Fof)
    };
    let dram_ratio = ratio_on(dram_profile);
    let scm_ratio = ratio_on(scm_profile);
    assert!(
        scm_ratio > dram_ratio * 1.3,
        "SCM should widen the gap: DRAM {dram_ratio:.1}x vs SCM {scm_ratio:.1}x"
    );
}

/// Builds the small committed heap the supervised-save claims run over.
fn claims_heap() -> PersistentHeap {
    let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FofUndo);
    let mut tx = heap.begin();
    let p = tx.alloc(16).unwrap();
    tx.write_word(p, 1).unwrap();
    tx.set_root(p).unwrap();
    tx.commit().unwrap();
    heap
}

/// Table 3, re-asserted through the observability layer: on every paper
/// testbed and load, the *traced* supervised save — context save,
/// priority flush, bulk cache flush, NVDIMM arm — fits inside the
/// *traced* residual-energy window, using well under the abstract's 35%
/// bound.
#[test]
fn traced_supervised_save_fits_the_residual_window() {
    for make in [Machine::intel_testbed, Machine::amd_testbed] {
        for load in SystemLoad::both() {
            let mut machine = make();
            machine.apply_load(load, 13);
            let name = machine.profile().name.clone();
            let mut heap = claims_heap();
            let ((), cap) = obs::capture(|| {
                let report = supervised_save(
                    &mut machine,
                    &mut heap,
                    load,
                    &clean_failure_trace(),
                    SaveBudget::trusting(),
                )
                .unwrap();
                assert_eq!(report.verdict, SaveVerdict::Complete);
            });
            assert_eq!(cap.metrics.counter(Ctr::SupervisedComplete), 1);
            let window = cap.metrics.gauge(Gauge::ResidualWindow);
            assert!(window > 0, "{name} {}", load.label());
            let used = cap.metrics.hist(Hist::SupervisorUsed).max().as_nanos() as i64;
            assert!(used <= window, "{name} {}: used {used} > window {window}", load.label());
            assert!(
                (used as f64) < 0.35 * window as f64,
                "{name} {}: {:.1}% of the window",
                load.label(),
                100.0 * used as f64 / window as f64
            );
            // Both flush stages are individually metered and together
            // stay inside the total the supervisor reported.
            let stages = cap.metrics.hist(Hist::StageA).max() + cap.metrics.hist(Hist::StageB).max();
            assert!(stages.as_nanos() as i64 <= used, "{name} {}", load.label());
        }
    }
}

/// §4's staging contract, visible in the event stream: the heap's
/// priority lines (log + metadata) are flushed in stage A strictly
/// before the bulk stage-B flush runs, and the line counts show up in
/// the counters.
#[test]
fn priority_lines_flush_first_in_the_trace() {
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Busy, 17);
    let mut heap = claims_heap();
    let ((), cap) = obs::capture(|| {
        let report = supervised_save(
            &mut machine,
            &mut heap,
            SystemLoad::Busy,
            &clean_failure_trace(),
            SaveBudget::trusting(),
        )
        .unwrap();
        assert_eq!(report.verdict, SaveVerdict::Complete);
    });
    let events = cap.trace.events();
    let pos = |sub: &str, name: &str| {
        events
            .iter()
            .position(|e| e.subsystem == sub && e.name == name)
            .unwrap_or_else(|| panic!("no {sub}/{name} event in the save trace"))
    };
    let priority = pos("pheap", "priority_flush");
    let stage_a = pos("supervisor", "stage_a_flushed");
    let stage_b = pos("supervisor", "stage_b_flushed");
    assert!(
        priority < stage_a && stage_a < stage_b,
        "staging order: priority_flush@{priority}, stage_a@{stage_a}, stage_b@{stage_b}"
    );
    assert_eq!(cap.metrics.counter(Ctr::PriorityFlushes), 1);
    assert!(cap.metrics.counter(Ctr::PriorityLinesFlushed) > 0);
}
