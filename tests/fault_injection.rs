//! The fault-injection engine, driven end to end: every save-path
//! crash point on both testbeds at both loads, and every
//! mid-transaction crash point in every heap configuration, across
//! randomized seeds under the deterministic harness.

use wsp_det::{gen, Forall};
use wsp_repro::pheap::HeapConfig;
use wsp_repro::wsp::{
    ladder_crash_points, save_path_crash_points, sweep_mid_transaction, sweep_recovery_ladder,
    sweep_save_path, LadderFault, LadderRung, RecoveryOutcome, RestartStrategy, SaveFault,
    SaveStep, FLUSH_BATCHES,
};
use wsp_repro::machine::{Machine, SystemLoad};

/// The sweep enumerates one point per Figure-4 step (the ACPI suspend
/// step only on the strawman strategy), one per cache-flush batch, and
/// one ultracap brown-out per NVDIMM module.
#[test]
fn crash_point_enumeration_is_exhaustive() {
    let machine = Machine::intel_testbed();
    let modules = machine.nvram().dimms().len();
    let points = save_path_crash_points(RestartStrategy::RestorePathReinit, modules);
    assert_eq!(points.len(), 9 + FLUSH_BATCHES + modules);
    // Every injectable Figure-4 step is present.
    for step in [
        SaveStep::PowerFailInterrupt,
        SaveStep::InterruptAllProcessors,
        SaveStep::SaveContexts,
        SaveStep::FlushCaches,
        SaveStep::HaltOthers,
        SaveStep::SetupResumeBlock,
        SaveStep::MarkImageValid,
        SaveStep::InitiateNvdimmSave,
        SaveStep::Halt,
    ] {
        assert!(points.contains(&SaveFault::BeforeStep(step)), "{step:?}");
    }
}

/// The all-or-nothing invariant holds at every crash point on both
/// testbeds, at both loads, for randomized sentinel seeds. The sweep
/// itself panics on any violation; exactly one injection point (power
/// dying after the NVDIMM arm) may recover locally.
#[test]
fn save_path_sweep_holds_across_testbeds_loads_and_seeds() {
    Forall::new(gen::triple(
        gen::any::<u64>(),
        gen::any::<bool>(),
        gen::any::<bool>(),
    ))
    .cases(8)
    .check(|&(seed, intel, busy)| {
        let make = if intel {
            Machine::intel_testbed
        } else {
            Machine::amd_testbed
        };
        let load = if busy {
            SystemLoad::Busy
        } else {
            SystemLoad::Idle
        };
        let report = sweep_save_path(make, load, RestartStrategy::RestorePathReinit, seed);
        assert_eq!(report.locally_restored, 1);
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.locally_restored == o.fault.recoverable()));
    });
}

/// Every heap configuration survives a crash after every prefix of an
/// open transaction, across seeds: FoC+STM and FoF+STM never leak
/// buffered writes, FoC+UL and FoF+UL roll back from the undo log, and
/// the plain FoF heap keeps exactly the prefix that ran.
#[test]
fn mid_transaction_sweep_holds_for_every_config_and_seed() {
    Forall::new(gen::any::<u64>()).cases(6).check(|&seed| {
        for config in HeapConfig::all() {
            let report = sweep_mid_transaction(config, seed);
            assert!(report.crash_points >= 2, "{config}");
        }
    });
}

/// The ladder sweep enumerates every degraded-mode fault class: glitch
/// storms, both window shortfalls, a mid-save brown-out, aged cells,
/// save-command flakes and dead commands, a crash at each recovery
/// rung, plus a torn save and a cell brown-out per NVDIMM module.
#[test]
fn ladder_fault_enumeration_is_exhaustive() {
    let machine = Machine::intel_testbed();
    let modules = machine.nvram().dimms().len();
    let points = ladder_crash_points(modules);
    assert_eq!(points.len(), 11 + 2 * modules);
    for fault in [
        LadderFault::GlitchStorm { dips: 3 },
        LadderFault::WindowShortfall { fatal: false },
        LadderFault::WindowShortfall { fatal: true },
        LadderFault::BrownOutMidSave,
        LadderFault::AgedUltracap { cycles: 150_000 },
        LadderFault::SaveCommandFlake {
            module: 0,
            failures: 2,
        },
        LadderFault::SaveCommandStuck { module: 0 },
        LadderFault::CrashDuringRestore {
            rung: LadderRung::LocalWsp,
        },
        LadderFault::CrashDuringRestore {
            rung: LadderRung::HeapLogReplay,
        },
        LadderFault::CrashDuringRestore {
            rung: LadderRung::ClusterRebuild,
        },
    ] {
        assert!(points.contains(&fault), "{fault:?}");
    }
    for module in 0..modules {
        assert!(points.contains(&LadderFault::TornSave { module }));
        assert!(points.contains(&LadderFault::UltracapBrownOut { module }));
    }
}

/// The degraded-mode contract holds for every fault class on both
/// testbeds, at both loads, across randomized seeds: the sweep itself
/// panics on any violation, so reaching the count assertions means
/// every injection ended in `Recovered` or a typed `Degraded` verdict —
/// zero panics, zero data loss without detection. Exactly the two
/// glitch storms are absorbed without an outage, and exactly four
/// classes recover (the partial-window save via log replay, the
/// save-command flake, and the crashes during the two recovering
/// rungs); every other class degrades with the loss quantified.
#[test]
fn recovery_ladder_sweep_holds_across_testbeds_loads_and_seeds() {
    Forall::new(gen::triple(
        gen::any::<u64>(),
        gen::any::<bool>(),
        gen::any::<bool>(),
    ))
    .cases(6)
    .check(|&(seed, intel, busy)| {
        let make = if intel {
            Machine::intel_testbed
        } else {
            Machine::amd_testbed
        };
        let load = if busy {
            SystemLoad::Busy
        } else {
            SystemLoad::Idle
        };
        let report = sweep_recovery_ladder(make, load, seed);
        assert_eq!(report.glitches_ignored, 2);
        assert_eq!(report.recovered, 4);
        assert_eq!(
            report.recovered + report.degraded + report.glitches_ignored,
            report.outcomes.len()
        );
        for point in &report.outcomes {
            match (&point.outcome, point.fault) {
                (None, LadderFault::GlitchStorm { .. }) => {}
                (None, fault) => panic!("{fault:?} produced no recovery outcome"),
                (Some(RecoveryOutcome::Recovered { .. }), _) => {}
                (Some(RecoveryOutcome::Degraded { rung, reason, .. }), fault) => {
                    assert_eq!(*rung, LadderRung::ClusterRebuild, "{fault:?}");
                    assert!(!reason.is_empty(), "{fault:?}: untyped degradation");
                }
            }
        }
    });
}

/// Bitwise reproducibility: the same seed yields an identical sweep —
/// outcome by outcome — on repeated runs, regardless of how
/// `WSP_FAULTSIM_THREADS` shards the points (per-point PRNGs are split
/// serially before dispatch, so sharding cannot perturb them).
#[test]
fn recovery_ladder_sweep_is_reproducible() {
    let a = sweep_recovery_ladder(Machine::intel_testbed, SystemLoad::Busy, 0xd15ea5e);
    let b = sweep_recovery_ladder(Machine::intel_testbed, SystemLoad::Busy, 0xd15ea5e);
    assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.glitches_ignored, b.glitches_ignored);
}

/// The cross-shard 2PC sweep covers every protocol-step family —
/// coordinator-side and shard-side — and every point lands on one of
/// the two legal verdicts (plus exactly one typed degraded shard for
/// the lost-image point). ISSUE acceptance: at least six distinct
/// families, all-or-nothing everywhere.
#[test]
fn cross_shard_sweep_covers_every_protocol_step() {
    use wsp_repro::wsp::{sweep_cross_shard_2pc, TxnPointVerdict};

    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        for seed in [7u64, 42] {
            let report = sweep_cross_shard_2pc(config, seed);
            let families = report.families();
            assert!(
                families.len() >= 6,
                "{config} seed {seed}: only {families:?}"
            );
            for family in [
                "group-boundary",
                "interleaved-split",
                "torn-group-record",
                "coord-pre-prepare",
                "between-prepares",
                "post-prepare-no-decision",
                "post-decision-pre-commit",
                "between-shard-commits",
                "shard-mid-prepare",
                "shard-mid-commit",
                "shard-image-lost",
            ] {
                assert!(families.contains(&family), "{config} seed {seed}: {family}");
            }
            // Every point resolved all-or-nothing per transaction (the
            // in-sweep asserts already checked cell contents); the
            // verdict accounting is structural: pre-decision points
            // abort, post-decision points commit, exactly one lost
            // image degrades, and every interleaved prefix seal splits.
            assert_eq!(report.outcomes.len(), report.crash_points, "{config}");
            assert_eq!(
                report.committed + report.aborted + report.degraded + report.split,
                report.crash_points,
                "{config} seed {seed}"
            );
            assert_eq!(report.degraded, 1, "{config} seed {seed}");
            assert!(report.split > 0, "{config} seed {seed}");
            for (point, verdict) in &report.outcomes {
                match verdict {
                    TxnPointVerdict::CommittedEverywhere => {
                        assert!(point.decision_durable(), "{config}: {point:?}");
                    }
                    TxnPointVerdict::AbortedEverywhere => {
                        assert!(!point.decision_durable(), "{config}: {point:?}");
                    }
                    TxnPointVerdict::DegradedShard { .. } => {
                        assert_eq!(point.family(), "shard-image-lost", "{config}");
                    }
                    TxnPointVerdict::SplitResolved { committed, aborted } => {
                        assert_eq!(point.family(), "interleaved-split", "{config}");
                        assert!(*committed > 0 && *aborted > 0, "{config}: {point:?}");
                    }
                }
            }
        }
    }
}

/// The cross-shard sweep is deterministic for a given seed and varies
/// across seeds only in payload values, never in structure.
#[test]
fn cross_shard_sweep_is_reproducible() {
    use wsp_repro::wsp::sweep_cross_shard_2pc;

    let a = sweep_cross_shard_2pc(HeapConfig::FocUndo, 4242);
    let b = sweep_cross_shard_2pc(HeapConfig::FocUndo, 4242);
    assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
    assert_eq!(a.metrics.first_difference(&b.metrics), None);
    Forall::new(gen::any::<u64>()).cases(4).check(|&seed| {
        let r = sweep_cross_shard_2pc(HeapConfig::FocStm, seed);
        assert_eq!(r.families().len(), 11, "seed {seed}");
        assert_eq!(r.degraded, 1, "seed {seed}");
    });
}

/// The power-storm sweep: 6 storms (3 rung phases x 2 triage biases) of
/// 27 sequential micro-outages each, every one landing mid-recovery of
/// the one before. Coverage must be total — every global-triage
/// decision point cut at least once, every recovery rung interrupted —
/// and survival absolute: every sacrificed shard-epoch rebuilt, every
/// committed cross-shard transaction present afterwards (the sweep
/// panics internally on any lost cell or divergent re-climb).
#[test]
fn power_storm_survives_with_full_triage_coverage() {
    use wsp_repro::wsp::{domain_decision_points, sweep_power_storm};

    let seed = std::env::var("WSP_DET_SEED")
        .ok()
        .map_or(42, |v| v.parse().expect("WSP_DET_SEED must be a u64"));
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let report = sweep_power_storm(config, seed);
        assert_eq!(report.points.len(), 6, "{config}");
        assert_eq!(
            report.decision_cuts_covered,
            domain_decision_points(3),
            "{config} seed {seed}: every triage decision point crashed"
        );
        assert_eq!(report.crash_rungs_covered, 3, "{config} seed {seed}");
        for point in &report.points {
            let stats = &point.stats;
            assert!(stats.outages >= 24, "{config}: {:?}", point.point);
            assert!(stats.complete > 0, "{config}: {:?}", point.point);
            assert!(stats.partial > 0, "{config}: {:?}", point.point);
            assert!(stats.sacrificed > 0, "{config}: {:?}", point.point);
            assert_eq!(
                stats.rebuilt, stats.sacrificed,
                "{config}: {:?}: a sacrifice without a rebuild",
                point.point
            );
            assert!(
                stats.coordinator_shard_sacrifices >= 3,
                "{config}: {:?}: the coordinator's own shard was sacrificed \
                 with transactions in doubt",
                point.point
            );
            assert!(stats.presumed_aborts > 0, "{config}: {:?}", point.point);
            assert!(stats.rerouted_writes > 0, "{config}: {:?}", point.point);
            assert!(
                stats.reclimbs_verified > 0,
                "{config}: {:?}: interrupted recoveries re-climbed",
                point.point
            );
        }
    }
}

/// Sharding the storm sweep over worker threads is invisible: points,
/// merged trace, and metrics are bitwise identical to the serial run
/// (per-point seeds are split serially before dispatch, captures merged
/// in point order).
#[test]
fn power_storm_sweep_is_bitwise_identical_serial_vs_sharded() {
    use wsp_repro::obs;
    use wsp_repro::wsp::sweep_power_storm_threads;

    let serial = sweep_power_storm_threads(HeapConfig::FocUndo, 7, 1);
    for threads in [2, 4] {
        let sharded = sweep_power_storm_threads(HeapConfig::FocUndo, 7, threads);
        assert_eq!(
            format!("{:?}", sharded.points),
            format!("{:?}", serial.points),
            "{threads} threads"
        );
        if let Err(report) =
            obs::diff_traces(&serial.trace, &sharded.trace, obs::DiffMode::Full)
        {
            panic!("{threads}-thread storm sweep trace diverges:\n{report}");
        }
        if let Some(diff) = serial.metrics.first_difference(&sharded.metrics) {
            panic!("{threads}-thread storm sweep metrics diverge: {diff}");
        }
    }
}

/// The multi-seed soak the roadmap's verify gate runs: full coverage
/// and a clean survival verdict on every seed, for the workload-level
/// driver too.
#[test]
fn power_storm_soak_scorecard_survives() {
    use wsp_repro::workloads::PowerStormBench;

    let report = PowerStormBench::quick(HeapConfig::FocUndo).run();
    assert!(report.survived);
    assert_eq!(report.rebuilt, report.sacrificed);
    assert!(report.rerouted_writes > 0);
    assert!(report.coordinator_shard_sacrifices > 0);
}
