//! The fault-injection engine, driven end to end: every save-path
//! crash point on both testbeds at both loads, and every
//! mid-transaction crash point in every heap configuration, across
//! randomized seeds under the deterministic harness.

use wsp_det::{gen, Forall};
use wsp_repro::pheap::HeapConfig;
use wsp_repro::wsp::{
    save_path_crash_points, sweep_mid_transaction, sweep_save_path, RestartStrategy,
    SaveFault, SaveStep, FLUSH_BATCHES,
};
use wsp_repro::machine::{Machine, SystemLoad};

/// The sweep enumerates one point per Figure-4 step (the ACPI suspend
/// step only on the strawman strategy), one per cache-flush batch, and
/// one ultracap brown-out per NVDIMM module.
#[test]
fn crash_point_enumeration_is_exhaustive() {
    let machine = Machine::intel_testbed();
    let modules = machine.nvram().dimms().len();
    let points = save_path_crash_points(RestartStrategy::RestorePathReinit, modules);
    assert_eq!(points.len(), 9 + FLUSH_BATCHES + modules);
    // Every injectable Figure-4 step is present.
    for step in [
        SaveStep::PowerFailInterrupt,
        SaveStep::InterruptAllProcessors,
        SaveStep::SaveContexts,
        SaveStep::FlushCaches,
        SaveStep::HaltOthers,
        SaveStep::SetupResumeBlock,
        SaveStep::MarkImageValid,
        SaveStep::InitiateNvdimmSave,
        SaveStep::Halt,
    ] {
        assert!(points.contains(&SaveFault::BeforeStep(step)), "{step:?}");
    }
}

/// The all-or-nothing invariant holds at every crash point on both
/// testbeds, at both loads, for randomized sentinel seeds. The sweep
/// itself panics on any violation; exactly one injection point (power
/// dying after the NVDIMM arm) may recover locally.
#[test]
fn save_path_sweep_holds_across_testbeds_loads_and_seeds() {
    Forall::new(gen::triple(
        gen::any::<u64>(),
        gen::any::<bool>(),
        gen::any::<bool>(),
    ))
    .cases(8)
    .check(|&(seed, intel, busy)| {
        let make = if intel {
            Machine::intel_testbed
        } else {
            Machine::amd_testbed
        };
        let load = if busy {
            SystemLoad::Busy
        } else {
            SystemLoad::Idle
        };
        let report = sweep_save_path(make, load, RestartStrategy::RestorePathReinit, seed);
        assert_eq!(report.locally_restored, 1);
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.locally_restored == o.fault.recoverable()));
    });
}

/// Every heap configuration survives a crash after every prefix of an
/// open transaction, across seeds: FoC+STM and FoF+STM never leak
/// buffered writes, FoC+UL and FoF+UL roll back from the undo log, and
/// the plain FoF heap keeps exactly the prefix that ran.
#[test]
fn mid_transaction_sweep_holds_for_every_config_and_seed() {
    Forall::new(gen::any::<u64>()).cases(6).check(|&seed| {
        for config in HeapConfig::all() {
            let report = sweep_mid_transaction(config, seed);
            assert!(report.crash_points >= 2, "{config}");
        }
    });
}
