//! Facade-level sanity: the re-exports compose, and the types that
//! should cross threads can.

use wsp_repro::cache::CpuProfile;
use wsp_repro::machine::Machine;
use wsp_repro::pheap::{HeapConfig, PersistentHeap};
use wsp_repro::power::Psu;
use wsp_repro::units::{ByteSize, Nanos};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

#[test]
fn key_types_are_send_sync() {
    assert_send_sync::<CpuProfile>();
    assert_send_sync::<Psu>();
    assert_send_sync::<Machine>();
    assert_send_sync::<wsp_repro::nvram::NvDimm>();
    assert_send::<PersistentHeap>();
    assert_send::<wsp_repro::pheap::CrashImage>();
}

#[test]
fn crash_images_recover_across_threads() {
    // A heap crashed on one "machine" recovers on another thread — the
    // distributed-recovery shape of the paper's §6.
    let mut heap = PersistentHeap::create(ByteSize::kib(128), HeapConfig::FocUndo);
    let mut tx = heap.begin();
    let p = tx.alloc(16).unwrap();
    tx.write_word(p, 424_242).unwrap();
    tx.set_root(p).unwrap();
    tx.commit().unwrap();
    let image = heap.crash(false);

    let handle = std::thread::spawn(move || {
        let mut recovered = PersistentHeap::recover(image).unwrap();
        let root = recovered.root().unwrap();
        let mut tx = recovered.begin();
        let v = tx.read_word(root).unwrap();
        tx.commit().unwrap();
        v
    });
    assert_eq!(handle.join().unwrap(), 424_242);
}

#[test]
fn facade_modules_interoperate() {
    // Types from different crates meet in one expression.
    let machine = Machine::amd_testbed();
    let window: Nanos = machine.residual_window(wsp_repro::machine::SystemLoad::Idle);
    let save = machine.flush_analysis().state_save_time(
        wsp_repro::cache::FlushMethod::Wbinvd,
        machine.profile().machine_cache(),
    );
    assert!(save < window);
}
