//! Golden-trace regression tests: each scenario's event stream is
//! pinned bitwise — timestamps included — against a recorded JSONL file
//! under `tests/golden/`. Any change to event order, payloads, or
//! simulated timing in the save/restore/ladder stack shows up here as a
//! readable first-divergence report.
//!
//! Regenerate the corpus after an intentional change with
//!
//! ```text
//! WSP_UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the diff like any other golden update. `WSP_DET_SEED=<n>`
//! narrows a run to one seed; the corpus is recorded at seeds 42 and 7,
//! and the two recordings differ (see `goldens_are_seed_specific`).

use std::path::PathBuf;

use wsp_repro::cluster::ClusterSpec;
use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::obs::{self, Capture, DiffMode};
use wsp_repro::pheap::{BackendStore, HeapConfig, PersistentHeap, RecoveryLadder};
use wsp_repro::units::{ByteSize, Nanos};
use wsp_repro::wsp::{
    clean_failure_trace, run_recovery_ladder, supervised_save, LadderInput, RestartStrategy,
    SaveBudget, SaveVerdict, WspSystem,
};

/// Seeds the corpus is recorded at. `WSP_DET_SEED` narrows the run to a
/// single seed, which must have a recorded golden (or be recorded with
/// `WSP_UPDATE_GOLDEN=1`).
fn seeds() -> Vec<u64> {
    match std::env::var("WSP_DET_SEED") {
        Ok(v) => vec![v.parse().expect("WSP_DET_SEED must be a u64")],
        Err(_) => vec![42, 7],
    }
}

fn golden_path(scenario: &str, seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{scenario}_seed{seed}.jsonl"))
}

fn pin(scenario: &str, seed: u64, cap: &Capture) {
    let path = golden_path(scenario, seed);
    if let Err(report) = obs::check_golden(&path, &cap.trace, DiffMode::Full) {
        panic!("{scenario} (seed {seed}): {report}");
    }
}

// ---- scenario builders -------------------------------------------------
//
// Setup (machine/heap construction, budget probing) happens *outside*
// the capture so the recorded stream holds only the scenario's own
// events. Every scenario opens with a seed-bearing marker event, which
// is what makes the goldens seed-specific even where the simulated
// timings are seed-independent.

fn heap_with_root(value: u64) -> PersistentHeap {
    let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FofUndo);
    let mut tx = heap.begin();
    let p = tx.alloc(16).unwrap();
    tx.write_word(p, value).unwrap();
    tx.set_root(p).unwrap();
    tx.commit().unwrap();
    heap
}

/// A budget whose window cap admits detection + contexts + the priority
/// flush but not the bulk stage — forcing the partial-priority path.
/// [`wsp_repro::wsp::priority_stage_window`] is the shared formula the domain
/// supervisor budgets with; the inline single-shard arithmetic this
/// helper used to carry is gone.
fn partial_budget(machine: &Machine, heap: &PersistentHeap) -> SaveBudget {
    SaveBudget {
        window_cap: Some(wsp_repro::wsp::priority_stage_window(machine, heap)),
        ..SaveBudget::trusting()
    }
}

struct Rig {
    machine: Machine,
    backend: RecoveryLadder,
    cluster: ClusterSpec,
}

fn rig(seed: u64) -> Rig {
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Busy, seed);
    Rig {
        machine,
        backend: RecoveryLadder::new(BackendStore::disk_array()),
        cluster: ClusterSpec::memcache_tier(50),
    }
}

/// A clean busy-load drill: flush-on-fail save, outage, full restore.
fn clean_save_restore(seed: u64) -> Capture {
    let mut system = WspSystem::new(Machine::intel_testbed());
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        let report =
            system.power_failure_drill(SystemLoad::Busy, RestartStrategy::RestorePathReinit, seed);
        assert!(report.data_preserved, "seed {seed}");
    });
    cap
}

/// A brown-out mid cache flush: the supervisor's window cap only admits
/// stage A, so the save degrades to partial-priority.
fn mid_flush_brownout(seed: u64) -> Capture {
    let mut r = rig(seed);
    let mut heap = heap_with_root(seed);
    let budget = partial_budget(&r.machine, &heap);
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        let report = supervised_save(
            &mut r.machine,
            &mut heap,
            SystemLoad::Busy,
            &clean_failure_trace(),
            budget,
        )
        .unwrap();
        assert_eq!(report.verdict, SaveVerdict::PartialPriority, "seed {seed}");
    });
    cap
}

/// Ladder rung 1: a complete supervised save, then a full WSP resume.
fn ladder_full_resume(seed: u64) -> Capture {
    let mut r = rig(seed);
    let mut heap = heap_with_root(seed);
    r.backend.checkpoint(&heap);
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        let report = supervised_save(
            &mut r.machine,
            &mut heap,
            SystemLoad::Busy,
            &clean_failure_trace(),
            SaveBudget::trusting(),
        )
        .unwrap();
        assert_eq!(report.verdict, SaveVerdict::Complete, "seed {seed}");
        r.machine.system_power_loss();
        r.machine.system_power_on();
        let (report, _) = run_recovery_ladder(LadderInput {
            machine: &mut r.machine,
            strategy: RestartStrategy::RestorePathReinit,
            image: Some(heap.crash(true)),
            backend: &r.backend,
            cluster: &r.cluster,
            crash_at: None,
        });
        assert!(report.outcome.is_recovered(), "seed {seed}: {report:?}");
    });
    cap
}

/// Ladder rung 2: a partial save refuses the top rung and recovers by
/// heap log replay.
fn ladder_log_replay(seed: u64) -> Capture {
    let mut r = rig(seed);
    let mut heap = heap_with_root(seed);
    r.backend.checkpoint(&heap);
    let budget = partial_budget(&r.machine, &heap);
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        let report = supervised_save(
            &mut r.machine,
            &mut heap,
            SystemLoad::Busy,
            &clean_failure_trace(),
            budget,
        )
        .unwrap();
        assert_eq!(report.verdict, SaveVerdict::PartialPriority, "seed {seed}");
        r.machine.system_power_loss();
        r.machine.system_power_on();
        let (report, _) = run_recovery_ladder(LadderInput {
            machine: &mut r.machine,
            strategy: RestartStrategy::RestorePathReinit,
            image: Some(heap.crash(false)),
            backend: &r.backend,
            cluster: &r.cluster,
            crash_at: None,
        });
        assert!(report.outcome.is_recovered(), "seed {seed}: {report:?}");
    });
    cap
}

/// Ladder rung 3: no save at all — the node degrades to a cluster
/// rebuild with quantified staleness.
fn ladder_cluster_rebuild(seed: u64) -> Capture {
    let mut r = rig(seed);
    let heap = heap_with_root(seed);
    r.backend.checkpoint(&heap);
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        r.machine.system_power_loss();
        r.machine.system_power_on();
        let (report, _) = run_recovery_ladder(LadderInput {
            machine: &mut r.machine,
            strategy: RestartStrategy::RestorePathReinit,
            image: None,
            backend: &r.backend,
            cluster: &r.cluster,
            crash_at: None,
        });
        assert!(!report.outcome.is_recovered(), "seed {seed}: {report:?}");
    });
    cap
}

/// A two-shard fleet for the cross-shard 2PC scenarios: one committed
/// cell per shard, flush-on-commit (undo) heaps.
fn xshard_rig(seed: u64) -> (Vec<PersistentHeap>, Vec<wsp_repro::pheap::PmPtr>) {
    let mut heaps = Vec::with_capacity(2);
    let mut cells = Vec::with_capacity(2);
    for s in 0..2u64 {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FocUndo);
        let mut tx = heap.begin();
        let p = tx.alloc(64).unwrap();
        tx.write_word(p, 1_000 + seed + s).unwrap();
        tx.set_root(p).unwrap();
        tx.commit().unwrap();
        heaps.push(heap);
        cells.push(p);
    }
    (heaps, cells)
}

/// A clean two-shard commit through the two-phase seal, then a
/// fleet-wide crash resolved against the coordinator's decision log:
/// the transaction stays visible on both shards.
fn cross_shard_commit(seed: u64) -> Capture {
    use wsp_repro::wsp::{resolve_cross_shard, TxnCoordinator, TxnOutcome};

    let (mut heaps, cells) = xshard_rig(seed);
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        let mut coordinator = TxnCoordinator::new();
        let mut txn = coordinator.begin(2);
        txn.stage(0, cells[0].offset(), seed + 10);
        txn.stage(1, cells[1].offset(), seed + 20);
        let gtxid = txn.gtxid();
        let outcome = coordinator.commit(&mut heaps, &txn).unwrap();
        assert!(matches!(outcome, TxnOutcome::Committed), "seed {seed}");

        let coordinator_image = coordinator.crash_image();
        let images = heaps.drain(..).map(|h| Some(h.crash(false))).collect();
        let recovery = resolve_cross_shard(
            &coordinator_image,
            images,
            &ClusterSpec::memcache_tier(8),
        );
        assert!(recovery.fully_recovered(), "seed {seed}");
        assert!(recovery.decided.contains(&gtxid), "seed {seed}");
        for (s, mut shard) in recovery.shards.into_iter().enumerate() {
            let heap = shard.heap.as_mut().unwrap();
            let mut check = heap.begin();
            let got = check.read_word(cells[s]).unwrap();
            assert_eq!(got, seed + 10 + 10 * s as u64, "seed {seed} shard {s}");
            check.commit().unwrap();
        }
    });
    cap
}

/// The coordinator dies after both shards hold durable PREPARED records
/// but before its decision record: both shards recover in doubt and
/// presumed abort erases the write-set everywhere.
fn cross_shard_coordinator_death(seed: u64) -> Capture {
    use wsp_repro::wsp::{resolve_cross_shard, TxnCoordinator};

    let (mut heaps, cells) = xshard_rig(seed);
    let ((), cap) = obs::capture(|| {
        obs::emit("golden", "scenario", Nanos::ZERO, seed as i64, 0);
        let mut coordinator = TxnCoordinator::new();
        let mut txn = coordinator.begin(2);
        txn.stage(0, cells[0].offset(), seed + 10);
        txn.stage(1, cells[1].offset(), seed + 20);
        let gtxid = txn.gtxid();
        for shard in txn.participants() {
            coordinator
                .prepare_shard(&mut heaps[shard], shard, &txn)
                .unwrap();
        }
        // The decision record never lands: coordinator death.
        let coordinator_image = coordinator.crash_image();
        let images = heaps.drain(..).map(|h| Some(h.crash(false))).collect();
        let recovery = resolve_cross_shard(
            &coordinator_image,
            images,
            &ClusterSpec::memcache_tier(8),
        );
        assert!(recovery.fully_recovered(), "seed {seed}");
        assert!(!recovery.decided.contains(&gtxid), "seed {seed}");
        for (s, mut shard) in recovery.shards.into_iter().enumerate() {
            let resolution = shard.resolution.clone().unwrap();
            assert_eq!(resolution.aborted, vec![gtxid], "seed {seed} shard {s}");
            let heap = shard.heap.as_mut().unwrap();
            let mut check = heap.begin();
            let got = check.read_word(cells[s]).unwrap();
            assert_eq!(got, 1_000 + seed + s as u64, "seed {seed} shard {s}");
            check.commit().unwrap();
        }
    });
    cap
}

// ---- the pinned corpus -------------------------------------------------

#[test]
fn clean_save_restore_trace_is_pinned() {
    for seed in seeds() {
        pin("clean_save_restore", seed, &clean_save_restore(seed));
    }
}

#[test]
fn mid_flush_brownout_trace_is_pinned() {
    for seed in seeds() {
        pin("mid_flush_brownout", seed, &mid_flush_brownout(seed));
    }
}

#[test]
fn ladder_full_resume_trace_is_pinned() {
    for seed in seeds() {
        pin("ladder_full_resume", seed, &ladder_full_resume(seed));
    }
}

#[test]
fn ladder_log_replay_trace_is_pinned() {
    for seed in seeds() {
        pin("ladder_log_replay", seed, &ladder_log_replay(seed));
    }
}

#[test]
fn ladder_cluster_rebuild_trace_is_pinned() {
    for seed in seeds() {
        pin("ladder_cluster_rebuild", seed, &ladder_cluster_rebuild(seed));
    }
}

#[test]
fn cross_shard_commit_trace_is_pinned() {
    for seed in seeds() {
        pin("cross_shard_commit", seed, &cross_shard_commit(seed));
    }
}

#[test]
fn cross_shard_coordinator_death_trace_is_pinned() {
    for seed in seeds() {
        pin(
            "cross_shard_coordinator_death",
            seed,
            &cross_shard_coordinator_death(seed),
        );
    }
}

// ---- corpus-level properties -------------------------------------------

/// Re-running a scenario at the same seed reproduces the trace bitwise —
/// the property that makes golden pinning sound at all.
#[test]
fn traces_are_bitwise_reproducible() {
    for seed in seeds() {
        let a = clean_save_restore(seed);
        let b = clean_save_restore(seed);
        if let Err(report) = obs::diff_traces(&a.trace, &b.trace, DiffMode::Full) {
            panic!("seed {seed} not reproducible:\n{report}");
        }
        if let Some(diff) = a.metrics.first_difference(&b.metrics) {
            panic!("seed {seed} metrics not reproducible: {diff}");
        }
    }
}

/// The recordings at different seeds genuinely differ: the corpus pins
/// seed-specific behaviour, not one stream copied twice.
#[test]
fn goldens_are_seed_specific() {
    let a = clean_save_restore(42);
    let b = clean_save_restore(7);
    assert!(
        obs::diff_traces(&a.trace, &b.trace, DiffMode::Full).is_err(),
        "seed 42 and seed 7 recordings must differ"
    );
}

/// Deliberately swapping two save steps must fail the diff with a
/// readable report naming the first diverging event.
#[test]
fn reordered_save_step_fails_with_readable_report() {
    let cap = clean_save_restore(42);
    let mut reordered = cap.trace.events().to_vec();
    let first_step = reordered
        .iter()
        .position(|e| e.subsystem == "save" && e.name == "step")
        .expect("the drill records save steps");
    reordered.swap(first_step, first_step + 1);
    let report = obs::diff_events(cap.trace.events(), &reordered, DiffMode::Full)
        .expect_err("a reordered step must diverge");
    assert!(report.contains("diverge at event"), "report:\n{report}");
    assert!(
        report.contains("- ") && report.contains("+ "),
        "report shows both sides:\n{report}"
    );
}

/// Every committed golden file parses under the strict JSONL schema —
/// the offline gate's trace-schema validation.
#[test]
fn golden_corpus_is_schema_valid() {
    if obs::update_mode() {
        return; // corpus being rewritten by the pinning tests
    }
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{} unreadable ({e}); record the corpus with WSP_UPDATE_GOLDEN=1", dir.display()));
    let mut checked = 0usize;
    let mut lockfree = 0usize;
    for entry in entries {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_str().unwrap();
        if name.starts_with("lockfree_") {
            // Lock-free sweep corpus: its own line schema, pinned by exact
            // string replay in tests/lockfree_detect.rs. Here only check
            // that every line is a JSON object.
            assert!(!text.trim().is_empty(), "{} is empty", path.display());
            for (i, line) in text.lines().enumerate() {
                assert!(
                    line.starts_with('{') && line.ends_with('}'),
                    "{} line {}: not a JSON object",
                    path.display(),
                    i + 1
                );
            }
            lockfree += 1;
            continue;
        }
        let events = obs::parse_jsonl(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!events.is_empty(), "{} is empty", path.display());
        checked += 1;
    }
    assert!(checked >= 14, "expected >= 14 golden files, found {checked}");
    assert!(lockfree >= 7, "expected >= 7 lock-free corpus files, found {lockfree}");
}
