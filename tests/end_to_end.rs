//! End-to-end integration tests spanning the machine, power, NVRAM and
//! WSP-runtime crates: full outage drills under every strategy, PSU and
//! load combination, plus failure injection.

use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::nvram::NvramError;
use wsp_repro::power::Psu;
use wsp_repro::units::{ByteSize, Nanos};
use wsp_repro::wsp::{flush_on_fail_save, RestartStrategy, WspError, WspSystem};

#[test]
fn drills_succeed_for_all_non_acpi_strategies_on_all_testbeds() {
    for make in [Machine::intel_testbed, Machine::amd_testbed] {
        for strategy in [
            RestartStrategy::RestorePathReinit,
            RestartStrategy::VirtualizedReplay,
            RestartStrategy::RegisterShadowing,
        ] {
            for load in SystemLoad::both() {
                let mut system = WspSystem::new(make());
                let name = system.machine().profile().name.clone();
                let report = system.power_failure_drill(load, strategy, 17);
                assert!(
                    report.save.completed,
                    "{name} {} {}: save missed the window",
                    strategy.label(),
                    load.label()
                );
                assert!(
                    report.data_preserved,
                    "{name} {} {}: data lost",
                    strategy.label(),
                    load.label()
                );
            }
        }
    }
}

#[test]
fn acpi_suspend_fails_everywhere() {
    for make in [Machine::intel_testbed, Machine::amd_testbed] {
        let mut system = WspSystem::new(make());
        let report =
            system.power_failure_drill(SystemLoad::Busy, RestartStrategy::AcpiSuspend, 5);
        assert!(!report.save.completed);
        assert!(report.backend_reason.is_some());
    }
}

#[test]
fn every_psu_pairing_fits_the_save() {
    // Figure 7's pairings: each measured PSU against its testbed.
    let cases = [
        (Machine::amd_testbed as fn() -> Machine, Psu::atx_400w()),
        (Machine::amd_testbed, Psu::atx_525w()),
        (Machine::intel_testbed, Psu::atx_750w()),
        (Machine::intel_testbed, Psu::atx_1050w()),
    ];
    for (make, psu) in cases {
        let psu_name = psu.name.clone();
        let mut system = WspSystem::new(make().with_psu(psu));
        let report = system.power_failure_drill(
            SystemLoad::Busy,
            RestartStrategy::RestorePathReinit,
            31,
        );
        assert!(report.save.completed, "{psu_name}: save missed");
        assert!(report.data_preserved, "{psu_name}: data lost");
        let fraction = report.save.fraction_of_window.unwrap();
        assert!(
            fraction < 0.35,
            "{psu_name}: save used {:.0}% of the window",
            fraction * 100.0
        );
    }
}

#[test]
fn undersized_psu_forces_backend_recovery() {
    // A pathological supply whose window is shorter than the cache
    // flush: the save cannot complete and restore must refuse.
    let tiny = Psu::from_capacitance(
        "tiny",
        wsp_repro::units::Watts::new(100.0),
        wsp_repro::units::Farads::new(0.001),
    );
    let mut system = WspSystem::new(Machine::intel_testbed().with_psu(tiny));
    let report = system.power_failure_drill(
        SystemLoad::Busy,
        RestartStrategy::RestorePathReinit,
        3,
    );
    assert!(!report.save.completed);
    assert!(!report.data_preserved);
    assert!(report.backend_reason.unwrap().contains("back-end"));
}

#[test]
fn save_without_power_loss_can_resume_in_place() {
    // A false alarm: power fail signalled, save runs, but power comes
    // back before the outage. The machine can restore from the (still
    // valid) image.
    let mut machine = Machine::amd_testbed();
    let report = flush_on_fail_save(
        &mut machine,
        SystemLoad::Idle,
        RestartStrategy::RestorePathReinit,
    );
    assert!(report.completed);
    machine.system_power_loss();
    machine.system_power_on();
    let restore = wsp_repro::wsp::restore(&mut machine, RestartStrategy::RestorePathReinit)
        .expect("restore succeeds");
    assert!(restore.total > Nanos::ZERO);
}

#[test]
fn nvdimm_pool_survives_repeated_outage_cycles() {
    // 50 outage cycles: ultracaps age but stay comfortably above the
    // energy needed; data survives every round trip.
    let mut system = WspSystem::new(Machine::amd_testbed());
    for round in 0..50u64 {
        let report = system.power_failure_drill(
            SystemLoad::Idle,
            RestartStrategy::RestorePathReinit,
            round,
        );
        assert!(report.data_preserved, "round {round}");
    }
    let cycles = system.machine().nvram().dimms()[0].ultracap().cycles();
    assert!(cycles >= 50, "aging cycles recorded: {cycles}");
}

#[test]
fn direct_nvram_errors_map_to_wsp_errors() {
    let e: WspError = NvramError::NoValidImage.into();
    assert!(matches!(e, WspError::Nvram(NvramError::NoValidImage)));
    assert!(std::error::Error::source(&e).is_some());
}

#[test]
fn machine_memory_round_trips_through_outage_at_scale() {
    // Write a megabyte of patterned data across DIMM boundaries, drill,
    // verify every byte.
    let mut system = WspSystem::new(Machine::amd_testbed());
    let boundary = ByteSize::gib(4).as_u64();
    let pattern: Vec<u8> = (0..1024 * 1024).map(|i| (i % 251) as u8).collect();
    system
        .machine_mut()
        .nvram_mut()
        .write(boundary - 512 * 1024, &pattern);
    let report = system.power_failure_drill(
        SystemLoad::Idle,
        RestartStrategy::RestorePathReinit,
        77,
    );
    assert!(report.data_preserved);
    let mut buf = vec![0u8; pattern.len()];
    system.machine().nvram().read(boundary - 512 * 1024, &mut buf);
    assert_eq!(buf, pattern, "cross-DIMM pattern survived");
}
