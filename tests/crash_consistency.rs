//! Property-based crash-consistency tests: random workloads, crashes at
//! arbitrary points, recovery checked against an in-memory model.
//!
//! These are the invariants the whole reproduction stands on:
//!
//! * flush-on-commit heaps recover **exactly** the committed prefix with
//!   no flush-on-fail save at all;
//! * flush-on-fail heaps recover **everything** when the save completes
//!   and refuse local recovery when it does not;
//! * recovery is idempotent across repeated crashes — including power
//!   failures that land *during* restore, back to back.
//!
//! All randomness flows through `wsp_det` (`WSP_DET_SEED` /
//! `WSP_DET_CASES` override seed and case count); the fixed-seed
//! regression corpus at the bottom pins historically-interesting seeds.

use std::collections::HashMap;

use wsp_det::{gen, Forall, Gen};
use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::{PmAvlTree, PmHashTable};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u64),
    Remove(u8),
}

fn op() -> Gen<Op> {
    gen::one_of(vec![
        gen::pair(gen::any::<u8>(), gen::any::<u64>()).map(|(k, v)| Op::Insert(k, v)),
        gen::any::<u8>().map(Op::Remove),
    ])
}

fn ops(max: usize) -> Gen<Vec<Op>> {
    gen::vec_of(op(), 1..max)
}

fn apply_model(model: &mut HashMap<u64, u64>, op: Op) {
    match op {
        Op::Insert(k, v) => {
            model.insert(u64::from(k), v);
        }
        Op::Remove(k) => {
            model.remove(&u64::from(k));
        }
    }
}

fn apply_table(
    table: &PmHashTable,
    heap: &mut PersistentHeap,
    op: Op,
) -> Result<(), HeapError> {
    match op {
        Op::Insert(k, v) => {
            table.insert(heap, u64::from(k), v)?;
        }
        Op::Remove(k) => {
            table.remove(heap, u64::from(k))?;
        }
    }
    Ok(())
}

fn check_matches_model(
    table: &PmHashTable,
    heap: &mut PersistentHeap,
    model: &HashMap<u64, u64>,
) {
    assert_eq!(table.len(heap).unwrap(), model.len() as u64);
    for k in 0u64..256 {
        assert_eq!(
            table.get(heap, k).unwrap(),
            model.get(&k).copied(),
            "key {k} diverged"
        );
    }
}

/// Flush-on-commit heaps recover the exact committed prefix after an
/// unsaved crash, regardless of where the crash lands.
fn check_foc_recovers_committed_prefix(ops: &[Op], crash_at: usize, use_stm: bool) {
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    let mut model = HashMap::new();

    let crash_at = crash_at.min(ops.len());
    for op in &ops[..crash_at] {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
    }
    // Ops after the crash point never happen.
    let image = heap.crash(false);
    let mut recovered = PersistentHeap::recover(image).unwrap();
    let table = PmHashTable::open(&mut recovered).unwrap();
    check_matches_model(&table, &mut recovered, &model);
}

#[test]
fn foc_recovers_committed_prefix() {
    Forall::new(gen::triple(
        ops(60),
        gen::in_range(0usize..60),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|(ops, crash_at, use_stm)| {
        check_foc_recovers_committed_prefix(ops, *crash_at, *use_stm);
    });
}

/// Flush-on-fail heaps with a completed save recover everything;
/// without one they refuse local recovery.
fn check_fof_all_or_nothing(ops: &[Op], config_pick: u8, save_fits: bool) {
    let config =
        [HeapConfig::Fof, HeapConfig::FofUndo, HeapConfig::FofStm][usize::from(config_pick)];
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    let mut model = HashMap::new();
    for op in ops {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
    }
    let image = heap.crash(save_fits);
    match PersistentHeap::recover(image) {
        Ok(mut recovered) => {
            assert!(save_fits, "recovery must require the save");
            let table = PmHashTable::open(&mut recovered).unwrap();
            check_matches_model(&table, &mut recovered, &model);
        }
        Err(HeapError::Unrecoverable { .. }) => assert!(!save_fits),
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn fof_all_or_nothing() {
    Forall::new(gen::triple(
        ops(60),
        gen::in_range(0u8..3),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|(ops, config_pick, save_fits)| {
        check_fof_all_or_nothing(ops, *config_pick, *save_fits);
    });
}

/// A second crash immediately after recovery changes nothing: the
/// recovered state is durable and recovery is idempotent.
#[test]
fn recovery_is_idempotent() {
    Forall::new(ops(40)).cases(24).check(|ops| {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), HeapConfig::FocUndo);
        let table = PmHashTable::create(&mut heap, 32).unwrap();
        let mut model = HashMap::new();
        for op in ops {
            apply_table(&table, &mut heap, *op).unwrap();
            apply_model(&mut model, *op);
        }
        let once = PersistentHeap::recover(heap.crash(false)).unwrap();
        let mut twice = PersistentHeap::recover(once.crash(false)).unwrap();
        let table = PmHashTable::open(&mut twice).unwrap();
        check_matches_model(&table, &mut twice, &model);
    });
}

/// An uncommitted (aborted) transaction leaves no trace after
/// recovery, even when its writes were forced to NVRAM mid-flight.
#[test]
fn aborted_transactions_vanish() {
    Forall::new(gen::pair(gen::any::<u64>(), gen::any::<u64>()))
        .cases(24)
        .check(|&(committed, attempted)| {
            let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FocUndo);
            let ptr = {
                let mut tx = heap.begin();
                let p = tx.alloc(16).unwrap();
                tx.write_word(p, committed).unwrap();
                tx.set_root(p).unwrap();
                tx.commit().unwrap();
                p
            };
            {
                let mut tx = heap.begin();
                tx.write_word(ptr, attempted).unwrap();
                tx.abort();
            }
            let mut recovered = PersistentHeap::recover(heap.crash(false)).unwrap();
            let root = recovered.root().unwrap();
            let mut tx = recovered.begin();
            assert_eq!(tx.read_word(root).unwrap(), committed);
            tx.commit().unwrap();
        });
}

/// The AVL tree stays ordered, balanced, and model-faithful through
/// crash recovery.
#[test]
fn avl_survives_crashes_ordered() {
    Forall::new(ops(50)).cases(24).check(|ops| {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), HeapConfig::FocStm);
        let tree = PmAvlTree::create(&mut heap).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for op in ops {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(&mut heap, u64::from(k), v).unwrap();
                    model.insert(u64::from(k), v);
                }
                Op::Remove(k) => {
                    tree.remove(&mut heap, u64::from(k)).unwrap();
                    model.remove(&u64::from(k));
                }
            }
        }
        let mut recovered = PersistentHeap::recover(heap.crash(false)).unwrap();
        let tree = PmAvlTree::open(&mut recovered).unwrap();
        let entries = tree.entries(&mut recovered).unwrap();
        let expected: Vec<(u64, u64)> = model.clone().into_iter().collect();
        assert_eq!(entries, expected);
        // AVL balance: height <= 1.44 lg(n+2).
        let n = tree.len(&mut recovered).unwrap();
        let height = tree.tree_height(&mut recovered).unwrap();
        let bound = (1.44 * ((n + 2) as f64).log2()).ceil() as u64 + 1;
        assert!(height <= bound, "height {height} > bound {bound} for n={n}");
    });
}

/// The repeated-crash-during-restore sweep: power fails again while (or
/// right after) the previous restore ran, 1..=4 times back to back,
/// with fresh mutations squeezed in after the first restore. However
/// many times the power fails, the heap converges to exactly the
/// committed state — restore must itself be crash-consistent.
fn check_repeated_crash_during_restore(
    ops: &[Op],
    between: &[Op],
    crashes: usize,
    use_stm: bool,
) {
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    let mut model = HashMap::new();
    for op in ops {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
    }

    for round in 0..crashes {
        // Power failure: no flush-on-fail save, then restore.
        heap = PersistentHeap::recover(heap.crash(false)).unwrap();
        if round == 0 {
            // Mutate after the first restore, then keep crashing: later
            // rounds crash "during restore" of this newer state.
            let table = PmHashTable::open(&mut heap).unwrap();
            for op in between {
                apply_table(&table, &mut heap, *op).unwrap();
                apply_model(&mut model, *op);
            }
        }
    }

    let table = PmHashTable::open(&mut heap).unwrap();
    check_matches_model(&table, &mut heap, &model);
}

#[test]
fn repeated_crash_during_restore_sweep() {
    Forall::new(gen::pair(
        gen::triple(ops(40), gen::vec_of(op(), 0..10), gen::in_range(1usize..5)),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|((ops, between, crashes), use_stm)| {
        check_repeated_crash_during_restore(ops, between, *crashes, *use_stm);
    });
}

/// Epoch group commit trades durability granularity for throughput —
/// but never atomicity: a crash restores exactly the state of the last
/// *sealed* epoch, with every later operation vanished wholesale.
fn check_epoch_recovers_last_sealed_epoch(
    ops: &[Op],
    crash_at: usize,
    seal_every: usize,
    use_stm: bool,
) {
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    // Oversized epoch: seals happen only where this test places them,
    // so the expected durable state is known exactly.
    heap.set_epoch_size(100_000);

    let mut model = HashMap::new();
    let mut sealed_model = model.clone();
    let crash_at = crash_at.min(ops.len());
    for (i, op) in ops[..crash_at].iter().enumerate() {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
        if (i + 1) % seal_every == 0 {
            heap.seal_epoch();
            sealed_model = model.clone();
        }
    }

    let image = heap.crash(false);
    let mut recovered = PersistentHeap::recover(image).unwrap();
    let table = PmHashTable::open(&mut recovered).unwrap();
    check_matches_model(&table, &mut recovered, &sealed_model);
}

#[test]
fn epoch_recovers_last_sealed_epoch() {
    Forall::new(gen::pair(
        gen::triple(ops(60), gen::in_range(0usize..60), gen::in_range(1usize..9)),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|((ops, crash_at, seal_every), use_stm)| {
        check_epoch_recovers_last_sealed_epoch(ops, *crash_at, *seal_every, *use_stm);
    });
}

/// The mid-epoch crash-point sweep: power failure after every committed
/// transaction inside an epoch and at every durable step of the seal
/// itself (including mid-coalesced-flush) restores the last complete
/// epoch — no crash point exposes a partial one.
#[test]
fn mid_epoch_sweep_never_exposes_partial_epoch() {
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        for seed in [7u64, 42, 0x00DE_C0DE] {
            let report = wsp_repro::wsp::sweep_mid_epoch(config, seed);
            assert_eq!(report.epoch_size, 8, "{config}");
            assert!(
                report.crash_points > 23,
                "{config} seed {seed}: {} crash points",
                report.crash_points
            );
        }
    }
}

/// Fixed-seed regression corpus: seeds that exercised interesting
/// schedules stay pinned so every future run re-checks them even after
/// the default seed or generators change.
#[test]
fn fixed_seed_regression_corpus() {
    for seed in [1u64, 42, 0x5749_5350, 0x00DE_C0DE] {
        Forall::new(gen::triple(
            ops(60),
            gen::in_range(0usize..60),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|(ops, crash_at, use_stm)| {
            check_foc_recovers_committed_prefix(ops, *crash_at, *use_stm);
        });
        Forall::new(gen::triple(
            ops(60),
            gen::in_range(0u8..3),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|(ops, config_pick, save_fits)| {
            check_fof_all_or_nothing(ops, *config_pick, *save_fits);
        });
        Forall::new(gen::pair(
            gen::triple(ops(40), gen::vec_of(op(), 0..10), gen::in_range(1usize..5)),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|((ops, between, crashes), use_stm)| {
            check_repeated_crash_during_restore(ops, between, *crashes, *use_stm);
        });
        Forall::new(gen::pair(
            gen::triple(ops(60), gen::in_range(0usize..60), gen::in_range(1usize..9)),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|((ops, crash_at, seal_every), use_stm)| {
            check_epoch_recovers_last_sealed_epoch(ops, *crash_at, *seal_every, *use_stm);
        });
    }
}
