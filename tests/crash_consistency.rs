//! Property-based crash-consistency tests: random workloads, crashes at
//! arbitrary points, recovery checked against an in-memory model.
//!
//! These are the invariants the whole reproduction stands on:
//!
//! * flush-on-commit heaps recover **exactly** the committed prefix with
//!   no flush-on-fail save at all;
//! * flush-on-fail heaps recover **everything** when the save completes
//!   and refuse local recovery when it does not;
//! * recovery is idempotent across repeated crashes — including power
//!   failures that land *during* restore, back to back.
//!
//! All randomness flows through `wsp_det` (`WSP_DET_SEED` /
//! `WSP_DET_CASES` override seed and case count); the fixed-seed
//! regression corpus at the bottom pins historically-interesting seeds.

use std::collections::HashMap;

use wsp_det::{gen, Forall, Gen};
use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::{PmAvlTree, PmHashTable};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u64),
    Remove(u8),
}

fn op() -> Gen<Op> {
    gen::one_of(vec![
        gen::pair(gen::any::<u8>(), gen::any::<u64>()).map(|(k, v)| Op::Insert(k, v)),
        gen::any::<u8>().map(Op::Remove),
    ])
}

fn ops(max: usize) -> Gen<Vec<Op>> {
    gen::vec_of(op(), 1..max)
}

fn apply_model(model: &mut HashMap<u64, u64>, op: Op) {
    match op {
        Op::Insert(k, v) => {
            model.insert(u64::from(k), v);
        }
        Op::Remove(k) => {
            model.remove(&u64::from(k));
        }
    }
}

fn apply_table(
    table: &PmHashTable,
    heap: &mut PersistentHeap,
    op: Op,
) -> Result<(), HeapError> {
    match op {
        Op::Insert(k, v) => {
            table.insert(heap, u64::from(k), v)?;
        }
        Op::Remove(k) => {
            table.remove(heap, u64::from(k))?;
        }
    }
    Ok(())
}

fn check_matches_model(
    table: &PmHashTable,
    heap: &mut PersistentHeap,
    model: &HashMap<u64, u64>,
) {
    assert_eq!(table.len(heap).unwrap(), model.len() as u64);
    for k in 0u64..256 {
        assert_eq!(
            table.get(heap, k).unwrap(),
            model.get(&k).copied(),
            "key {k} diverged"
        );
    }
}

/// Flush-on-commit heaps recover the exact committed prefix after an
/// unsaved crash, regardless of where the crash lands.
fn check_foc_recovers_committed_prefix(ops: &[Op], crash_at: usize, use_stm: bool) {
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    let mut model = HashMap::new();

    let crash_at = crash_at.min(ops.len());
    for op in &ops[..crash_at] {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
    }
    // Ops after the crash point never happen.
    let image = heap.crash(false);
    let mut recovered = PersistentHeap::recover(image).unwrap();
    let table = PmHashTable::open(&mut recovered).unwrap();
    check_matches_model(&table, &mut recovered, &model);
}

#[test]
fn foc_recovers_committed_prefix() {
    Forall::new(gen::triple(
        ops(60),
        gen::in_range(0usize..60),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|(ops, crash_at, use_stm)| {
        check_foc_recovers_committed_prefix(ops, *crash_at, *use_stm);
    });
}

/// Flush-on-fail heaps with a completed save recover everything;
/// without one they refuse local recovery.
fn check_fof_all_or_nothing(ops: &[Op], config_pick: u8, save_fits: bool) {
    let config =
        [HeapConfig::Fof, HeapConfig::FofUndo, HeapConfig::FofStm][usize::from(config_pick)];
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    let mut model = HashMap::new();
    for op in ops {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
    }
    let image = heap.crash(save_fits);
    match PersistentHeap::recover(image) {
        Ok(mut recovered) => {
            assert!(save_fits, "recovery must require the save");
            let table = PmHashTable::open(&mut recovered).unwrap();
            check_matches_model(&table, &mut recovered, &model);
        }
        Err(HeapError::Unrecoverable { .. }) => assert!(!save_fits),
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn fof_all_or_nothing() {
    Forall::new(gen::triple(
        ops(60),
        gen::in_range(0u8..3),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|(ops, config_pick, save_fits)| {
        check_fof_all_or_nothing(ops, *config_pick, *save_fits);
    });
}

/// A second crash immediately after recovery changes nothing: the
/// recovered state is durable and recovery is idempotent.
#[test]
fn recovery_is_idempotent() {
    Forall::new(ops(40)).cases(24).check(|ops| {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), HeapConfig::FocUndo);
        let table = PmHashTable::create(&mut heap, 32).unwrap();
        let mut model = HashMap::new();
        for op in ops {
            apply_table(&table, &mut heap, *op).unwrap();
            apply_model(&mut model, *op);
        }
        let once = PersistentHeap::recover(heap.crash(false)).unwrap();
        let mut twice = PersistentHeap::recover(once.crash(false)).unwrap();
        let table = PmHashTable::open(&mut twice).unwrap();
        check_matches_model(&table, &mut twice, &model);
    });
}

/// An uncommitted (aborted) transaction leaves no trace after
/// recovery, even when its writes were forced to NVRAM mid-flight.
#[test]
fn aborted_transactions_vanish() {
    Forall::new(gen::pair(gen::any::<u64>(), gen::any::<u64>()))
        .cases(24)
        .check(|&(committed, attempted)| {
            let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FocUndo);
            let ptr = {
                let mut tx = heap.begin();
                let p = tx.alloc(16).unwrap();
                tx.write_word(p, committed).unwrap();
                tx.set_root(p).unwrap();
                tx.commit().unwrap();
                p
            };
            {
                let mut tx = heap.begin();
                tx.write_word(ptr, attempted).unwrap();
                tx.abort();
            }
            let mut recovered = PersistentHeap::recover(heap.crash(false)).unwrap();
            let root = recovered.root().unwrap();
            let mut tx = recovered.begin();
            assert_eq!(tx.read_word(root).unwrap(), committed);
            tx.commit().unwrap();
        });
}

/// The AVL tree stays ordered, balanced, and model-faithful through
/// crash recovery.
#[test]
fn avl_survives_crashes_ordered() {
    Forall::new(ops(50)).cases(24).check(|ops| {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), HeapConfig::FocStm);
        let tree = PmAvlTree::create(&mut heap).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for op in ops {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(&mut heap, u64::from(k), v).unwrap();
                    model.insert(u64::from(k), v);
                }
                Op::Remove(k) => {
                    tree.remove(&mut heap, u64::from(k)).unwrap();
                    model.remove(&u64::from(k));
                }
            }
        }
        let mut recovered = PersistentHeap::recover(heap.crash(false)).unwrap();
        let tree = PmAvlTree::open(&mut recovered).unwrap();
        let entries = tree.entries(&mut recovered).unwrap();
        let expected: Vec<(u64, u64)> = model.clone().into_iter().collect();
        assert_eq!(entries, expected);
        // AVL balance: height <= 1.44 lg(n+2).
        let n = tree.len(&mut recovered).unwrap();
        let height = tree.tree_height(&mut recovered).unwrap();
        let bound = (1.44 * ((n + 2) as f64).log2()).ceil() as u64 + 1;
        assert!(height <= bound, "height {height} > bound {bound} for n={n}");
    });
}

/// The repeated-crash-during-restore sweep: power fails again while (or
/// right after) the previous restore ran, 1..=4 times back to back,
/// with fresh mutations squeezed in after the first restore. However
/// many times the power fails, the heap converges to exactly the
/// committed state — restore must itself be crash-consistent.
fn check_repeated_crash_during_restore(
    ops: &[Op],
    between: &[Op],
    crashes: usize,
    use_stm: bool,
) {
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    let mut model = HashMap::new();
    for op in ops {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
    }

    for round in 0..crashes {
        // Power failure: no flush-on-fail save, then restore.
        heap = PersistentHeap::recover(heap.crash(false)).unwrap();
        if round == 0 {
            // Mutate after the first restore, then keep crashing: later
            // rounds crash "during restore" of this newer state.
            let table = PmHashTable::open(&mut heap).unwrap();
            for op in between {
                apply_table(&table, &mut heap, *op).unwrap();
                apply_model(&mut model, *op);
            }
        }
    }

    let table = PmHashTable::open(&mut heap).unwrap();
    check_matches_model(&table, &mut heap, &model);
}

#[test]
fn repeated_crash_during_restore_sweep() {
    Forall::new(gen::pair(
        gen::triple(ops(40), gen::vec_of(op(), 0..10), gen::in_range(1usize..5)),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|((ops, between, crashes), use_stm)| {
        check_repeated_crash_during_restore(ops, between, *crashes, *use_stm);
    });
}

/// Epoch group commit trades durability granularity for throughput —
/// but never atomicity: a crash restores exactly the state of the last
/// *sealed* epoch, with every later operation vanished wholesale.
fn check_epoch_recovers_last_sealed_epoch(
    ops: &[Op],
    crash_at: usize,
    seal_every: usize,
    use_stm: bool,
) {
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
    let table = PmHashTable::create(&mut heap, 32).unwrap();
    // Oversized epoch: seals happen only where this test places them,
    // so the expected durable state is known exactly.
    heap.set_epoch_size(100_000);

    let mut model = HashMap::new();
    let mut sealed_model = model.clone();
    let crash_at = crash_at.min(ops.len());
    for (i, op) in ops[..crash_at].iter().enumerate() {
        apply_table(&table, &mut heap, *op).unwrap();
        apply_model(&mut model, *op);
        if (i + 1) % seal_every == 0 {
            heap.seal_epoch();
            sealed_model = model.clone();
        }
    }

    let image = heap.crash(false);
    let mut recovered = PersistentHeap::recover(image).unwrap();
    let table = PmHashTable::open(&mut recovered).unwrap();
    check_matches_model(&table, &mut recovered, &sealed_model);
}

#[test]
fn epoch_recovers_last_sealed_epoch() {
    Forall::new(gen::pair(
        gen::triple(ops(60), gen::in_range(0usize..60), gen::in_range(1usize..9)),
        gen::any::<bool>(),
    ))
    .cases(24)
    .check(|((ops, crash_at, seal_every), use_stm)| {
        check_epoch_recovers_last_sealed_epoch(ops, *crash_at, *seal_every, *use_stm);
    });
}

/// The mid-epoch crash-point sweep: power failure after every committed
/// transaction inside an epoch and at every durable step of the seal
/// itself (including mid-coalesced-flush) restores the last complete
/// epoch — no crash point exposes a partial one.
#[test]
fn mid_epoch_sweep_never_exposes_partial_epoch() {
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        for seed in [7u64, 42, 0x00DE_C0DE] {
            let report = wsp_repro::wsp::sweep_mid_epoch(config, seed);
            assert_eq!(report.epoch_size, 8, "{config}");
            assert!(
                report.crash_points > 23,
                "{config} seed {seed}: {} crash points",
                report.crash_points
            );
        }
    }
}

/// Differential property: FliT write elision is a pure performance
/// optimisation. An elision-on heap and a reference (always-append)
/// heap driven through the same epoch workload must produce
/// bitwise-identical crash images at every crash point — after every
/// committed transaction and at every durable step of a pipelined
/// double-generation seal — and recover to identical states. Any
/// divergence means elision changed what reaches NVRAM, not just how
/// fast it got there.
fn check_flit_elision_is_invisible(txs: &[Vec<(usize, u64)>], use_stm: bool) {
    use wsp_repro::pheap::PmPtr;

    const CELLS: usize = 4;
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let build = |flit: bool| -> (PersistentHeap, Vec<PmPtr>) {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), config);
        let mut tx = heap.begin();
        let base = tx.alloc(CELLS as u64 * 64).unwrap();
        let mut cells = Vec::with_capacity(CELLS);
        for i in 0..CELLS {
            let p = base.byte_offset(i as u64 * 64);
            tx.write_word(p, 100 + i as u64).unwrap();
            cells.push(p);
        }
        tx.set_root(base).unwrap();
        tx.commit().unwrap();
        // Small epochs so the script stages several generations and
        // ends with both a staged and an open batch in flight.
        heap.set_epoch_size(3);
        heap.set_flit_enabled(flit);
        (heap, cells)
    };
    let (mut on, cells) = build(true);
    let (mut off, _) = build(false);

    let replay = |heap: &mut PersistentHeap, tx_ops: &[(usize, u64)]| {
        let mut tx = heap.begin();
        for &(cell, value) in tx_ops {
            tx.write_word(cells[cell % CELLS], value).unwrap();
        }
        tx.commit().unwrap();
    };

    for (t, tx_ops) in txs.iter().enumerate() {
        replay(&mut on, tx_ops);
        replay(&mut off, tx_ops);
        assert_eq!(
            on.clone().crash(false).bytes(),
            off.clone().crash(false).bytes(),
            "{config}: crash image diverged after tx {t}"
        );
        assert_eq!(
            (on.seal_steps(), on.staged_seal_steps()),
            (off.seal_steps(), off.staged_seal_steps()),
            "{config}: seal pipeline diverged after tx {t}"
        );
    }

    // Every durable step of sealing the final state — spanning the
    // staged batch, its marker, and the open batch when both are live.
    let steps = on.seal_steps();
    for step in 0..=steps {
        let img_on = on.clone().crash_mid_seal(step);
        let img_off = off.clone().crash_mid_seal(step);
        assert_eq!(
            img_on.bytes(),
            img_off.bytes(),
            "{config}: mid-seal image diverged at step {step}/{steps}"
        );
        let mut on_rec = PersistentHeap::recover(img_on).unwrap();
        let mut off_rec = PersistentHeap::recover(img_off).unwrap();
        let mut chk_on = on_rec.begin();
        let mut chk_off = off_rec.begin();
        for &p in &cells {
            assert_eq!(
                chk_on.read_word(p).unwrap(),
                chk_off.read_word(p).unwrap(),
                "{config}: recovered value diverged at step {step}/{steps}"
            );
        }
        chk_on.commit().unwrap();
        chk_off.commit().unwrap();
    }
}

fn flit_txs() -> Gen<Vec<Vec<(usize, u64)>>> {
    // Four cells and 1-4 writes per transaction make repeated writes to
    // the same word (the elision case) the common schedule, not a rare
    // one.
    gen::vec_of(
        gen::vec_of(
            gen::pair(gen::in_range(0usize..4), gen::any::<u64>()),
            1..5,
        ),
        1..13,
    )
}

#[test]
fn flit_elision_is_invisible_at_every_crash_point() {
    Forall::new(gen::pair(flit_txs(), gen::any::<bool>()))
        .cases(12)
        .check(|(txs, use_stm)| {
            check_flit_elision_is_invisible(txs, *use_stm);
        });
}

/// Fixed-seed corpus for the elision property: pinned seeds keep
/// re-checking schedules that exercised the staged/open boundary and
/// heavy same-word rewrite bursts.
#[test]
fn flit_elision_fixed_seed_corpus() {
    for seed in [7u64, 42, 0x00DE_C0DE] {
        Forall::new(gen::pair(flit_txs(), gen::any::<bool>()))
            .seed(seed)
            .cases(6)
            .check(|(txs, use_stm)| {
                check_flit_elision_is_invisible(txs, *use_stm);
            });
    }
}

/// Two clients racing on the same words: each brings its own
/// transaction stream, a generated schedule interleaves their commits
/// (transactions are the heap's concurrency unit — sub-transactional
/// races live in the lock-free sweep), and the merged schedule must
/// keep elision-on and reference heaps bitwise identical. The racing
/// shape matters to FliT specifically: back-to-back rewrites of one
/// word now arrive from *different* writers, so per-word flush
/// tracking that keyed elision on the writing client — rather than on
/// the word's actual flush state — would diverge here and nowhere in
/// the single-writer property above.
fn check_flit_elision_under_racing_writers(
    a: &[Vec<(usize, u64)>],
    b: &[Vec<(usize, u64)>],
    schedule: &[bool],
    use_stm: bool,
) {
    let (mut ia, mut ib) = (0, 0);
    let mut merged: Vec<Vec<(usize, u64)>> = Vec::with_capacity(a.len() + b.len());
    for &pick_a in schedule {
        if (pick_a && ia < a.len()) || ib >= b.len() {
            if ia < a.len() {
                merged.push(a[ia].clone());
                ia += 1;
            }
        } else {
            merged.push(b[ib].clone());
            ib += 1;
        }
    }
    merged.extend(a[ia..].iter().cloned());
    merged.extend(b[ib..].iter().cloned());
    check_flit_elision_is_invisible(&merged, use_stm);
}

/// Both racing clients favor the same two cells, making cross-writer
/// same-word rewrites the common case instead of a lucky draw.
fn racing_txs() -> Gen<Vec<Vec<(usize, u64)>>> {
    gen::vec_of(
        gen::vec_of(
            gen::pair(gen::in_range(0usize..2), gen::any::<u64>()),
            1..4,
        ),
        1..8,
    )
}

#[test]
fn flit_elision_is_invisible_under_racing_writers() {
    Forall::new(gen::pair(
        gen::triple(
            racing_txs(),
            racing_txs(),
            gen::vec_of(gen::any::<bool>(), 1..15),
        ),
        gen::any::<bool>(),
    ))
    .cases(10)
    .check(|((a, b, schedule), use_stm)| {
        check_flit_elision_under_racing_writers(a, b, schedule, *use_stm);
    });
}

/// Fixed-seed regression corpus: seeds that exercised interesting
/// schedules stay pinned so every future run re-checks them even after
/// the default seed or generators change.
#[test]
fn fixed_seed_regression_corpus() {
    for seed in [1u64, 42, 0x5749_5350, 0x00DE_C0DE] {
        Forall::new(gen::triple(
            ops(60),
            gen::in_range(0usize..60),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|(ops, crash_at, use_stm)| {
            check_foc_recovers_committed_prefix(ops, *crash_at, *use_stm);
        });
        Forall::new(gen::triple(
            ops(60),
            gen::in_range(0u8..3),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|(ops, config_pick, save_fits)| {
            check_fof_all_or_nothing(ops, *config_pick, *save_fits);
        });
        Forall::new(gen::pair(
            gen::triple(ops(40), gen::vec_of(op(), 0..10), gen::in_range(1usize..5)),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|((ops, between, crashes), use_stm)| {
            check_repeated_crash_during_restore(ops, between, *crashes, *use_stm);
        });
        Forall::new(gen::pair(
            gen::triple(ops(60), gen::in_range(0usize..60), gen::in_range(1usize..9)),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(6)
        .check(|((ops, crash_at, seal_every), use_stm)| {
            check_epoch_recovers_last_sealed_epoch(ops, *crash_at, *seal_every, *use_stm);
        });
    }
}

// ---------------------------------------------------------------------------
// Cross-shard 2PC all-or-nothing
// ---------------------------------------------------------------------------

/// Drives one randomly generated cross-shard transaction over a
/// three-shard fleet to a randomly chosen 2PC step, cuts power on the
/// whole fleet, resolves it against the coordinator's decision log, and
/// checks the bank invariant: the write-set is visible on every shard
/// or on none — no crash point may expose a partial write-set.
fn check_cross_shard_all_or_nothing(
    ops: &[(usize, usize, u64)],
    step_pick: usize,
    sub_step: u64,
    use_stm: bool,
) {
    use wsp_repro::cluster::ClusterSpec;
    use wsp_repro::pheap::PmPtr;
    use wsp_repro::wsp::{resolve_cross_shard, TxnCoordinator};

    const SHARDS: usize = 3;
    const CELLS: usize = 4;
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };

    // A committed baseline cell grid on every shard.
    let mut heaps: Vec<PersistentHeap> = Vec::with_capacity(SHARDS);
    let mut cells: Vec<Vec<(PmPtr, u64)>> = Vec::with_capacity(SHARDS);
    for s in 0..SHARDS {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), config);
        let mut tx = heap.begin();
        let base = tx.alloc(CELLS as u64 * 64).unwrap();
        let mut sc = Vec::with_capacity(CELLS);
        for i in 0..CELLS {
            let p = base.byte_offset(i as u64 * 64);
            let v = 1_000 + (s * CELLS + i) as u64;
            tx.write_word(p, v).unwrap();
            sc.push((p, v));
        }
        tx.set_root(base).unwrap();
        tx.commit().unwrap();
        heaps.push(heap);
        cells.push(sc);
    }

    let mut coordinator = TxnCoordinator::new();
    let mut txn = coordinator.begin(SHARDS);
    for &(shard, cell, value) in ops {
        let (shard, cell) = (shard % SHARDS, cell % CELLS);
        txn.stage(shard, cells[shard][cell].0.offset(), value);
    }
    let participants = txn.participants();
    let gtxid = txn.gtxid();
    let first = participants[0];

    // Drive the protocol to the generated crash step. 0 = pre-prepare,
    // 1 = between prepares, 2 = all prepared / no decision, 3 = decided
    // / no shard marker, 4 = decided / first marker durable, 5 = first
    // participant dies `sub_step` words into its prepare seal, 6 =
    // first participant's commit marker torn or fenced.
    let mut decided = false;
    let mut mid_prepare: Option<u64> = None;
    let mut mid_commit: Option<bool> = None;
    match step_pick % 7 {
        0 => {}
        1 => {
            coordinator
                .prepare_shard(&mut heaps[first], first, &txn)
                .unwrap();
        }
        2 => {
            for &s in &participants {
                coordinator.prepare_shard(&mut heaps[s], s, &txn).unwrap();
            }
        }
        3 | 4 => {
            for &s in &participants {
                coordinator.prepare_shard(&mut heaps[s], s, &txn).unwrap();
            }
            coordinator.record_decision(&txn);
            decided = true;
            if step_pick % 7 == 4 {
                coordinator
                    .commit_shard(&mut heaps[first], first, &txn)
                    .unwrap();
            }
        }
        5 => mid_prepare = Some(sub_step),
        6 => {
            for &s in &participants {
                coordinator.prepare_shard(&mut heaps[s], s, &txn).unwrap();
            }
            coordinator.record_decision(&txn);
            decided = true;
            mid_commit = Some(sub_step.is_multiple_of(2));
        }
        _ => unreachable!(),
    }

    // Power fails everywhere at once.
    let coordinator_image = coordinator.crash_image();
    let images = heaps
        .into_iter()
        .enumerate()
        .map(|(shard, heap)| {
            Some(match (shard == first, mid_prepare, mid_commit) {
                (true, Some(step), _) => {
                    heap.crash_mid_prepare(gtxid, txn.writes_for(shard), step)
                }
                (true, None, Some(durable)) => heap.crash_mid_commit(gtxid, durable),
                _ => heap.crash(false),
            })
        })
        .collect();

    let recovery = resolve_cross_shard(&coordinator_image, images, &ClusterSpec::memcache_tier(8));
    assert_eq!(
        recovery.decided.contains(&gtxid),
        decided,
        "decision durability must match the protocol step"
    );
    assert!(recovery.fully_recovered(), "no shard image was lost");

    // The model: baseline, plus the whole write-set iff decided.
    let mut expected: Vec<HashMap<u64, u64>> = cells
        .iter()
        .map(|sc| sc.iter().map(|&(p, v)| (p.offset(), v)).collect())
        .collect();
    if decided {
        for &(shard, cell, value) in ops {
            let (shard, cell) = (shard % SHARDS, cell % CELLS);
            expected[shard].insert(cells[shard][cell].0.offset(), value);
        }
    }
    for mut shard_rec in recovery.shards {
        let shard = shard_rec.shard;
        let heap = shard_rec.heap.as_mut().unwrap();
        let mut check = heap.begin();
        for (&addr, &want) in &expected[shard] {
            let got = check.read_word(PmPtr::new(addr).unwrap()).unwrap();
            assert_eq!(
                got, want,
                "shard {shard} cell {addr:#x}: partial write-set exposed at step {step_pick}"
            );
        }
        check.commit().unwrap();
    }
}

fn xshard_ops() -> Gen<Vec<(usize, usize, u64)>> {
    gen::vec_of(
        gen::triple(gen::in_range(0usize..3), gen::in_range(0usize..4), gen::any::<u64>()),
        1..7,
    )
}

#[test]
fn cross_shard_txn_is_all_or_nothing() {
    Forall::new(gen::pair(
        gen::triple(xshard_ops(), gen::in_range(0usize..7), gen::in_range(0u64..12)),
        gen::any::<bool>(),
    ))
    .cases(32)
    .check(|((ops, step_pick, sub_step), use_stm)| {
        check_cross_shard_all_or_nothing(ops, *step_pick, *sub_step, *use_stm);
    });
}

/// Fixed-seed regression corpus for the cross-shard property: pinned
/// seeds keep re-checking historically interesting 2PC schedules.
#[test]
fn cross_shard_fixed_seed_corpus() {
    for seed in [1u64, 42, 0x5749_5350, 0x00DE_C0DE] {
        Forall::new(gen::pair(
            gen::triple(xshard_ops(), gen::in_range(0usize..7), gen::in_range(0u64..12)),
            gen::any::<bool>(),
        ))
        .seed(seed)
        .cases(8)
        .check(|((ops, step_pick, sub_step), use_stm)| {
            check_cross_shard_all_or_nothing(ops, *step_pick, *sub_step, *use_stm);
        });
    }
}

/// Two cross-shard transactions in flight at the same outage, prepared
/// interleaved on an overlapping shard: A spans shards 0–1, B spans
/// shards 1–2, and the crash lands after A's decision record but before
/// B's. Shard 1's single log then holds both prepared write-sets, and
/// one recovery pass over that shared flush must split them — A applied
/// everywhere, B presumed-abort everywhere — with nothing in between.
fn check_interleaved_in_flight_txns(use_stm: bool, interleave: usize) {
    use wsp_repro::cluster::ClusterSpec;
    use wsp_repro::pheap::PmPtr;
    use wsp_repro::wsp::{resolve_cross_shard, TxnCoordinator};

    const SHARDS: usize = 3;
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };

    // Baseline: two committed cells per shard, on distinct lines. A
    // writes cell 0, B writes cell 1 — disjoint even on the shared
    // shard, as in-flight write-sets must be (the undo flavour applies
    // prepares in place).
    let mut heaps: Vec<PersistentHeap> = Vec::with_capacity(SHARDS);
    let mut cells: Vec<Vec<(PmPtr, u64)>> = Vec::with_capacity(SHARDS);
    for s in 0..SHARDS {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), config);
        let mut tx = heap.begin();
        let base = tx.alloc(2 * 64).unwrap();
        let mut sc = Vec::with_capacity(2);
        for i in 0..2 {
            let p = base.byte_offset(i as u64 * 64);
            let v = 500 + (s * 2 + i) as u64;
            tx.write_word(p, v).unwrap();
            sc.push((p, v));
        }
        tx.set_root(base).unwrap();
        tx.commit().unwrap();
        heaps.push(heap);
        cells.push(sc);
    }

    let mut coordinator = TxnCoordinator::new();
    let mut txn_a = coordinator.begin(SHARDS);
    txn_a.stage(0, cells[0][0].0.offset(), 7_001);
    txn_a.stage(1, cells[1][0].0.offset(), 7_002);
    let mut txn_b = coordinator.begin(SHARDS);
    txn_b.stage(1, cells[1][1].0.offset(), 8_001);
    txn_b.stage(2, cells[2][1].0.offset(), 8_002);

    // Three interleavings of the four prepares; every one ends with
    // both write-sets durable in shard 1's log and only A decided.
    let order: &[(usize, bool)] = match interleave % 3 {
        0 => &[(0, true), (1, false), (1, true), (2, false)],
        1 => &[(1, false), (0, true), (2, false), (1, true)],
        _ => &[(0, true), (1, true), (1, false), (2, false)],
    };
    for &(shard, is_a) in order {
        let txn = if is_a { &txn_a } else { &txn_b };
        coordinator.prepare_shard(&mut heaps[shard], shard, txn).unwrap();
    }
    coordinator.record_decision(&txn_a);

    // One outage takes the whole fleet.
    let coordinator_image = coordinator.crash_image();
    let images = heaps.into_iter().map(|h| Some(h.crash(false))).collect();
    let recovery =
        resolve_cross_shard(&coordinator_image, images, &ClusterSpec::memcache_tier(8));
    assert!(recovery.decided.contains(&txn_a.gtxid()));
    assert!(!recovery.decided.contains(&txn_b.gtxid()));
    assert!(recovery.fully_recovered());

    // A landed everywhere, B nowhere — shard 1 resolved both from the
    // same recovered log, one commit and one presumed abort.
    let mut expected: Vec<Vec<u64>> = cells
        .iter()
        .map(|sc| sc.iter().map(|&(_, v)| v).collect())
        .collect();
    expected[0][0] = 7_001;
    expected[1][0] = 7_002;
    for mut shard_rec in recovery.shards {
        let shard = shard_rec.shard;
        if shard == 1 {
            let resolution = shard_rec.resolution.as_ref().unwrap();
            assert!(resolution.committed.contains(&txn_a.gtxid()), "{config}");
            assert!(resolution.aborted.contains(&txn_b.gtxid()), "{config}");
        }
        let heap = shard_rec.heap.as_mut().unwrap();
        let mut check = heap.begin();
        for (cell, &want) in expected[shard].iter().enumerate() {
            let got = check.read_word(cells[shard][cell].0).unwrap();
            assert_eq!(
                got, want,
                "{config} interleave {interleave}: shard {shard} cell {cell}"
            );
        }
        check.commit().unwrap();
    }
}

#[test]
fn interleaved_in_flight_txns_resolve_split() {
    for use_stm in [false, true] {
        for interleave in 0..3 {
            check_interleaved_in_flight_txns(use_stm, interleave);
        }
    }
}

/// Group-decided split resolution: four transactions from two
/// concurrent coordinators share one decision log, a *single* group
/// record seals the first `split` of them, and the outage lands before
/// anything else — phase 2 included. One recovery pass over that one
/// shared-log flush must commit every sealed member on every shard and
/// presume abort for every still-buffered one, and the recovered pool
/// must attribute each durable decision to the coordinator generation
/// that sealed it.
fn check_grouped_split(use_stm: bool, seed: u64, split: usize) {
    use wsp_det::{DetRng, Rng};
    use wsp_repro::cluster::ClusterSpec;
    use wsp_repro::pheap::PmPtr;
    use wsp_repro::wsp::{
        coordinator_of, resolve_cross_shard, CoordinatorPool, SubmitOutcome,
    };

    const SHARDS: usize = 3;
    const TXNS: usize = 4;
    const POOL_COORDS: usize = 2;
    let config = if use_stm {
        HeapConfig::FocStm
    } else {
        HeapConfig::FocUndo
    };
    let mut rng = DetRng::seed_from_u64(seed);

    // Baseline: one committed cell per transaction per shard, so the
    // concurrently-prepared write sets stay pairwise disjoint.
    let mut heaps: Vec<PersistentHeap> = Vec::with_capacity(SHARDS);
    let mut cells: Vec<Vec<(PmPtr, u64)>> = Vec::with_capacity(SHARDS);
    for _ in 0..SHARDS {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), config);
        let mut tx = heap.begin();
        let base = tx.alloc(TXNS as u64 * 64).unwrap();
        let mut sc = Vec::with_capacity(TXNS);
        for i in 0..TXNS {
            let p = base.byte_offset(i as u64 * 64);
            let v = rng.gen::<u64>();
            tx.write_word(p, v).unwrap();
            sc.push((p, v));
        }
        tx.set_root(base).unwrap();
        tx.commit().unwrap();
        heaps.push(heap);
        cells.push(sc);
    }

    // Large group size: the seal below is the only one, covering
    // exactly the first `split` decisions.
    let mut pool = CoordinatorPool::new(POOL_COORDS, TXNS + 1);
    let mut gtxids = Vec::with_capacity(TXNS);
    let mut staged: Vec<Vec<(usize, u64)>> = Vec::with_capacity(TXNS);
    #[allow(clippy::needless_range_loop)]
    for t in 0..TXNS {
        let coordinator = t % POOL_COORDS;
        let mut txn = pool.begin(coordinator, SHARDS);
        let mut writes = Vec::new();
        for shard in [t % SHARDS, (t + 1) % SHARDS] {
            let value = rng.gen::<u64>();
            txn.stage(shard, cells[shard][t].0.offset(), value);
            writes.push((shard, value));
        }
        assert_eq!(
            pool.submit(coordinator, &mut heaps, &txn).unwrap(),
            SubmitOutcome::Buffered,
            "{config} seed {seed}: txn {t}"
        );
        gtxids.push(txn.gtxid());
        staged.push(writes);
        if t + 1 == split {
            assert_eq!(pool.seal_decisions(coordinator), split);
        }
    }

    // One outage takes the fleet before any phase 2.
    let coordinator_image = pool.crash_image();
    let images = heaps.into_iter().map(|h| Some(h.crash(false))).collect();
    let recovery =
        resolve_cross_shard(&coordinator_image, images, &ClusterSpec::memcache_tier(8));
    assert!(recovery.fully_recovered(), "{config} seed {seed}");

    let recovered = CoordinatorPool::recover(&coordinator_image, POOL_COORDS, TXNS + 1);
    let mut expected: Vec<Vec<u64>> = cells
        .iter()
        .map(|sc| sc.iter().map(|&(_, v)| v).collect())
        .collect();
    for (t, &gtxid) in gtxids.iter().enumerate() {
        let sealed = t < split;
        assert_eq!(
            recovery.decided.contains(&gtxid),
            sealed,
            "{config} seed {seed} split {split}: txn {t}"
        );
        let origin = recovered.attribute(gtxid);
        if sealed {
            let origin = origin.expect("sealed decision attributes");
            assert_eq!(origin.coordinator, t % POOL_COORDS, "{config} seed {seed}");
            assert_eq!(origin.generation, 1, "{config} seed {seed}");
            for &(shard, value) in &staged[t] {
                expected[shard][t] = value;
            }
        } else {
            assert_eq!(origin, None, "{config} seed {seed}: txn {t}");
        }
        assert_eq!(coordinator_of(gtxid), t % POOL_COORDS, "{config} seed {seed}");
    }

    // The sealed members landed everywhere, the buffered tail nowhere.
    for mut shard_rec in recovery.shards {
        let shard = shard_rec.shard;
        let heap = shard_rec.heap.as_mut().unwrap();
        let mut check = heap.begin();
        for (cell, &want) in expected[shard].iter().enumerate() {
            let got = check.read_word(cells[shard][cell].0).unwrap();
            assert_eq!(
                got, want,
                "{config} seed {seed} split {split}: shard {shard} cell {cell}"
            );
        }
        check.commit().unwrap();
    }
}

/// Fixed-seed matrix for the grouped split: both FoC configs, every
/// proper prefix length, pinned seeds.
#[test]
fn grouped_split_fixed_seed_corpus() {
    for use_stm in [false, true] {
        for seed in [1u64, 42, 0x5749_5350, 0x00DE_C0DE] {
            for split in 1..4 {
                check_grouped_split(use_stm, seed, split);
            }
        }
    }
}
