//! Property-based crash-consistency tests: random workloads, crashes at
//! arbitrary points, recovery checked against an in-memory model.
//!
//! These are the invariants the whole reproduction stands on:
//!
//! * flush-on-commit heaps recover **exactly** the committed prefix with
//!   no flush-on-fail save at all;
//! * flush-on-fail heaps recover **everything** when the save completes
//!   and refuse local recovery when it does not;
//! * recovery is idempotent across repeated crashes.

use std::collections::HashMap;

use proptest::prelude::*;
use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::{PmAvlTree, PmHashTable};

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u8, u64),
    Remove(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u8>().prop_map(Op::Remove),
    ]
}

fn apply_model(model: &mut HashMap<u64, u64>, op: Op) {
    match op {
        Op::Insert(k, v) => {
            model.insert(u64::from(k), v);
        }
        Op::Remove(k) => {
            model.remove(&u64::from(k));
        }
    }
}

fn apply_table(
    table: &PmHashTable,
    heap: &mut PersistentHeap,
    op: Op,
) -> Result<(), HeapError> {
    match op {
        Op::Insert(k, v) => {
            table.insert(heap, u64::from(k), v)?;
        }
        Op::Remove(k) => {
            table.remove(heap, u64::from(k))?;
        }
    }
    Ok(())
}

fn check_matches_model(
    table: &PmHashTable,
    heap: &mut PersistentHeap,
    model: &HashMap<u64, u64>,
) {
    assert_eq!(table.len(heap).unwrap(), model.len() as u64);
    for k in 0u64..256 {
        assert_eq!(
            table.get(heap, k).unwrap(),
            model.get(&k).copied(),
            "key {k} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Flush-on-commit heaps recover the exact committed prefix after an
    /// unsaved crash, regardless of where the crash lands.
    #[test]
    fn foc_recovers_committed_prefix(
        ops in prop::collection::vec(op_strategy(), 1..60),
        crash_at in 0usize..60,
        use_stm in any::<bool>(),
    ) {
        let config = if use_stm { HeapConfig::FocStm } else { HeapConfig::FocUndo };
        let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
        let table = PmHashTable::create(&mut heap, 32).unwrap();
        let mut model = HashMap::new();

        let crash_at = crash_at.min(ops.len());
        for op in &ops[..crash_at] {
            apply_table(&table, &mut heap, *op).unwrap();
            apply_model(&mut model, *op);
        }
        // Ops after the crash point never happen.
        let image = heap.crash(false);
        let mut recovered = PersistentHeap::recover(image).unwrap();
        let table = PmHashTable::open(&mut recovered).unwrap();
        check_matches_model(&table, &mut recovered, &model);
    }

    /// Flush-on-fail heaps with a completed save recover everything;
    /// without one they refuse local recovery.
    #[test]
    fn fof_all_or_nothing(
        ops in prop::collection::vec(op_strategy(), 1..60),
        config_pick in 0u8..3,
        save_fits in any::<bool>(),
    ) {
        let config = [HeapConfig::Fof, HeapConfig::FofUndo, HeapConfig::FofStm]
            [usize::from(config_pick)];
        let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
        let table = PmHashTable::create(&mut heap, 32).unwrap();
        let mut model = HashMap::new();
        for op in &ops {
            apply_table(&table, &mut heap, *op).unwrap();
            apply_model(&mut model, *op);
        }
        let image = heap.crash(save_fits);
        match PersistentHeap::recover(image) {
            Ok(mut recovered) => {
                prop_assert!(save_fits, "recovery must require the save");
                let table = PmHashTable::open(&mut recovered).unwrap();
                check_matches_model(&table, &mut recovered, &model);
            }
            Err(HeapError::Unrecoverable { .. }) => prop_assert!(!save_fits),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// A second crash immediately after recovery changes nothing: the
    /// recovered state is durable and recovery is idempotent.
    #[test]
    fn recovery_is_idempotent(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), HeapConfig::FocUndo);
        let table = PmHashTable::create(&mut heap, 32).unwrap();
        let mut model = HashMap::new();
        for op in &ops {
            apply_table(&table, &mut heap, *op).unwrap();
            apply_model(&mut model, *op);
        }
        let once = PersistentHeap::recover(heap.crash(false)).unwrap();
        let mut twice = PersistentHeap::recover(once.crash(false)).unwrap();
        let table = PmHashTable::open(&mut twice).unwrap();
        check_matches_model(&table, &mut twice, &model);
    }

    /// An uncommitted (aborted) transaction leaves no trace after
    /// recovery, even when its writes were forced to NVRAM mid-flight.
    #[test]
    fn aborted_transactions_vanish(
        committed in any::<u64>(),
        attempted in any::<u64>(),
    ) {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FocUndo);
        let ptr = {
            let mut tx = heap.begin();
            let p = tx.alloc(16).unwrap();
            tx.write_word(p, committed).unwrap();
            tx.set_root(p).unwrap();
            tx.commit().unwrap();
            p
        };
        {
            let mut tx = heap.begin();
            tx.write_word(ptr, attempted).unwrap();
            tx.abort();
        }
        let mut recovered = PersistentHeap::recover(heap.crash(false)).unwrap();
        let root = recovered.root().unwrap();
        let mut tx = recovered.begin();
        prop_assert_eq!(tx.read_word(root).unwrap(), committed);
        tx.commit().unwrap();
    }

    /// The AVL tree stays ordered, balanced, and model-faithful through
    /// crash recovery.
    #[test]
    fn avl_survives_crashes_ordered(
        ops in prop::collection::vec(op_strategy(), 1..50),
    ) {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), HeapConfig::FocStm);
        let tree = PmAvlTree::create(&mut heap).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(&mut heap, u64::from(k), v).unwrap();
                    model.insert(u64::from(k), v);
                }
                Op::Remove(k) => {
                    tree.remove(&mut heap, u64::from(k)).unwrap();
                    model.remove(&u64::from(k));
                }
            }
        }
        let mut recovered = PersistentHeap::recover(heap.crash(false)).unwrap();
        let tree = PmAvlTree::open(&mut recovered).unwrap();
        let entries = tree.entries(&mut recovered).unwrap();
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(entries, expected);
        // AVL balance: height <= 1.44 lg(n+2).
        let n = tree.len(&mut recovered).unwrap();
        let height = tree.tree_height(&mut recovered).unwrap();
        let bound = (1.44 * ((n + 2) as f64).log2()).ceil() as u64 + 1;
        prop_assert!(height <= bound, "height {height} > bound {bound} for n={n}");
    }
}
