//! The concurrent detectable structures, driven end to end: crash-point
//! coverage of the interleaving sweep, bitwise serial-vs-sharded
//! determinism, typed refusals on corrupt durable metadata, and a
//! fixed-seed regression corpus of sweep outcomes under `tests/golden/`.
//!
//! The sweep itself asserts exactly-once semantics at every injected
//! crash (misclassification panics inside `sweep_lockfree`); these
//! tests pin the *shape* of that proof — which step kinds were crash
//! points, that all three verdicts actually occur, that worker count
//! cannot change a single byte of the report — and freeze the
//! per-scenario tallies against a recorded corpus. Regenerate the
//! corpus after an intentional protocol change with
//!
//! ```text
//! WSP_UPDATE_GOLDEN=1 cargo test --test lockfree_detect
//! ```

use std::path::PathBuf;

use wsp_repro::obs::{self, Ctr, Event};
use wsp_repro::pheap::lockfree::{
    FlushPolicy, LfLayout, LfRegion, OpVerdict, HEAD_ADDR, OP_PUSH,
};
use wsp_repro::wsp::{
    classify_recovery, sweep_lockfree, sweep_lockfree_threads, LfStructure, LockfreeSweepReport,
};

fn refusal_events<'a>(events: &'a [Event], subsystem: &str) -> Vec<&'a Event> {
    events
        .iter()
        .filter(|e| e.subsystem == subsystem && e.name == "refusal")
        .collect()
}

// ---- crash-point coverage ----------------------------------------------

/// Flush-on-commit orders persistence explicitly, so the sweep must
/// inject at CAS, flush, *and* fence steps, and all three recovery
/// verdicts must occur somewhere in the enumeration.
fn assert_foc_coverage(report: &LockfreeSweepReport) {
    let label = report.structure.label();
    assert!(report.schedules > 0, "{label}: no schedules");
    assert!(report.cas_points > 0, "{label}: no CAS crash points");
    assert!(report.flush_points > 0, "{label}: no flush crash points");
    assert!(report.fence_points > 0, "{label}: no fence crash points");
    assert_eq!(
        report.crash_points,
        report.cas_points + report.flush_points + report.fence_points,
        "{label}: crash points must partition by step kind"
    );
    assert!(report.completed > 0, "{label}: no Completed verdicts");
    assert!(report.not_started > 0, "{label}: no NotStarted verdicts");
    assert!(report.resolved > 0, "{label}: no Resolved verdicts");
}

/// Flush-on-fail has no commit-path flushes or fences at all — the
/// residual-energy save is the persistence step — so CAS steps are the
/// only crash points, and the verdict classes still all occur.
fn assert_fof_coverage(report: &LockfreeSweepReport) {
    let label = report.structure.label();
    assert!(report.cas_points > 0, "{label}: no CAS crash points");
    assert_eq!(report.flush_points, 0, "{label}: FoF must not flush");
    assert_eq!(report.fence_points, 0, "{label}: FoF must not fence");
    assert_eq!(report.crash_points, report.cas_points);
    assert!(report.completed > 0, "{label}: no Completed verdicts");
    assert!(report.not_started > 0, "{label}: no NotStarted verdicts");
    assert!(report.resolved > 0, "{label}: no Resolved verdicts");
}

#[test]
fn hash_sweep_covers_every_crash_point_kind() {
    assert_foc_coverage(&sweep_lockfree(
        LfStructure::Hash,
        FlushPolicy::FlushOnCommit,
        42,
    ));
    assert_fof_coverage(&sweep_lockfree(
        LfStructure::Hash,
        FlushPolicy::FlushOnFail,
        42,
    ));
}

#[test]
fn stack_fof_sweep_covers_every_crash_point_kind() {
    assert_fof_coverage(&sweep_lockfree(
        LfStructure::Stack,
        FlushPolicy::FlushOnFail,
        42,
    ));
}

// ---- serial vs sharded determinism -------------------------------------

/// The heavy stack/FoC sweep: one seed, serial worker against four
/// workers, the full report (tallies, per-scenario fingerprints, trace,
/// metrics) must be bitwise identical — and it doubles as the FoC
/// coverage check for the stack.
#[test]
fn stack_foc_sweep_is_worker_count_invariant() {
    let serial = sweep_lockfree_threads(LfStructure::Stack, FlushPolicy::FlushOnCommit, 42, 1);
    let sharded = sweep_lockfree_threads(LfStructure::Stack, FlushPolicy::FlushOnCommit, 42, 4);
    assert_eq!(serial, sharded);
    assert_foc_coverage(&serial);
}

#[test]
fn hash_foc_sweep_is_worker_count_invariant_across_seeds() {
    for seed in [42, 7, 4242] {
        let serial = sweep_lockfree_threads(LfStructure::Hash, FlushPolicy::FlushOnCommit, seed, 1);
        let sharded =
            sweep_lockfree_threads(LfStructure::Hash, FlushPolicy::FlushOnCommit, seed, 4);
        assert_eq!(serial, sharded, "seed {seed}");
    }
}

#[test]
fn stack_fof_sweep_is_worker_count_invariant_across_seeds() {
    for seed in [42, 7, 4242] {
        let serial = sweep_lockfree_threads(LfStructure::Stack, FlushPolicy::FlushOnFail, seed, 1);
        let sharded = sweep_lockfree_threads(LfStructure::Stack, FlushPolicy::FlushOnFail, seed, 4);
        assert_eq!(serial, sharded, "seed {seed}");
    }
}

// ---- typed refusals on corrupt durable metadata ------------------------

/// Durably installs a 7-word descriptor for thread `tid`.
fn plant_descriptor(region: &mut LfRegion, tid: u8, fields: [u64; 7]) {
    let d = region.layout().desc_addr(tid);
    for (i, v) in fields.into_iter().enumerate() {
        region.write_word(d + 8 * i as u64, v);
    }
    region.flush_line(d);
    region.fence();
}

fn corrupt_region() -> LfRegion {
    LfRegion::create(LfLayout::new(2, 0, 8, FlushPolicy::FlushOnCommit))
}

/// Every corrupt-metadata shape refuses with the typed `detectability`
/// error and exactly one refusal trace event — never a wrong verdict.
#[test]
fn corrupt_descriptors_refuse_with_exactly_one_event() {
    let arena = corrupt_region().layout().arena_base(0);
    let torn = [3, OP_PUSH, HEAD_ADDR, 0, 1, arena, 2]; // seal != seq
    let future = [5, OP_PUSH, HEAD_ADDR, 0, 1, arena, 5]; // seq > program seq
    let bad_opcode = [3, 99, HEAD_ADDR, 0, 1, arena, 3];
    let bad_target = [3, OP_PUSH, 0xdead_0000, 0, 1, arena, 3];
    for (name, fields) in [
        ("torn", torn),
        ("future", future),
        ("bad_opcode", bad_opcode),
        ("bad_target", bad_target),
    ] {
        let (err, cap) = obs::capture(|| {
            let mut region = corrupt_region();
            plant_descriptor(&mut region, 0, fields);
            classify_recovery(&region, 0, 3).unwrap_err()
        });
        assert_eq!(err.kind(), "detectability", "{name}");
        let refusals = refusal_events(cap.trace.events(), "lockfree");
        assert_eq!(refusals.len(), 1, "{name}: {:?}", cap.trace.events());
        assert_eq!(refusals[0].detail, "detectability", "{name}");
        assert_eq!(cap.metrics.counter(Ctr::LockfreeRefusals), 1, "{name}");
        assert_eq!(cap.metrics.counter(Ctr::LockfreeRecoveries), 1, "{name}");
    }
}

/// An untouched descriptor (all zeros, durable by construction) is the
/// NotStarted case, and classifying it emits no refusal.
#[test]
fn pristine_descriptor_classifies_not_started() {
    let (verdict, cap) = obs::capture(|| {
        let region = corrupt_region();
        classify_recovery(&region, 0, 1).expect("pristine descriptor classifies")
    });
    assert_eq!(verdict, OpVerdict::NotStarted);
    assert!(refusal_events(cap.trace.events(), "lockfree").is_empty());
    assert_eq!(cap.metrics.counter(Ctr::LockfreeRefusals), 0);
    assert_eq!(cap.metrics.counter(Ctr::LockfreeRecoveries), 1);
}

// ---- fixed-seed regression corpus --------------------------------------

fn corpus_lines(report: &LockfreeSweepReport) -> String {
    let mut out = String::new();
    for sc in &report.scenarios {
        out.push_str(&format!(
            "{{\"scenario\":\"{}\",\"schedules\":{},\"crash_points\":{},\"completed\":{},\
             \"not_started\":{},\"resolved\":{},\"fingerprint\":\"{:016x}\"}}\n",
            sc.name,
            sc.schedules,
            sc.crash_points,
            sc.completed,
            sc.not_started,
            sc.resolved,
            sc.fingerprint,
        ));
    }
    out.push_str(&format!(
        "{{\"total_schedules\":{},\"total_crash_points\":{},\"fingerprint\":\"{:016x}\"}}\n",
        report.schedules, report.crash_points, report.fingerprint,
    ));
    out
}

/// Pins one sweep's per-scenario tallies and path-sensitive
/// fingerprints against the recorded corpus. Worker count cannot
/// change the report (proven above), so the corpus is machine-stable.
fn pin_corpus(structure: LfStructure, policy: FlushPolicy, seed: u64) {
    let report = sweep_lockfree(structure, policy, seed);
    let got = corpus_lines(&report);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!(
            "lockfree_{}_{}_seed{seed}.jsonl",
            structure.label(),
            policy.label()
        ));
    if std::env::var("WSP_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("record corpus");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing corpus {} ({e}); record with WSP_UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(
        got,
        want,
        "lockfree sweep diverged from recorded corpus {}",
        path.display()
    );
}

#[test]
fn corpus_stack_fof() {
    pin_corpus(LfStructure::Stack, FlushPolicy::FlushOnFail, 42);
    pin_corpus(LfStructure::Stack, FlushPolicy::FlushOnFail, 7);
}

#[test]
fn corpus_hash_fof() {
    pin_corpus(LfStructure::Hash, FlushPolicy::FlushOnFail, 42);
    pin_corpus(LfStructure::Hash, FlushPolicy::FlushOnFail, 7);
}

#[test]
fn corpus_hash_foc() {
    pin_corpus(LfStructure::Hash, FlushPolicy::FlushOnCommit, 42);
    pin_corpus(LfStructure::Hash, FlushPolicy::FlushOnCommit, 7);
}

/// The heavy pair runs at one seed; the worker-invariance test above
/// already proves seed-42 stability across worker counts.
#[test]
fn corpus_stack_foc() {
    pin_corpus(LfStructure::Stack, FlushPolicy::FlushOnCommit, 42);
}
