//! Whole-stack integration: the *machine's* power-failure outcome decides
//! the *heap's* fate, and the recovery ladder decides where the data
//! comes back from — the complete WSP story across every crate.

use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::pheap::{
    BackendStore, HeapConfig, PersistentHeap, RecoveryLadder, RecoverySource,
};
use wsp_repro::power::Psu;
use wsp_repro::units::{ByteSize, Farads, Watts};
use wsp_repro::workloads::{Command, KvServer, Response};
use wsp_repro::wsp::{flush_on_fail_save, RestartStrategy};

/// Runs a KV server on a WSP heap "hosted" by `machine`: the machine's
/// flush-on-fail save outcome determines whether the heap's cached state
/// survives, and the ladder handles the fallback.
fn outage_on(machine: &mut Machine, load: SystemLoad) -> (RecoverySource, u64) {
    let mut heap = PersistentHeap::create(ByteSize::mib(4), HeapConfig::Fof);
    let mut server = KvServer::create(&mut heap).unwrap();
    let mut ladder = RecoveryLadder::new(BackendStore::disk_array());

    // Load phase: 500 sets, checkpoint halfway.
    for k in 0..250 {
        server.execute(&mut heap, &Command::Set(k, k)).unwrap();
    }
    ladder.checkpoint(&heap);
    for k in 250..500 {
        server.execute(&mut heap, &Command::Set(k, k)).unwrap();
    }

    // The machine decides the save's fate.
    machine.apply_load(load, 13);
    let save = flush_on_fail_save(machine, load, RestartStrategy::RestorePathReinit);

    let (mut heap, source, _took) = ladder
        .recover(heap.crash(save.completed))
        .expect("ladder always produces a heap here");
    let mut server = KvServer::open(&mut heap).unwrap();
    let items = match server.execute(&mut heap, &Command::Stats).unwrap() {
        Response::Stats { items, .. } => items,
        other => panic!("expected stats, got {other:?}"),
    };
    (source, items)
}

#[test]
fn healthy_machine_recovers_everything_locally() {
    let mut machine = Machine::intel_testbed();
    let (source, items) = outage_on(&mut machine, SystemLoad::Busy);
    assert_eq!(source, RecoverySource::LocalNvram);
    assert_eq!(items, 500, "no committed data lost");
}

#[test]
fn starved_psu_falls_back_to_checkpoint() {
    // A PSU whose window cannot cover even the ~3 ms flush.
    let tiny = Psu::from_capacitance("starved", Watts::new(100.0), Farads::new(0.0001));
    let mut machine = Machine::intel_testbed().with_psu(tiny);
    let (source, items) = outage_on(&mut machine, SystemLoad::Busy);
    assert!(matches!(source, RecoverySource::BackendCheckpoint { .. }));
    assert_eq!(items, 250, "only the checkpointed half survives");
}

#[test]
fn idle_amd_machine_has_enormous_margin() {
    let mut machine = Machine::amd_testbed();
    machine.apply_load(SystemLoad::Idle, 1);
    let save = flush_on_fail_save(
        &mut machine,
        SystemLoad::Idle,
        RestartStrategy::RestorePathReinit,
    );
    assert!(save.completed);
    assert!(
        save.fraction_of_window.unwrap() < 0.01,
        "AMD idle: save uses under 1% of the 392 ms window"
    );
}

#[test]
fn per_outage_coverage_feeds_checkpoint_policy() {
    use wsp_repro::cluster::CheckpointPolicy;
    use wsp_repro::units::Nanos;

    // Measure coverage empirically: of 20 simulated outages on a healthy
    // machine, how many completed their save?
    let mut covered = 0u32;
    let runs = 20u32;
    for seed in 0..runs {
        let mut machine = Machine::intel_testbed();
        machine.apply_load(SystemLoad::Busy, u64::from(seed));
        let save = flush_on_fail_save(
            &mut machine,
            SystemLoad::Busy,
            RestartStrategy::RestorePathReinit,
        );
        if save.completed {
            covered += 1;
        }
    }
    let coverage = f64::from(covered) / f64::from(runs);
    assert_eq!(coverage, 1.0, "healthy testbed always fits");

    // Feed it to the checkpoint planner: full coverage stretches the
    // checkpoint interval to its configured ceiling.
    let policy = CheckpointPolicy::new(
        Nanos::from_secs(900),
        Nanos::from_secs(7 * 24 * 3600),
        coverage.min(0.999),
    );
    assert!(policy.plan().interval > policy.plan_without_wsp().interval * 10);
}
