//! The full workload × configuration × crash-mode matrix: every
//! persistent data structure, under every heap configuration, through
//! both crash outcomes — one sweeping consistency check.

use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::{Directory, DirEntry, PmAvlTree, PmBTree, PmHashTable, PmQueue};

const N: u64 = 200;

fn fresh(config: HeapConfig) -> PersistentHeap {
    PersistentHeap::create(ByteSize::mib(4), config)
}

/// Recovery is expected to succeed iff the config flushes on commit or
/// the save completed.
fn recoverable(config: HeapConfig, save: bool) -> bool {
    config.flush_on_commit() || save
}

#[test]
fn hashtable_matrix() {
    for config in HeapConfig::all() {
        for save in [false, true] {
            let mut heap = fresh(config);
            let t = PmHashTable::create(&mut heap, 64).unwrap();
            for k in 0..N {
                t.insert(&mut heap, k, k * 2 + 1).unwrap();
            }
            for k in (0..N).step_by(4) {
                t.remove(&mut heap, k).unwrap();
            }
            match PersistentHeap::recover(heap.crash(save)) {
                Ok(mut heap) => {
                    assert!(recoverable(config, save), "{config} save={save}");
                    let t = PmHashTable::open(&mut heap).unwrap();
                    for k in 0..N {
                        let expect = (k % 4 != 0).then_some(k * 2 + 1);
                        assert_eq!(t.get(&mut heap, k).unwrap(), expect, "{config} key {k}");
                    }
                }
                Err(HeapError::Unrecoverable { .. }) => {
                    assert!(!recoverable(config, save), "{config} save={save}");
                }
                Err(e) => panic!("{config}: unexpected {e}"),
            }
        }
    }
}

#[test]
fn avl_matrix() {
    for config in HeapConfig::all() {
        for save in [false, true] {
            let mut heap = fresh(config);
            let t = PmAvlTree::create(&mut heap).unwrap();
            for k in 0..N {
                t.insert(&mut heap, (k * 37) % N, k).unwrap();
            }
            match PersistentHeap::recover(heap.crash(save)) {
                Ok(mut heap) => {
                    assert!(recoverable(config, save));
                    let t = PmAvlTree::open(&mut heap).unwrap();
                    assert_eq!(t.len(&mut heap).unwrap(), N, "{config}");
                    let entries = t.entries(&mut heap).unwrap();
                    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
                }
                Err(HeapError::Unrecoverable { .. }) => assert!(!recoverable(config, save)),
                Err(e) => panic!("{config}: unexpected {e}"),
            }
        }
    }
}

#[test]
fn btree_matrix() {
    for config in HeapConfig::all() {
        for save in [false, true] {
            let mut heap = fresh(config);
            let t = PmBTree::create(&mut heap).unwrap();
            for k in 0..N {
                t.insert(&mut heap, (k * 13) % N, k).unwrap();
            }
            match PersistentHeap::recover(heap.crash(save)) {
                Ok(mut heap) => {
                    assert!(recoverable(config, save));
                    let t = PmBTree::open(&mut heap).unwrap();
                    assert_eq!(t.len(&mut heap).unwrap(), N, "{config}");
                    let entries = t.entries(&mut heap).unwrap();
                    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
                }
                Err(HeapError::Unrecoverable { .. }) => assert!(!recoverable(config, save)),
                Err(e) => panic!("{config}: unexpected {e}"),
            }
        }
    }
}

#[test]
fn queue_matrix() {
    for config in HeapConfig::all() {
        for save in [false, true] {
            let mut heap = fresh(config);
            let q = PmQueue::create(&mut heap, 64).unwrap();
            for v in 0..50u64 {
                assert!(q.push(&mut heap, v).unwrap());
            }
            for _ in 0..20 {
                q.pop(&mut heap).unwrap();
            }
            match PersistentHeap::recover(heap.crash(save)) {
                Ok(mut heap) => {
                    assert!(recoverable(config, save));
                    let q = PmQueue::open(&mut heap).unwrap();
                    assert_eq!(q.len(&mut heap).unwrap(), 30, "{config}");
                    assert_eq!(q.pop(&mut heap).unwrap(), Some(20), "FIFO order holds");
                }
                Err(HeapError::Unrecoverable { .. }) => assert!(!recoverable(config, save)),
                Err(e) => panic!("{config}: unexpected {e}"),
            }
        }
    }
}

#[test]
fn directory_matrix() {
    for config in HeapConfig::all() {
        for save in [false, true] {
            let mut heap = fresh(config);
            let dir = Directory::create(&mut heap).unwrap();
            for n in 0..60 {
                let entry = DirEntry::new(
                    format!("cn=user{n:04},dc=example,dc=com"),
                    vec![("uid".into(), n.to_string())],
                );
                assert!(dir.add(&mut heap, &entry).unwrap());
            }
            match PersistentHeap::recover(heap.crash(save)) {
                Ok(mut heap) => {
                    assert!(recoverable(config, save));
                    let dir = Directory::open(&mut heap).unwrap();
                    assert_eq!(dir.len(&mut heap).unwrap(), 60, "{config}");
                    let e = dir
                        .search(&mut heap, "cn=user0033,dc=example,dc=com")
                        .unwrap()
                        .expect("entry survives");
                    assert_eq!(e.attributes[0].1, "33");
                }
                Err(HeapError::Unrecoverable { .. }) => assert!(!recoverable(config, save)),
                Err(e) => panic!("{config}: unexpected {e}"),
            }
        }
    }
}
