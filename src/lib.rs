//! # wsp-repro — Whole-System Persistence, reproduced in Rust
//!
//! A full reproduction of *Whole-System Persistence* (Narayanan &
//! Hodson, ASPLOS 2012): the flush-on-fail save/restore runtime, the
//! NVDIMM / PSU / cache substrates it runs on, the persistent-heap
//! baselines it is compared against, and the workloads and harnesses
//! that regenerate every table and figure of the paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module name.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`units`] | `wsp-units` | simulated time, sizes, electrical units, stats |
//! | [`cache`] | `wsp-cache` | cache-hierarchy simulator, flush instructions, CPU profiles |
//! | [`obs`] | `wsp-obs` | deterministic tracing, metrics, golden-trace diffing |
//! | [`nvram`] | `wsp-nvram` | NVDIMM device model (DRAM + flash + ultracap) |
//! | [`power`] | `wsp-power` | PSUs, residual energy windows, power monitor, ultracaps |
//! | [`pheap`] | `wsp-pheap` | persistent heaps: Mnemosyne-style STM+redo, undo log, plain |
//! | [`machine`] | `wsp-machine` | whole-system simulator: cores, devices, testbeds |
//! | [`wsp`] | `wsp-core` | the WSP runtime: flush-on-fail save, restore, feasibility |
//! | [`workloads`] | `wsp-workloads` | hash table, AVL tree, LDAP directory, benchmarks |
//! | [`cluster`] | `wsp-cluster` | recovery storms, replication trade-offs |
//! | [`det`] | `wsp-det` | deterministic PRNG + property-test harness |
//!
//! # Quickstart
//!
//! Survive a power failure with zero runtime overhead:
//!
//! ```
//! use wsp_repro::machine::{Machine, SystemLoad};
//! use wsp_repro::wsp::{RestartStrategy, WspSystem};
//!
//! let mut system = WspSystem::new(Machine::intel_testbed());
//! let outage = system.power_failure_drill(
//!     SystemLoad::Busy,
//!     RestartStrategy::RestorePathReinit,
//!     7,
//! );
//! assert!(outage.save.completed && outage.data_preserved);
//! ```
//!
//! Or compare the persistent-heap baselines the paper measures against:
//!
//! ```
//! use wsp_repro::pheap::{HeapConfig, PersistentHeap};
//! use wsp_repro::units::ByteSize;
//!
//! let mut mnemosyne = PersistentHeap::create(ByteSize::mib(1), HeapConfig::FocStm);
//! let mut wsp = PersistentHeap::create(ByteSize::mib(1), HeapConfig::Fof);
//! // ... run the same workload against both and compare `elapsed()`.
//! # let _ = (mnemosyne.root(), wsp.root());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for paper-vs-reproduced
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsp_cache as cache;
pub use wsp_cluster as cluster;
pub use wsp_det as det;
pub use wsp_core as wsp;
pub use wsp_machine as machine;
pub use wsp_nvram as nvram;
pub use wsp_obs as obs;
pub use wsp_pheap as pheap;
pub use wsp_power as power;
pub use wsp_units as units;
pub use wsp_workloads as workloads;
