//! The §6 "Discussion and Future Work" analyses, runnable: capacitance
//! provisioning vs downtime, optimal checkpoint cadence under WSP,
//! hybrid DRAM+SCM placement, and a simulated year of fleet operation.
//!
//! Run with: `cargo run --release --example whatif_analysis`

use wsp_repro::cluster::{CheckpointPolicy, ClusterSpec, FleetTimeline};
use wsp_repro::machine::{HybridMemory, Machine, PlacementPolicy, SystemLoad};
use wsp_repro::power::Psu;
use wsp_repro::units::{ByteSize, Nanos};
use wsp_repro::wsp::CapacitanceTradeoff;

fn main() {
    // 1. Capacitance vs downtime on a marginal deployment.
    println!("capacitance trade-off (Intel + tight 750 W PSU, 4 outages/yr):");
    let machine = Machine::intel_testbed().with_psu(Psu::atx_750w());
    let mut tradeoff = CapacitanceTradeoff::for_machine(
        &machine,
        SystemLoad::Busy,
        4.0,
        Nanos::from_secs(600),
    );
    tradeoff.window_spread = 0.95;
    for p in tradeoff.sweep(&[0.0, 0.1, 0.25, 0.5]) {
        println!(
            "  +{:.2} F (${:.2}): window {:.0} ms, P(miss) {:.0}%, E[downtime] {:.0} s/yr",
            p.added_capacitance.get(),
            p.cost_usd,
            p.effective_window.as_millis_f64(),
            p.miss_probability * 100.0,
            p.expected_annual_downtime.as_secs_f64(),
        );
    }

    // 2. Checkpoint cadence: WSP covers ~90% of failures locally.
    println!("\ncheckpoint cadence (Young's tau* = sqrt(2CM)):");
    let policy = CheckpointPolicy::new(
        Nanos::from_secs(15 * 60),
        Nanos::from_secs(7 * 24 * 3600),
        0.90,
    );
    let with = policy.plan();
    let without = policy.plan_without_wsp();
    println!(
        "  without WSP: checkpoint every {:.1} h (overhead {:.1}%)",
        without.interval.as_secs_f64() / 3600.0,
        without.overhead * 100.0
    );
    println!(
        "  with WSP:    checkpoint every {:.1} h (overhead {:.1}%)",
        with.interval.as_secs_f64() / 3600.0,
        with.overhead * 100.0
    );

    // 3. Hybrid DRAM + SCM placement.
    println!("\nhybrid memory (32 GiB NVDIMM + 256 GiB SCM, hot 10% gets 90% of accesses):");
    let hybrid = HybridMemory::typical(ByteSize::gib(32), ByteSize::gib(256));
    for policy in PlacementPolicy::all() {
        println!(
            "  {:<18} avg access {:>5} ns  (DRAM share {:>3.0}%)",
            policy.label(),
            hybrid.average_latency(policy).as_nanos(),
            hybrid.dram_hit_share(policy) * 100.0,
        );
    }
    println!(
        "  smart placement speedup over all-SCM: {:.1}x",
        hybrid.placement_speedup()
    );

    // 4. A year of fleet power events.
    println!("\na simulated year (100 x 256 GiB servers, seeded events):");
    let cluster = ClusterSpec::memcache_tier(100);
    let (backend, wsp) = FleetTimeline::typical_year(2012).compare(&cluster);
    for (label, r) in [("back-end only", backend), ("WSP", wsp)] {
        println!(
            "  {:<14} availability {:>9.5}%  downtime {:>7.1} server-h  worst recovery {:>6.1} min",
            label,
            r.availability * 100.0,
            r.server_downtime.as_secs_f64() / 3600.0,
            r.worst_event_recovery.as_secs_f64() / 60.0,
        );
    }
}
