//! An in-memory key-value store surviving a power failure under each of
//! the paper's five persistence models — showing both the performance
//! cost during normal operation and what each model can (and cannot)
//! recover afterwards.
//!
//! Run with: `cargo run --release --example kvstore_recovery [--seed N]
//! [--shards N] [--epoch N] [--cross-shard-pct N]` (the seed derives the
//! stored values, default 42; `--shards`/`--epoch` size the sharded
//! group-commit demo, defaults 4 and 8; `--cross-shard-pct` is the
//! percentage of transfers in the cross-shard demo that span two
//! shards, default 60).

use wsp_repro::det::{DetRng, Rng};
use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::{CrossShardKvBench, PmHashTable, TransferOutcome};
use wsp_repro::wsp::TxnOutcome;

const ENTRIES: u64 = 5_000;
const SHARD_ENTRIES: u64 = 1_000;

/// Parses `--NAME N` (or `--NAME=N`) from the command line.
fn flag_arg(name: &str, default: u64) -> u64 {
    let bare = format!("--{name}");
    let eq = format!("--{name}=");
    let bad = || panic!("--{name} needs a u64 value");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == bare {
            return args.next().and_then(|v| v.parse().ok()).unwrap_or_else(bad);
        }
        if let Some(v) = arg.strip_prefix(&eq) {
            return v.parse().unwrap_or_else(|_| bad());
        }
    }
    default
}

fn run_one(config: HeapConfig, fof_save_fits: bool, seed: u64) -> Result<(), HeapError> {
    let mut heap = PersistentHeap::create(ByteSize::mib(16), config);
    let table = PmHashTable::create(&mut heap, 1024)?;

    // Normal operation: load the store with seeded values.
    let mut rng = DetRng::seed_from_u64(seed);
    let values: Vec<u64> = (0..ENTRIES).map(|_| rng.gen()).collect();
    let t0 = heap.elapsed();
    for k in 0..ENTRIES {
        table.insert(&mut heap, k, values[k as usize])?;
    }
    let load_time = heap.elapsed() - t0;
    let per_op = load_time / ENTRIES;

    // Power fails. Flush-on-fail may or may not complete in the window.
    let image = heap.crash(fof_save_fits);

    let recovered = match PersistentHeap::recover(image) {
        Ok(mut heap) => {
            let table = PmHashTable::open(&mut heap)?;
            let mut intact = 0u64;
            for k in 0..ENTRIES {
                if table.get(&mut heap, k)? == Some(values[k as usize]) {
                    intact += 1;
                }
            }
            format!("recovered locally, {intact}/{ENTRIES} entries intact")
        }
        Err(e) => format!("local recovery refused ({e}); refreshing from back end"),
    };

    println!(
        "{:<10} {:>9}/insert   save-completed={:<5}  {recovered}",
        config.label(),
        per_op.to_string(),
        fof_save_fits,
    );
    Ok(())
}

/// One shard of the group-commit demo: a private heap loaded with its
/// slice of the keyspace, crashed with an epoch still open, then
/// recovered.  Returns `(intact, lost)` — how many inserts survived and
/// how many rolled back (the open epoch plus any staged generation the
/// pipelined seal had not drained).
fn run_shard(
    config: HeapConfig,
    shards: u64,
    shard: u64,
    epoch: u64,
    seed: u64,
) -> Result<(u64, u64), HeapError> {
    let mut heap = PersistentHeap::create(ByteSize::mib(16), config);
    let table = PmHashTable::create(&mut heap, 256)?;
    heap.set_epoch_size(epoch);

    // Stagger the shard workloads so each crashes at a different point in
    // its open epoch and the per-shard staleness differs.
    let inserts = SHARD_ENTRIES + shard;
    let mut rng = DetRng::seed_from_u64(seed ^ (0x9E37_79B9 * (shard + 1)));
    let values: Vec<u64> = (0..inserts).map(|_| rng.gen()).collect();
    for k in 0..inserts {
        table.insert(&mut heap, k * shards + shard, values[k as usize])?;
    }

    // Power fails with the tail of the workload still in the open epoch.
    let mut heap = PersistentHeap::recover(heap.crash(false))?;
    let table = PmHashTable::open(&mut heap)?;
    let mut intact = 0u64;
    for k in 0..inserts {
        if table.get(&mut heap, k * shards + shard)? == Some(values[k as usize]) {
            intact += 1;
        }
    }
    Ok((intact, inserts - intact))
}

fn run_sharded_demo(shards: u64, epoch: u64, seed: u64) -> Result<(), HeapError> {
    println!(
        "\n-- sharded group commit: {shards} shards, epoch size {epoch}, crash mid-epoch --"
    );
    println!("   (each shard is an independent heap; recovery rolls back only the");
    println!("    open epoch plus a staged-but-undrained generation — pipelined");
    println!("    seals lag one epoch — so staleness is bounded per shard)");
    for config in HeapConfig::all().into_iter().filter(|c| c.flush_on_commit()) {
        for shard in 0..shards {
            let (intact, lost) = run_shard(config, shards, shard, epoch, seed)?;
            println!(
                "{:<10} shard {shard}: {intact} inserts durable, {lost} rolled back \
                 (open + staged, < {})",
                config.label(),
                2 * epoch,
            );
        }
    }
    Ok(())
}

/// One line per transfer: where it moved money and how 2PC (and the
/// final fleet-wide crash) settled it.
fn describe(outcome: &TransferOutcome) -> String {
    let t = &outcome.transfer;
    let route = format!(
        "{}:{} -> {}:{} ({:>2})",
        t.src.0, t.src.1, t.dst.0, t.dst.1, t.amount
    );
    let fate = if outcome.resolved_in_doubt {
        "resolved in-doubt (committed everywhere)".to_string()
    } else {
        match &outcome.outcome {
            TxnOutcome::Committed => "committed everywhere".to_string(),
            TxnOutcome::Aborted { reason } => format!("aborted everywhere ({reason})"),
        }
    };
    let span = if t.cross_shard { "cross-shard " } else { "one-shard  " };
    format!("txn {:>2}  {span}{route:<22} {fate}", t.txn)
}

fn run_cross_shard_demo(shards: u64, cross_shard_pct: u64, seed: u64) -> Result<(), HeapError> {
    let shards = (shards.max(2)) as usize;
    println!(
        "\n-- cross-shard transfers: {shards} shards, two-phase epoch seal, \
         {cross_shard_pct}% spanning two shards --"
    );
    let bench = CrossShardKvBench {
        transfers: 12,
        cross_shard_pct: cross_shard_pct.min(100) as f64 / 100.0,
        ..CrossShardKvBench::quick(shards)
    };
    let report = bench.run(HeapConfig::FocUndo, seed)?;
    for outcome in &report.outcomes {
        println!("{}", describe(outcome));
    }
    println!(
        "{} committed, {} aborted; balances conserved: {}; \
         {:.0} txn/s through the two-phase seal",
        report.committed, report.aborted, report.balance_conserved, report.txns_per_sec,
    );

    // The same run with one shard's NVRAM image lost outright: the
    // survivors still apply every decided outcome, the lost shard comes
    // back with a typed refusal and quantified staleness.
    let lossy = CrossShardKvBench {
        lose_shard: Some(1),
        ..bench
    };
    let report = lossy.run(HeapConfig::FocUndo, seed)?;
    let degraded = report.degraded.expect("shard 1 was lost");
    println!(
        "with shard 1's image lost mid-2PC: {}/{} shards audit clean; \
         shard {} refuses ({}) — {}",
        report.shards_audited,
        shards,
        degraded.shard,
        degraded.kind,
        degraded.reason,
    );
    Ok(())
}

fn main() -> Result<(), HeapError> {
    let seed = flag_arg("seed", 42);
    let shards = flag_arg("shards", 4).max(1);
    let epoch = flag_arg("epoch", 8).max(1);
    let cross_shard_pct = flag_arg("cross-shard-pct", 60);
    println!("insert {ENTRIES} keys (values from seed {seed}), crash, recover — per persistence model\n");

    println!("-- power failure with a completed flush-on-fail save --");
    for config in HeapConfig::all() {
        run_one(config, true, seed)?;
    }

    println!("\n-- power failure where the save did NOT complete --");
    println!("   (flush-on-commit models still recover from their logs;");
    println!("    flush-on-fail models must fall back to the back end)");
    for config in HeapConfig::all() {
        run_one(config, false, seed)?;
    }

    run_sharded_demo(shards, epoch, seed)?;
    run_cross_shard_demo(shards, cross_shard_pct, seed)?;

    println!("\nthe trade the paper quantifies: FoF's zero runtime overhead");
    println!("against its dependence on the residual-energy-window save;");
    println!("group commit adds a second dial — epoch size buys throughput");
    println!("at the cost of up to 2*epoch-1 transactions lost per shard");
    println!("(the open epoch plus the staged generation a pipelined seal");
    println!("had not yet drained).");
    Ok(())
}
