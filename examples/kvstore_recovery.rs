//! An in-memory key-value store surviving a power failure under each of
//! the paper's five persistence models — showing both the performance
//! cost during normal operation and what each model can (and cannot)
//! recover afterwards.
//!
//! Run with: `cargo run --release --example kvstore_recovery [--seed N]`
//! (the seed derives the stored values; default 42).

use wsp_repro::det::{DetRng, Rng};
use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::PmHashTable;

const ENTRIES: u64 = 5_000;

/// Parses `--seed N` (or `--seed=N`) from the command line.
fn seed_arg(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--seed needs a u64 value"));
        }
        if let Some(v) = arg.strip_prefix("--seed=") {
            return v.parse().unwrap_or_else(|_| panic!("--seed needs a u64 value"));
        }
    }
    default
}

fn run_one(config: HeapConfig, fof_save_fits: bool, seed: u64) -> Result<(), HeapError> {
    let mut heap = PersistentHeap::create(ByteSize::mib(16), config);
    let table = PmHashTable::create(&mut heap, 1024)?;

    // Normal operation: load the store with seeded values.
    let mut rng = DetRng::seed_from_u64(seed);
    let values: Vec<u64> = (0..ENTRIES).map(|_| rng.gen()).collect();
    let t0 = heap.elapsed();
    for k in 0..ENTRIES {
        table.insert(&mut heap, k, values[k as usize])?;
    }
    let load_time = heap.elapsed() - t0;
    let per_op = load_time / ENTRIES;

    // Power fails. Flush-on-fail may or may not complete in the window.
    let image = heap.crash(fof_save_fits);

    let recovered = match PersistentHeap::recover(image) {
        Ok(mut heap) => {
            let table = PmHashTable::open(&mut heap)?;
            let mut intact = 0u64;
            for k in 0..ENTRIES {
                if table.get(&mut heap, k)? == Some(values[k as usize]) {
                    intact += 1;
                }
            }
            format!("recovered locally, {intact}/{ENTRIES} entries intact")
        }
        Err(e) => format!("local recovery refused ({e}); refreshing from back end"),
    };

    println!(
        "{:<10} {:>9}/insert   save-completed={:<5}  {recovered}",
        config.label(),
        per_op.to_string(),
        fof_save_fits,
    );
    Ok(())
}

fn main() -> Result<(), HeapError> {
    let seed = seed_arg(42);
    println!("insert {ENTRIES} keys (values from seed {seed}), crash, recover — per persistence model\n");

    println!("-- power failure with a completed flush-on-fail save --");
    for config in HeapConfig::all() {
        run_one(config, true, seed)?;
    }

    println!("\n-- power failure where the save did NOT complete --");
    println!("   (flush-on-commit models still recover from their logs;");
    println!("    flush-on-fail models must fall back to the back end)");
    for config in HeapConfig::all() {
        run_one(config, false, seed)?;
    }

    println!("\nthe trade the paper quantifies: FoF's zero runtime overhead");
    println!("against its dependence on the residual-energy-window save.");
    Ok(())
}
