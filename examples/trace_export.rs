//! Trace export: run the save-path crash-point sweep, export its merged
//! event stream as JSONL, validate the export against the strict schema
//! in-process, and print the aggregated metrics.
//!
//! Run with: `cargo run --release --example trace_export [--seed N]
//! [--out FILE]` — with `--out`, the JSONL goes to the file instead of
//! stdout. Exits nonzero if the export fails its own schema or the
//! round trip loses an event.

use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::obs;
use wsp_repro::wsp::{sweep_save_path, RestartStrategy};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next();
        }
        if let Some(v) = arg.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed needs a u64 value"))
        .unwrap_or(42);

    eprintln!("sweeping the save path (seed {seed})...");
    let report = sweep_save_path(
        Machine::intel_testbed,
        SystemLoad::Busy,
        RestartStrategy::RestorePathReinit,
        seed,
    );
    eprintln!(
        "  {} crash points, {} locally restored, {} trace events",
        report.outcomes.len(),
        report.locally_restored,
        report.trace.len()
    );

    let jsonl = obs::trace_to_jsonl(&report.trace);

    // The export must satisfy its own schema, event for event.
    let parsed = match obs::parse_jsonl(&jsonl) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("error: export violates the trace schema: {e}");
            std::process::exit(1);
        }
    };
    if parsed.len() != report.trace.len() {
        eprintln!(
            "error: round trip lost events: {} exported, {} parsed",
            report.trace.len(),
            parsed.len()
        );
        std::process::exit(1);
    }
    for (p, e) in parsed.iter().zip(report.trace.events()) {
        if !p.same_content(e) {
            eprintln!("error: round trip changed {e} into {}", p.display());
            std::process::exit(1);
        }
    }
    eprintln!("  schema check: {} events valid", parsed.len());

    match arg_value("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &jsonl) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("  trace written to {path}");
        }
        None => print!("{jsonl}"),
    }

    eprintln!("\naggregated metrics:");
    eprintln!("{}", report.metrics.to_json());
}
