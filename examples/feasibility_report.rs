//! The hardware-feasibility story (paper §5.2–5.4): residual energy
//! windows measured scope-style, flush-on-fail save budgets, why the
//! ACPI strawman cannot work, and what a supercapacitor safety margin
//! costs.
//!
//! Run with: `cargo run --release --example feasibility_report`

use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::power::{Oscilloscope, Psu, SupercapProvisioner};
use wsp_repro::units::{Nanos, Watts};
use wsp_repro::wsp::feasibility_matrix;

fn main() {
    // 1. Measure a residual window the way the paper does: watch the
    //    rails at 100 kHz after PWR_OK drops.
    let scope = Oscilloscope::at_100khz();
    let trace = scope.capture(&Psu::atx_1050w(), Watts::new(350.0), Nanos::from_millis(120));
    println!(
        "oscilloscope on the 1050 W unit at 350 W: window = {}",
        trace
            .measured_window()
            .map_or("none".into(), |w| w.to_string())
    );

    // 2. The full feasibility matrix.
    println!("\nsave time vs residual window (every testbed/PSU/load pairing):");
    for row in feasibility_matrix() {
        println!(
            "  {:<24} {:<10} {:<5} save {:>8} window {:>9} -> {:>5.1}% {}",
            row.machine,
            row.psu,
            row.load,
            row.save_time.to_string(),
            row.window.to_string(),
            row.fraction.unwrap_or(0.0) * 100.0,
            if row.fits { "fits" } else { "DOES NOT FIT" },
        );
    }

    // 3. Why the ACPI-suspend strawman fails: device drain time.
    println!("\nACPI D3 suspend cost on the Intel testbed (busy):");
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Busy, 1);
    let mut total = Nanos::ZERO;
    for d in machine.devices() {
        println!(
            "  {:<6} {:>10}  ({} in-flight I/Os to drain)",
            d.name,
            d.suspend_time().to_string(),
            d.inflight()
        );
        total += d.suspend_time();
    }
    println!(
        "  total {:>10}  vs a {} window: hopeless on the save path",
        total.to_string(),
        machine.residual_window(SystemLoad::Busy)
    );

    // 4. Explicit provisioning: the paper's $2 supercapacitor.
    let flush = machine
        .flush_analysis()
        .state_save_time(wsp_repro::cache::FlushMethod::Wbinvd, machine.dirty_estimate(SystemLoad::Busy));
    let plan = SupercapProvisioner::new(Watts::new(350.0), 3.0).plan(flush);
    println!(
        "\nexplicit provisioning: a {:.2} F supercap (~${:.2}) powers the {} save with 3x margin",
        plan.capacitance.get(),
        plan.cost_usd,
        flush
    );
}
