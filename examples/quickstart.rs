//! Quickstart: the whole story in one file.
//!
//! 1. Build a WSP server (the paper's Intel testbed).
//! 2. Pull the plug under load; watch the flush-on-fail save race the
//!    PSU's residual energy window.
//! 3. Power back up and verify the machine resumed where it left off.
//!
//! Run with: `cargo run --release --example quickstart`

use wsp_repro::machine::{Machine, SystemLoad};
use wsp_repro::wsp::{RestartStrategy, WspSystem};

fn main() {
    let mut system = WspSystem::new(Machine::intel_testbed());
    println!(
        "machine: {}, {} cores, {} of NVDIMM memory, {}",
        system.machine().profile().name,
        system.machine().cores().len(),
        system.machine().nvram().total_capacity(),
        system.machine().psu(),
    );

    let window = system.machine().residual_window(SystemLoad::Busy);
    println!("residual energy window at busy load: {window}\n");

    println!("--- pulling the plug (busy, restore-path device re-init) ---");
    let outage = system.power_failure_drill(
        SystemLoad::Busy,
        RestartStrategy::RestorePathReinit,
        2026,
    );

    println!("save path (figure 4, steps 1-8):");
    for (step, t) in &outage.save.steps {
        println!("  {:<28} {}", step.label(), t);
    }
    println!(
        "save total: {} of a {} window ({:.1}%) -> {}",
        outage.save.total,
        outage.save.window,
        outage.save.fraction_of_window.unwrap_or(0.0) * 100.0,
        if outage.save.completed { "fits" } else { "DOES NOT FIT" },
    );

    if let Some(restore) = &outage.restore {
        println!("\nrestore path (figure 4, steps 10-14):");
        for (step, t) in &restore.steps {
            println!("  {:<28} {}", step.label(), t);
        }
        println!(
            "restore total: {} ({} cancelled I/Os retried)",
            restore.total, restore.ios_retried
        );
    }

    println!(
        "\ndata preserved bit-exactly: {}",
        if outage.data_preserved { "yes" } else { "no" }
    );
    println!(
        "local downtime (save + NVDIMM flash save + restore): {:.1} s",
        outage.local_downtime.as_secs_f64()
    );
    println!(
        "\ncompare: back-end recovery of this machine's {} at 0.5 GB/s would take ~{:.0} minutes",
        system.machine().nvram().total_capacity(),
        system.machine().nvram().total_capacity().as_gib_f64() / 0.5 / 60.0,
    );
}
