//! The datacenter motivation (paper §1–2) and the §6 replication
//! trade-off: recovery storms after a correlated power failure, and when
//! a replica group should wait for NVRAM recovery vs re-replicate.
//!
//! Run with: `cargo run --release --example recovery_storm [--seed N]`
//! (the seed drives the simulated year of power events; default 42).

use wsp_repro::cluster::{ClusterSpec, FleetTimeline, OutageScenario, RecoveryDecision, ReplicaGroup};
use wsp_repro::units::Nanos;

/// Parses `--seed N` (or `--seed=N`) from the command line.
fn seed_arg(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--seed needs a u64 value"));
        }
        if let Some(v) = arg.strip_prefix("--seed=") {
            return v.parse().unwrap_or_else(|_| panic!("--seed needs a u64 value"));
        }
    }
    default
}

fn main() {
    let seed = seed_arg(42);
    let cluster = ClusterSpec::memcache_tier(100);
    println!(
        "fleet: {} servers x {} in-memory state, shared {} back end\n",
        cluster.servers, cluster.memory_per_server, cluster.backend_bandwidth
    );

    println!("recovery storms after a 30 s rack power event:");
    println!(
        "{:>8}  {:>18}  {:>14}  {:>9}",
        "failed", "back-end recovery", "WSP recovery", "speedup"
    );
    for failed in [1usize, 10, 50, 100] {
        let report =
            cluster.recovery_report(&OutageScenario::rack_power(Nanos::from_secs(30), failed));
        println!(
            "{failed:>8}  {:>15.1} min  {:>12.1} s  {:>8.0}x",
            report.backend_time.as_secs_f64() / 60.0,
            report.wsp_time.as_secs_f64(),
            report.speedup()
        );
    }

    println!("\nhow long an outage can WSP absorb before full re-reads win?");
    for outage_secs in [60u64, 600, 3600, 6 * 3600] {
        let t = cluster.wsp_recovery_time(100, Nanos::from_secs(outage_secs));
        println!(
            "  outage {:>5} s -> WSP catch-up {:>8.1} s (back-end: {:.1} h)",
            outage_secs,
            t.as_secs_f64(),
            cluster.backend_recovery_time(100).as_secs_f64() / 3600.0
        );
    }

    println!("\na simulated year of power events (seed {seed}):");
    let timeline = FleetTimeline::typical_year(seed);
    let (backend, wsp) = timeline.compare(&cluster);
    println!(
        "  {} events; availability {:.6} back-end-only vs {:.6} WSP ({:.1}x less downtime)",
        timeline.events.len(),
        backend.availability,
        wsp.availability,
        backend.server_downtime.as_secs_f64() / wsp.server_downtime.as_secs_f64(),
    );

    println!("\nreplica-group decision (64 GB partition, one of three replicas down):");
    let group = ReplicaGroup::typical();
    println!(
        "  re-replication from a live copy takes {:.1} s",
        group.re_replication_time().as_secs_f64()
    );
    println!(
        "  break-even outage: {:.1} s",
        group.break_even_outage().as_secs_f64()
    );
    for outage_secs in [5u64, 30, 120, 600] {
        let decision = group.decide(Nanos::from_secs(outage_secs));
        let (what, eta) = match decision {
            RecoveryDecision::WaitForNvramRecovery { eta } => ("wait for NVRAM recovery", eta),
            RecoveryDecision::ReReplicate { eta } => ("re-replicate now", eta),
        };
        println!(
            "  expected outage {outage_secs:>4} s -> {what} (redundancy back in {:.1} s)",
            eta.as_secs_f64()
        );
    }
}
