//! The paper's Table 1 scenario as an application: an LDAP-like
//! directory server whose store is either a Mnemosyne persistent heap
//! (flush-on-commit STM) or a plain in-memory tree under whole-system
//! persistence — same code, different persistence model — including the
//! crash/recover path for each.
//!
//! Run with: `cargo run --release --example directory_server`

use wsp_repro::pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_repro::units::ByteSize;
use wsp_repro::workloads::{DirEntry, Directory};

const USERS: u32 = 2_000;

fn entry(n: u32) -> DirEntry {
    DirEntry::new(
        format!("cn=user{n:06},ou=People,dc=example,dc=com"),
        vec![
            ("objectClass".into(), "inetOrgPerson".into()),
            ("sn".into(), format!("Surname{n}")),
            ("mail".into(), format!("user{n}@example.com")),
        ],
    )
}

fn serve(config: HeapConfig, fof_save: bool) -> Result<(), HeapError> {
    let mut heap = PersistentHeap::create(ByteSize::mib(32), config);
    let dir = Directory::create(&mut heap)?;

    let t0 = heap.elapsed();
    for n in 0..USERS {
        dir.add(&mut heap, &entry(n))?;
    }
    let add_rate = f64::from(USERS) / (heap.elapsed() - t0).as_secs_f64();

    // Serve a few lookups, then lose power.
    let alice = dir.search(&mut heap, "cn=user000042,ou=People,dc=example,dc=com")?;
    assert!(alice.is_some(), "directory serves reads");

    let image = heap.crash(fof_save);
    let verdict = match PersistentHeap::recover(image) {
        Ok(mut heap) => {
            let dir = Directory::open(&mut heap)?;
            let n = dir.len(&mut heap)?;
            let probe = dir.search(&mut heap, "cn=user001999,ou=People,dc=example,dc=com")?;
            format!(
                "back online with {n} entries; probe lookup {}",
                if probe.is_some() { "ok" } else { "MISSING" }
            )
        }
        Err(e) => format!("cold start required: {e}"),
    };
    println!(
        "{:<10} {:>10.0} adds/s   {}",
        config.label(),
        add_rate,
        verdict
    );
    Ok(())
}

fn main() -> Result<(), HeapError> {
    println!("directory server: {USERS} adds, then a power failure\n");
    println!("-- Mnemosyne store (flush-on-commit STM), no save needed --");
    serve(HeapConfig::FocStm, false)?;
    println!("\n-- WSP store (plain in-memory tree), flush-on-fail save fits --");
    serve(HeapConfig::Fof, true)?;
    println!("\n-- WSP store, save missed the window --");
    serve(HeapConfig::Fof, false)?;
    println!("\nTable 1's trade: ~2.4x faster updates, paid for by reliance on");
    println!("the residual-energy-window save (and back-end fallback without it).");
    Ok(())
}
