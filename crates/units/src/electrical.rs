//! Electrical quantities: [`Volts`], [`Watts`], [`Joules`] and [`Farads`],
//! with the capacitor-energy algebra the paper's residual-energy analysis
//! is built on.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};


use crate::Nanos;

macro_rules! f64_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a quantity from a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `v` is NaN — a NaN quantity would silently poison
            /// every downstream energy calculation.
            #[must_use]
            pub fn new(v: f64) -> Self {
                assert!(!v.is_nan(), concat!(stringify!($name), " must not be NaN"));
                $name(v)
            }

            /// Raw value in base units.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// The larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3}{}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
    };
}

f64_unit!(
    /// Electrical potential in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use wsp_units::Volts;
    /// let rail = Volts::new(12.0);
    /// assert!(rail * 0.95 < rail);
    /// ```
    Volts,
    "V"
);

f64_unit!(
    /// Power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use wsp_units::{Nanos, Watts};
    /// let load = Watts::new(250.0);
    /// let energy = load * Nanos::from_millis(40);
    /// assert!((energy.get() - 10.0).abs() < 1e-9);
    /// ```
    Watts,
    "W"
);

f64_unit!(
    /// Energy in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use wsp_units::{Joules, Watts};
    /// let window = Joules::new(5.0) / Watts::new(100.0);
    /// assert_eq!(window.as_millis(), 50);
    /// ```
    Joules,
    "J"
);

f64_unit!(
    /// Capacitance in farads.
    ///
    /// # Examples
    ///
    /// ```
    /// use wsp_units::{Farads, Volts};
    /// let c = Farads::new(0.5);
    /// let e = c.stored_energy(Volts::new(12.0));
    /// assert!((e.get() - 36.0).abs() < 1e-9);
    /// ```
    Farads,
    "F"
);

impl Farads {
    /// Energy stored on this capacitance charged to `v`: `½·C·V²`.
    #[must_use]
    pub fn stored_energy(self, v: Volts) -> Joules {
        Joules::new(0.5 * self.0 * v.get() * v.get())
    }

    /// Usable energy released while the voltage sags from `from` down to
    /// `to`: `½·C·(V₁²−V₂²)`. Returns zero if `to >= from`.
    #[must_use]
    pub fn energy_between(self, from: Volts, to: Volts) -> Joules {
        if to >= from {
            Joules::ZERO
        } else {
            Joules::new(0.5 * self.0 * (from.get() * from.get() - to.get() * to.get()))
        }
    }

    /// Voltage remaining after this capacitance, charged to `v0`, has
    /// delivered `drained` of energy: `√(V₀² − 2E/C)`. Returns zero volts
    /// once the capacitor is exhausted.
    #[must_use]
    pub fn voltage_after(self, v0: Volts, drained: Joules) -> Volts {
        if self.0 <= 0.0 {
            return Volts::ZERO;
        }
        let v_sq = v0.get() * v0.get() - 2.0 * drained.get() / self.0;
        if v_sq <= 0.0 {
            Volts::ZERO
        } else {
            Volts::new(v_sq.sqrt())
        }
    }
}

impl Mul<Nanos> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Nanos) -> Joules {
        Joules::new(self.0 * rhs.as_secs_f64())
    }
}

impl Mul<Watts> for Nanos {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Watts> for Joules {
    type Output = Nanos;
    /// Time for which this energy sustains a `rhs` load. An infinitesimal
    /// or non-positive load yields [`Nanos::MAX`] ("effectively forever"),
    /// and non-positive energy yields zero.
    fn div(self, rhs: Watts) -> Nanos {
        if self.0 <= 0.0 {
            Nanos::ZERO
        } else if rhs.0 <= 0.0 {
            Nanos::MAX
        } else {
            Nanos::from_secs_f64(self.0 / rhs.0)
        }
    }
}

impl Div<Volts> for Watts {
    type Output = f64;
    /// Current draw in amperes implied by this power at voltage `rhs`.
    fn div(self, rhs: Volts) -> f64 {
        self.0 / rhs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitor_energy_identities() {
        let c = Farads::new(0.047);
        let full = c.stored_energy(Volts::new(12.0));
        let empty = c.stored_energy(Volts::ZERO);
        assert!((full.get() - 0.5 * 0.047 * 144.0).abs() < 1e-12);
        assert_eq!(empty, Joules::ZERO);
        let between = c.energy_between(Volts::new(12.0), Volts::ZERO);
        assert!((between.get() - full.get()).abs() < 1e-12);
    }

    #[test]
    fn energy_between_is_zero_for_inverted_range() {
        let c = Farads::new(1.0);
        assert_eq!(c.energy_between(Volts::new(3.0), Volts::new(5.0)), Joules::ZERO);
    }

    #[test]
    fn voltage_after_round_trips_energy() {
        let c = Farads::new(0.5);
        let v0 = Volts::new(12.0);
        let drained = c.energy_between(v0, Volts::new(9.0));
        let v = c.voltage_after(v0, drained);
        assert!((v.get() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn voltage_after_clamps_at_zero() {
        let c = Farads::new(0.001);
        let v = c.voltage_after(Volts::new(5.0), Joules::new(100.0));
        assert_eq!(v, Volts::ZERO);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(400.0) * Nanos::from_millis(25);
        assert!((e.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_power_is_time() {
        let t = Joules::new(2.0) / Watts::new(500.0);
        assert_eq!(t.as_millis(), 4);
        assert_eq!(Joules::new(-1.0) / Watts::new(10.0), Nanos::ZERO);
        assert_eq!(Joules::new(1.0) / Watts::ZERO, Nanos::MAX);
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(Volts::new(12.0).to_string(), "12.000V");
        assert_eq!(Watts::new(1050.0).to_string(), "1050.000W");
        assert_eq!(Joules::new(0.5).to_string(), "0.500J");
        assert_eq!(Farads::new(0.047).to_string(), "0.047F");
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Watts::new(f64::NAN);
    }
}
