//! A log-bucketed latency histogram for tail reporting (p50/p95/p99),
//! in the spirit of HdrHistogram but sized for simulation use.


use crate::Nanos;

/// Buckets per power of two (higher = finer resolution).
const SUB_BUCKETS: usize = 16;
/// Powers of two covered (1 ns .. ~1.2 hours).
const POWERS: usize = 42;

/// A fixed-memory latency histogram with ~6 % relative error.
///
/// # Examples
///
/// ```
/// use wsp_units::{LatencyHistogram, Nanos};
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=1000u64 {
///     h.record(Nanos::new(i));
/// }
/// let p50 = h.percentile(50.0).as_nanos();
/// assert!((450..=560).contains(&p50), "p50 = {p50}");
/// assert!(h.percentile(99.0) > h.percentile(50.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; POWERS * SUB_BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let power = 63 - value.leading_zeros() as usize;
        if power < 4 {
            // Values below 16 ns land in the first sub-bucket range
            // directly (exact).
            return value as usize;
        }
        // Sub-bucket index from the 4 bits below the leading one.
        let sub = ((value >> (power - 4)) & 0xf) as usize;
        (power.min(POWERS - 1)) * SUB_BUCKETS + sub
    }

    /// Lower bound of a bucket (inverse of [`Self::bucket_of`]).
    fn bucket_floor(index: usize) -> u64 {
        if index < 16 {
            return index as u64;
        }
        let power = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        (1u64 << power) | ((sub as u64) << (power - 4))
    }

    /// Records one observation.
    pub fn record(&mut self, value: Nanos) {
        let v = value.as_nanos();
        let idx = Self::bucket_of(v).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest observation (zero when empty).
    #[must_use]
    pub fn max(&self) -> Nanos {
        Nanos::new(if self.total == 0 { 0 } else { self.max })
    }

    /// Smallest observation (zero when empty).
    #[must_use]
    pub fn min(&self) -> Nanos {
        Nanos::new(if self.total == 0 { 0 } else { self.min })
    }

    /// The value at percentile `p` (0–100). Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Nanos {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Nanos::new(Self::bucket_floor(i).min(self.max).max(self.min));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), Nanos::ZERO);
        assert_eq!(h.max(), Nanos::ZERO);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::new(1234));
        for p in [0.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p).as_nanos();
            assert!((1150..=1300).contains(&v), "p{p} = {v}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_accurate() {
        let mut h = LatencyHistogram::new();
        // Uniform 1..=10_000 ns.
        for i in 1..=10_000u64 {
            h.record(Nanos::new(i));
        }
        let p50 = h.percentile(50.0).as_nanos();
        let p90 = h.percentile(90.0).as_nanos();
        let p99 = h.percentile(99.0).as_nanos();
        assert!(p50 <= p90 && p90 <= p99);
        assert!((4_600..=5_400).contains(&p50), "p50 = {p50}");
        assert!((8_400..=9_600).contains(&p90), "p90 = {p90}");
        assert!((9_300..=10_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn bimodal_tail_is_visible() {
        let mut h = LatencyHistogram::new();
        for _ in 0..990 {
            h.record(Nanos::new(100));
        }
        for _ in 0..10 {
            h.record(Nanos::from_micros(100)); // 1% slow ops
        }
        assert!(h.percentile(50.0).as_nanos() < 150);
        assert!(h.percentile(99.5).as_micros() >= 90);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 1..=100u64 {
            a.record(Nanos::new(i));
            b.record(Nanos::new(i * 1000));
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.percentile(25.0).as_nanos() <= 100);
        assert!(a.percentile(75.0).as_nanos() >= 1000);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos::new(3));
        assert_eq!(h.percentile(100.0).as_nanos(), 3);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_rejected() {
        let _ = LatencyHistogram::new().percentile(101.0);
    }
}
