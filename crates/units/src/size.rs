//! Data sizes: the [`ByteSize`] type used for cache geometries, NVDIMM
//! capacities and transfer accounting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};


/// A size in bytes.
///
/// # Examples
///
/// ```
/// use wsp_units::ByteSize;
///
/// let l3 = ByteSize::mib(8) * 2;          // two sockets
/// assert_eq!(l3.as_u64(), 16 * 1024 * 1024);
/// assert_eq!(l3.lines(64), 262_144);       // 64-byte cache lines
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `n` bytes.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        ByteSize(n)
    }

    /// `n` kibibytes (1024 bytes each).
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// `n` mebibytes.
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Size in fractional mebibytes.
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Size in fractional gibibytes.
    #[must_use]
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of cache lines of `line_size` bytes needed to cover this
    /// size, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero.
    #[must_use]
    pub fn lines(self, line_size: u64) -> u64 {
        assert!(line_size > 0, "line size must be non-zero");
        self.0.div_ceil(line_size)
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two sizes.
    #[must_use]
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The larger of two sizes.
    #[must_use]
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// True if the size is exactly zero bytes.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        let n = self.0;
        if n >= GIB && n.is_multiple_of(GIB) {
            write!(f, "{}GiB", n / GIB)
        } else if n >= MIB && n.is_multiple_of(MIB) {
            write!(f, "{}MiB", n / MIB)
        } else if n >= KIB && n.is_multiple_of(KIB) {
            write!(f, "{}KiB", n / KIB)
        } else {
            write!(f, "{n}B")
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1 << 20);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn lines_round_up() {
        assert_eq!(ByteSize::new(0).lines(64), 0);
        assert_eq!(ByteSize::new(1).lines(64), 1);
        assert_eq!(ByteSize::new(64).lines(64), 1);
        assert_eq!(ByteSize::new(65).lines(64), 2);
    }

    #[test]
    #[should_panic(expected = "line size must be non-zero")]
    fn lines_rejects_zero_line_size() {
        let _ = ByteSize::new(64).lines(0);
    }

    #[test]
    fn display_uses_exact_units() {
        assert_eq!(ByteSize::new(17).to_string(), "17B");
        assert_eq!(ByteSize::kib(3).to_string(), "3KiB");
        assert_eq!(ByteSize::mib(8).to_string(), "8MiB");
        assert_eq!(ByteSize::gib(48).to_string(), "48GiB");
        assert_eq!(ByteSize::new(1536).to_string(), "1536B");
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::kib(4);
        assert_eq!((a + a).as_u64(), 8192);
        assert_eq!((a - ByteSize::kib(1)).as_u64(), 3072);
        assert_eq!((a * 3).as_u64(), 12_288);
        assert_eq!((a / 2).as_u64(), 2048);
        assert_eq!(ByteSize::ZERO.saturating_sub(a), ByteSize::ZERO);
    }

    #[test]
    fn fractional_views() {
        assert!((ByteSize::mib(1).as_mib_f64() - 1.0).abs() < 1e-12);
        assert!((ByteSize::gib(2).as_gib_f64() - 2.0).abs() < 1e-12);
    }
}
