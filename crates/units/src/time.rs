//! Simulated time: the [`Nanos`] duration type and the [`SimClock`]
//! accumulator used by every timing model in the reproduction.

use std::cell::Cell;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};


/// A span of simulated time in nanoseconds.
///
/// All latencies in the reproduction — cache hits, `wbinvd` walks, NVDIMM
/// saves, residual energy windows — are expressed as `Nanos`. A `u64`
/// nanosecond count covers ~584 years, far beyond any simulated scenario.
///
/// # Examples
///
/// ```
/// use wsp_units::Nanos;
///
/// let hit = Nanos::new(4);
/// let miss = Nanos::from_micros(1) / 10;
/// assert!(miss > hit);
/// assert_eq!((hit + miss).as_nanos(), 104);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Largest representable duration; used as an "effectively forever"
    /// sentinel (e.g. a residual window with no load attached).
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration of `ns` nanoseconds.
    #[must_use]
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration of `us` microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at
    /// [`Nanos::MAX`] and clamping negatives/NaN to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        let ns = s * 1e9;
        if ns.is_nan() || ns <= 0.0 {
            Nanos::ZERO
        } else if ns >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(ns as u64)
        }
    }

    /// Creates a duration from fractional milliseconds (same saturation
    /// rules as [`Nanos::from_secs_f64`]).
    #[must_use]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in whole microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs` is larger.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Checked division producing the ratio of two durations.
    ///
    /// Returns `None` when `denom` is zero. Used for safety-margin style
    /// computations such as "save time as a fraction of the residual
    /// window".
    #[must_use]
    pub fn ratio_of(self, denom: Nanos) -> Option<f64> {
        if denom.0 == 0 {
            None
        } else {
            Some(self.0 as f64 / denom.0 as f64)
        }
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Mul<Nanos> for u64 {
    type Output = Nanos;
    fn mul(self, rhs: Nanos) -> Nanos {
        Nanos(self * rhs.0)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

/// A monotonically advancing simulated clock.
///
/// Components charge time to the clock as they model work; the clock is the
/// single source of "now" within one simulated machine. Interior mutability
/// (a [`Cell`]) lets many components share one clock without threading
/// `&mut` borrows through every call — simulations are single-threaded per
/// machine, which is also why the type is deliberately `!Sync`.
///
/// # Examples
///
/// ```
/// use wsp_units::{Nanos, SimClock};
///
/// let clock = SimClock::new();
/// clock.advance(Nanos::from_micros(3));
/// clock.advance(Nanos::new(250));
/// assert_eq!(clock.now().as_nanos(), 3_250);
/// ```
#[derive(Debug, Default)]
pub struct SimClock {
    now: Cell<u64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time since the clock was created or last reset.
    #[must_use]
    pub fn now(&self) -> Nanos {
        Nanos(self.now.get())
    }

    /// Advances the clock by `d`, saturating at the maximum representable
    /// time rather than wrapping.
    pub fn advance(&self, d: Nanos) {
        self.now.set(self.now.get().saturating_add(d.0));
    }

    /// Resets the clock to zero (used between benchmark repetitions).
    pub fn reset(&self) {
        self.now.set(0);
    }

    /// Runs `f` and returns both its result and the simulated time it
    /// charged to the clock.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, Nanos) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_micros(2).as_nanos(), 2_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn float_constructor_saturates() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(1e300), Nanos::MAX);
        assert_eq!(Nanos::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos::new(100);
        let b = Nanos::new(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
    }

    #[test]
    fn scalar_float_multiplication() {
        let a = Nanos::from_micros(10);
        assert_eq!((a * 0.5).as_nanos(), 5_000);
    }

    #[test]
    fn ratio_of_handles_zero_denominator() {
        assert_eq!(Nanos::new(5).ratio_of(Nanos::ZERO), None);
        let r = Nanos::new(5).ratio_of(Nanos::new(20)).unwrap();
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_natural_scale() {
        assert_eq!(Nanos::new(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = (1..=4).map(Nanos::new).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn clock_advances_and_measures() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Nanos::ZERO);
        let ((), spent) = clock.measure(|| clock.advance(Nanos::new(7)));
        assert_eq!(spent.as_nanos(), 7);
        clock.reset();
        assert_eq!(clock.now(), Nanos::ZERO);
    }

    #[test]
    fn clock_saturates_instead_of_wrapping() {
        let clock = SimClock::new();
        clock.advance(Nanos::MAX);
        clock.advance(Nanos::new(1));
        assert_eq!(clock.now(), Nanos::MAX);
    }
}
