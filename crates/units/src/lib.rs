//! Physical and simulation units shared by every crate in the
//! whole-system-persistence (WSP) reproduction.
//!
//! The WSP paper reasons about quantities from several domains at once:
//! simulated time (cache-flush latencies in nanoseconds, residual energy
//! windows in milliseconds), data sizes (cache capacities, NVDIMM
//! capacities), electrical quantities (PSU capacitance, ultracapacitor
//! energy, system power draw), and transfer rates (memory and flash
//! bandwidth). Mixing those up as bare `f64`/`u64` values is exactly the
//! class of bug a simulator cannot afford, so each quantity gets a newtype
//! with only the physically meaningful operators defined
//! ([`Joules`] ÷ [`Watts`] → [`Nanos`], [`ByteSize`] ÷ [`Bandwidth`] →
//! [`Nanos`], and so on).
//!
//! # Examples
//!
//! Compute how long a PSU's stored energy can carry a given load — the
//! heart of the paper's residual-energy-window argument:
//!
//! ```
//! use wsp_units::{Farads, Volts, Watts};
//!
//! let cap = Farads::new(0.047);          // effective output capacitance
//! let energy = cap.energy_between(Volts::new(12.0), Volts::new(11.4));
//! let window = energy / Watts::new(250.0);
//! assert!(window.as_millis_f64() > 1.0);
//! ```
//!
//! Convert a data size and a bandwidth into a transfer time — the
//! "theoretical best" cache flush of Table 2:
//!
//! ```
//! use wsp_units::{Bandwidth, ByteSize};
//!
//! let cache = ByteSize::mib(16);
//! let bus = Bandwidth::gib_per_sec(21.0);
//! let best = cache / bus;
//! assert!(best.as_millis_f64() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod electrical;
mod hist;
mod size;
mod stats;
mod time;

pub use bandwidth::Bandwidth;
pub use hist::LatencyHistogram;
pub use electrical::{Farads, Joules, Volts, Watts};
pub use size::ByteSize;
pub use stats::{OnlineStats, Summary};
pub use time::{Nanos, SimClock};
