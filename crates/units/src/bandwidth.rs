//! Transfer rates: the [`Bandwidth`] type and its interaction with
//! [`ByteSize`] and [`Nanos`].

use std::fmt;
use std::ops::{Div, Mul};


use crate::{ByteSize, Nanos};

/// A data transfer rate in bytes per second.
///
/// # Examples
///
/// The "theoretical best" flush time of Table 2 is cache bytes over memory
/// bandwidth:
///
/// ```
/// use wsp_units::{Bandwidth, ByteSize};
///
/// let t = ByteSize::mib(6) / Bandwidth::gib_per_sec(9.0);
/// assert!(t.as_millis_f64() < 0.7);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero transfer rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Creates a rate of `v` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN or negative.
    #[must_use]
    pub fn bytes_per_sec(v: f64) -> Self {
        assert!(v.is_finite() && v >= 0.0, "bandwidth must be finite and non-negative");
        Bandwidth(v)
    }

    /// `v` mebibytes per second.
    #[must_use]
    pub fn mib_per_sec(v: f64) -> Self {
        Self::bytes_per_sec(v * 1024.0 * 1024.0)
    }

    /// `v` gibibytes per second.
    #[must_use]
    pub fn gib_per_sec(v: f64) -> Self {
        Self::bytes_per_sec(v * 1024.0 * 1024.0 * 1024.0)
    }

    /// Raw rate in bytes per second.
    #[must_use]
    pub const fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Rate in fractional gibibytes per second.
    #[must_use]
    pub fn as_gib_per_sec(self) -> f64 {
        self.0 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Time to transfer `size` at this rate. A zero rate yields
    /// [`Nanos::MAX`] ("never completes").
    #[must_use]
    pub fn transfer_time(self, size: ByteSize) -> Nanos {
        if self.0 <= 0.0 {
            if size.is_zero() {
                Nanos::ZERO
            } else {
                Nanos::MAX
            }
        } else {
            Nanos::from_secs_f64(size.as_u64() as f64 / self.0)
        }
    }

    /// Bytes moved in `d` at this rate (truncating).
    #[must_use]
    pub fn bytes_in(self, d: Nanos) -> ByteSize {
        ByteSize::new((self.0 * d.as_secs_f64()) as u64)
    }

    /// Splits this bandwidth evenly across `n` concurrent consumers — the
    /// shared back-end bottleneck of a recovery storm. Zero consumers get
    /// the full rate (nobody is contending).
    #[must_use]
    pub fn shared_by(self, n: usize) -> Bandwidth {
        if n <= 1 {
            self
        } else {
            Bandwidth(self.0 / n as f64)
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * MIB;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB/s", self.0 / GIB)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB/s", self.0 / MIB)
        } else {
            write!(f, "{:.0}B/s", self.0)
        }
    }
}

impl Div<Bandwidth> for ByteSize {
    type Output = Nanos;
    fn div(self, rhs: Bandwidth) -> Nanos {
        rhs.transfer_time(self)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_hand_math() {
        let bw = Bandwidth::gib_per_sec(0.5);
        let t = bw.transfer_time(ByteSize::gib(256));
        // 256 GiB at 0.5 GiB/s = 512 s — the paper's "> 8 min" example.
        assert_eq!(t.as_millis(), 512_000);
        assert!(t.as_secs_f64() > 8.0 * 60.0);
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert_eq!(Bandwidth::ZERO.transfer_time(ByteSize::new(1)), Nanos::MAX);
        assert_eq!(Bandwidth::ZERO.transfer_time(ByteSize::ZERO), Nanos::ZERO);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::mib_per_sec(100.0);
        let moved = bw.bytes_in(Nanos::from_secs(2));
        assert_eq!(moved, ByteSize::mib(200));
    }

    #[test]
    fn sharing_divides_rate() {
        let bw = Bandwidth::gib_per_sec(8.0);
        assert!((bw.shared_by(4).as_gib_per_sec() - 2.0).abs() < 1e-12);
        assert_eq!(bw.shared_by(0), bw);
        assert_eq!(bw.shared_by(1), bw);
    }

    #[test]
    fn division_operator_is_transfer_time() {
        let t = ByteSize::mib(1) / Bandwidth::mib_per_sec(1.0);
        assert_eq!(t.as_millis(), 1000);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Bandwidth::gib_per_sec(1.5).to_string(), "1.50GiB/s");
        assert_eq!(Bandwidth::mib_per_sec(3.0).to_string(), "3.00MiB/s");
        assert_eq!(Bandwidth::bytes_per_sec(10.0).to_string(), "10B/s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        let _ = Bandwidth::bytes_per_sec(-1.0);
    }
}
