//! Small statistics helpers for the "mean of N runs, min–max error bars"
//! style of reporting used throughout the paper's evaluation.

use std::fmt;


/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use wsp_units::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stdev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "observation must not be NaN");
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (zero for fewer than two samples).
    #[must_use]
    pub fn population_stdev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Sample standard deviation (zero for fewer than two samples).
    #[must_use]
    pub fn sample_stdev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (zero when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (zero when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Snapshots the accumulated statistics.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            stdev: self.sample_stdev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A frozen view of a sample: count, mean, stdev, min, max.
///
/// This is the row format the paper's tables use ("means of 5 runs, with
/// standard deviations shown in brackets"; "error bars show min-max").
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stdev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ({:.3}) [min {:.3}, max {:.3}, n={}]",
            self.mean, self.stdev, self.min, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_stdev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s: OnlineStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_stdev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn welford_matches_naive() {
        let data = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3];
        let s: OnlineStats = data.into_iter().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_stdev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_display_is_nonempty() {
        let s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let text = s.summary().to_string();
        assert!(text.contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_observation_rejected() {
        OnlineStats::new().push(f64::NAN);
    }
}
