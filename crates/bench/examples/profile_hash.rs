//! Poor-man's profiler for the hash-table microbenchmark: phase and
//! per-op-kind wall-clock breakdown, plus bare-layer costs (cache-only,
//! memory-only) to localise where host time goes.

use std::time::{Duration, Instant};

use wsp_cache::{CacheHierarchy, CpuProfile};
use wsp_det::{DetRng, Rng};
use wsp_pheap::{HeapConfig, PersistentHeap, PersistentMemory};
use wsp_units::ByteSize;
use wsp_workloads::{Op, OpMix, PmHashTable};

fn main() {
    // Layer 1: bare cache hierarchy on a hashtable-like address stream.
    let mut cache = CacheHierarchy::new(CpuProfile::intel_c5528());
    let mut rng = DetRng::seed_from_u64(1);
    let n = 2_000_000u64;
    let t0 = Instant::now();
    for _ in 0..n {
        let addr = rng.gen_range(0..1_000_000u64) / 8 * 8;
        std::hint::black_box(cache.load_fast(addr));
    }
    println!(
        "bare cache load_fast (1MB working set): {:.1} ns/access",
        t0.elapsed().as_secs_f64() * 1e9 / n as f64
    );

    // Layer 2: PersistentMemory word ops.
    let mut mem = PersistentMemory::new(ByteSize::mib(64));
    let mut rng = DetRng::seed_from_u64(2);
    let t0 = Instant::now();
    for _ in 0..n {
        let addr = rng.gen_range(0..1_000_000u64) / 8 * 8;
        if addr % 3 == 0 {
            mem.write_u64(addr, addr);
        } else {
            std::hint::black_box(mem.read_u64(addr));
        }
    }
    println!(
        "mem read/write_u64 (1MB working set): {:.1} ns/access",
        t0.elapsed().as_secs_f64() * 1e9 / n as f64
    );

    // Layer 3: the real benchmark, phase- and op-kind-timed.
    for config in HeapConfig::all() {
        let prepopulate = 20_000u64;
        let ops = 50_000u64;
        let mut heap = PersistentHeap::create(ByteSize::mib(64), config);
        let buckets = (prepopulate / 4).next_power_of_two().max(64);
        let table = PmHashTable::create(&mut heap, buckets).unwrap();

        let key_space = prepopulate * 2;
        let mut rng = DetRng::seed_from_u64(42);
        let t0 = Instant::now();
        let mut inserted = 0u64;
        while inserted < prepopulate {
            let key = rng.gen_range(0..key_space);
            if table.insert(&mut heap, key, key).unwrap().is_none() {
                inserted += 1;
            }
        }
        let t_prep = t0.elapsed();

        let mix = OpMix::new(0.5);
        let mut t_lookup = Duration::ZERO;
        let mut t_insert = Duration::ZERO;
        let mut t_delete = Duration::ZERO;
        let (mut n_lookup, mut n_insert, mut n_delete) = (0u64, 0u64, 0u64);
        for _ in 0..ops {
            match mix.next_op(&mut rng, key_space) {
                Op::Lookup(k) => {
                    let t = Instant::now();
                    table.get(&mut heap, k).unwrap();
                    t_lookup += t.elapsed();
                    n_lookup += 1;
                }
                Op::Insert(k, v) => {
                    let t = Instant::now();
                    table.insert(&mut heap, k, v).unwrap();
                    t_insert += t.elapsed();
                    n_insert += 1;
                }
                Op::Delete(k) => {
                    let t = Instant::now();
                    table.remove(&mut heap, k).unwrap();
                    t_delete += t.elapsed();
                    n_delete += 1;
                }
            }
        }
        let per = |t: Duration, n: u64| t.as_secs_f64() * 1e9 / n.max(1) as f64;
        println!(
            "{config}: prep {:.0} ns/op | lookup {:.0} ns ({n_lookup}) insert {:.0} ns ({n_insert}) delete {:.0} ns ({n_delete})",
            per(t_prep, prepopulate),
            per(t_lookup, n_lookup),
            per(t_insert, n_insert),
            per(t_delete, n_delete),
        );
    }
}
