//! Poor-man's profiler for the crash-point sweeps: per-component
//! wall-clock (heap create, clone, crash with/without the save path,
//! recovery, one full mid-transaction sweep) for every heap
//! configuration, to localise where sweep host time goes.

use std::time::Instant;
use wsp_pheap::{HeapConfig, PersistentHeap};
use wsp_units::ByteSize;

fn main() {
    for config in HeapConfig::all() {
        let t0 = Instant::now();
        let heap = PersistentHeap::create(ByteSize::kib(256), config);
        let t_create = t0.elapsed();

        let t0 = Instant::now();
        for _ in 0..100 {
            std::hint::black_box(heap.clone());
        }
        let t_clone = t0.elapsed() / 100;

        let t0 = Instant::now();
        for _ in 0..20 {
            let h = heap.clone();
            std::hint::black_box(h.crash(true));
        }
        let t_crash_save = t0.elapsed() / 20;

        let t0 = Instant::now();
        for _ in 0..20 {
            let h = heap.clone();
            let image = h.crash(false);
            std::hint::black_box(PersistentHeap::recover(image).ok());
        }
        let t_recover = t0.elapsed() / 20;

        let t0 = Instant::now();
        std::hint::black_box(wsp_core::sweep_mid_transaction(config, 1234));
        let t_sweep = t0.elapsed();

        println!("{config}: create {t_create:?} clone {t_clone:?} crash+save {t_crash_save:?} crash+recover {t_recover:?} sweep {t_sweep:?}");
    }
}
