//! Ablation benches for the design choices DESIGN.md calls out:
//! redo vs undo logging, flush policy, SCM write penalties, and
//! supercapacitor provisioning.

use wsp_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsp_cache::{CpuProfile, FlushAnalysis, FlushMethod};
use wsp_pheap::HeapConfig;
use wsp_power::SupercapProvisioner;
use wsp_units::{ByteSize, Nanos, Watts};
use wsp_workloads::HashBenchmark;

/// Redo (STM) vs undo logging at the same flush policy.
fn bench_log_discipline(c: &mut Criterion) {
    let bench = HashBenchmark {
        prepopulate: 1_000,
        ops: 2_000,
        region: ByteSize::mib(8),
    };
    let mut group = c.benchmark_group("ablation_log_discipline_foc");
    group.sample_size(10);
    for (label, config) in [
        ("redo_stm", HeapConfig::FocStm),
        ("undo", HeapConfig::FocUndo),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, &config| {
            b.iter(|| bench.run(config, 1.0, 3).expect("benchmark runs"));
        });
    }
    group.finish();
}

/// Flush-on-commit vs flush-on-fail with identical (undo) logging.
fn bench_flush_policy(c: &mut Criterion) {
    let bench = HashBenchmark {
        prepopulate: 1_000,
        ops: 2_000,
        region: ByteSize::mib(8),
    };
    let mut group = c.benchmark_group("ablation_flush_policy_undo");
    group.sample_size(10);
    for (label, config) in [
        ("flush_on_commit", HeapConfig::FocUndo),
        ("flush_on_fail", HeapConfig::FofUndo),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, &config| {
            b.iter(|| bench.run(config, 1.0, 3).expect("benchmark runs"));
        });
    }
    group.finish();
}

/// SCM write penalties inflate the flush-on-fail save (paper §6 predicts
/// flush-on-fail still wins — the *save-path* cost grows with cache
/// size only).
fn bench_scm_penalty(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scm_write_penalty");
    for penalty in [1.0f64, 10.0, 100.0] {
        let profile = if penalty > 1.0 {
            CpuProfile::amd_4180().with_scm(penalty)
        } else {
            CpuProfile::amd_4180()
        };
        let analysis = FlushAnalysis::new(profile);
        group.bench_with_input(
            BenchmarkId::from_parameter(penalty as u64),
            &analysis,
            |b, analysis| {
                b.iter(|| analysis.state_save_time(FlushMethod::Wbinvd, ByteSize::mib(6)));
            },
        );
    }
    group.finish();
}

/// Supercap provisioning across safety margins.
fn bench_provisioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_supercap_margin");
    for margin in [1.0f64, 3.0, 10.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(margin as u64),
            &margin,
            |b, &margin| {
                let prov = SupercapProvisioner::new(Watts::new(350.0), margin);
                b.iter(|| prov.plan(Nanos::from_millis(3)));
            },
        );
    }
    group.finish();
}

/// Index-structure ablation: hash table vs AVL vs B-tree (the CDDS-style
/// two-cache-line nodes) under the Mnemosyne configuration.
fn bench_index_structures(c: &mut Criterion) {
    use wsp_pheap::PersistentHeap;
    use wsp_workloads::{PmAvlTree, PmBTree, PmHashTable};

    const N: u64 = 2_000;
    let mut group = c.benchmark_group("ablation_index_structure_foc_stm");
    group.sample_size(10);
    group.bench_function("hashtable", |b| {
        b.iter(|| {
            let mut heap = PersistentHeap::create(ByteSize::mib(8), HeapConfig::FocStm);
            let t = PmHashTable::create(&mut heap, 512).unwrap();
            for k in 0..N {
                t.insert(&mut heap, k, k).unwrap();
            }
            heap.elapsed()
        });
    });
    group.bench_function("avl", |b| {
        b.iter(|| {
            let mut heap = PersistentHeap::create(ByteSize::mib(8), HeapConfig::FocStm);
            let t = PmAvlTree::create(&mut heap).unwrap();
            for k in 0..N {
                t.insert(&mut heap, k, k).unwrap();
            }
            heap.elapsed()
        });
    });
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut heap = PersistentHeap::create(ByteSize::mib(8), HeapConfig::FocStm);
            let t = PmBTree::create(&mut heap).unwrap();
            for k in 0..N {
                t.insert(&mut heap, k, k).unwrap();
            }
            heap.elapsed()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_log_discipline,
    bench_flush_policy,
    bench_scm_penalty,
    bench_provisioning,
    bench_index_structures
);
criterion_main!(benches);
