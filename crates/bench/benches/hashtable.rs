//! Criterion bench for the Figure 5 microbenchmark: host-time cost of
//! running the hash-table workload under each heap configuration. The
//! *simulated* times are what reproduce the paper (see `repro fig5`);
//! this bench confirms the relative shape holds for real executed work
//! too (STM instrumentation, logging and flush bookkeeping are all real
//! code here).

use wsp_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::HashBenchmark;

fn bench_configs(c: &mut Criterion) {
    let bench = HashBenchmark {
        prepopulate: 2_000,
        ops: 4_000,
        region: ByteSize::mib(8),
    };
    let mut group = c.benchmark_group("hashtable_mixed_50pct");
    group.sample_size(10);
    for config in HeapConfig::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(config.label()),
            &config,
            |b, &config| {
                b.iter(|| bench.run(config, 0.5, 7).expect("benchmark runs"));
            },
        );
    }
    group.finish();
}

fn bench_update_ratios(c: &mut Criterion) {
    let bench = HashBenchmark {
        prepopulate: 2_000,
        ops: 4_000,
        region: ByteSize::mib(8),
    };
    let mut group = c.benchmark_group("hashtable_foc_stm_by_update_ratio");
    group.sample_size(10);
    for p in [0.0, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| bench.run(HeapConfig::FocStm, p, 7).expect("benchmark runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configs, bench_update_ratios);
criterion_main!(benches);
