//! Criterion bench for the flush paths behind Table 2 and Figure 8:
//! `wbinvd` walks, per-line `clflush` streams, and the analytic
//! flush-time model.

use wsp_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsp_cache::{CacheHierarchy, CpuProfile, FlushAnalysis, FlushMethod};
use wsp_units::ByteSize;

fn dirty_hierarchy(lines: u64) -> CacheHierarchy {
    let mut cache = CacheHierarchy::new(CpuProfile::intel_c5528());
    for i in 0..lines {
        cache.store(i * 64);
    }
    cache
}

fn bench_wbinvd(c: &mut Criterion) {
    let mut group = c.benchmark_group("wbinvd_walk");
    group.sample_size(20);
    for lines in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(lines), &lines, |b, &lines| {
            b.iter_batched(
                || dirty_hierarchy(lines),
                |mut cache| cache.wbinvd(),
                wsp_microbench::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_clflush_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("clflush_stream_1000_lines");
    group.sample_size(20);
    group.bench_function("clflush", |b| {
        b.iter_batched(
            || dirty_hierarchy(1_000),
            |mut cache| {
                for i in 0..1_000u64 {
                    cache.clflush(i * 64);
                }
            },
            wsp_microbench::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_analytic_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("flush_analysis_table2");
    for profile in [CpuProfile::intel_c5528(), CpuProfile::amd_4180()] {
        let analysis = FlushAnalysis::new(profile);
        group.bench_with_input(
            BenchmarkId::from_parameter(analysis.profile().name.clone()),
            &analysis,
            |b, analysis| {
                b.iter(|| {
                    (
                        analysis.worst_case(FlushMethod::Wbinvd),
                        analysis.worst_case(FlushMethod::Clflush),
                        analysis.flush_time(FlushMethod::TheoreticalBest, ByteSize::mib(16)),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wbinvd, bench_clflush_stream, bench_analytic_model);
criterion_main!(benches);
