//! Criterion bench for the whole-system save/restore protocol (Figure 4)
//! and NVDIMM device operations.

use wsp_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsp_core::{RestartStrategy, WspSystem};
use wsp_machine::{Machine, SystemLoad};
use wsp_nvram::NvDimm;
use wsp_units::ByteSize;

fn bench_drill(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_failure_drill");
    group.sample_size(10);
    for (label, make) in [
        ("intel", Machine::intel_testbed as fn() -> Machine),
        ("amd", Machine::amd_testbed as fn() -> Machine),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &make, |b, make| {
            b.iter(|| {
                let mut system = WspSystem::new(make());
                system.power_failure_drill(
                    SystemLoad::Busy,
                    RestartStrategy::RestorePathReinit,
                    3,
                )
            });
        });
    }
    group.finish();
}

fn bench_nvdimm_save(c: &mut Criterion) {
    let mut group = c.benchmark_group("nvdimm_save_restore");
    group.sample_size(10);
    for mib in [16u64, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(mib), &mib, |b, &mib| {
            b.iter_batched(
                || {
                    let mut dimm = NvDimm::agiga(ByteSize::mib(mib));
                    // Touch a quarter of the pages so the sparse image has
                    // real content to copy.
                    let mut addr = 0u64;
                    while addr < ByteSize::mib(mib).as_u64() {
                        dimm.write(addr, &addr.to_le_bytes());
                        addr += 16 * 1024;
                    }
                    dimm
                },
                |mut dimm| {
                    dimm.enter_self_refresh();
                    dimm.save().expect("save");
                    dimm.power_loss();
                    dimm.power_on();
                    dimm.restore().expect("restore");
                },
                wsp_microbench::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drill, bench_nvdimm_save);
criterion_main!(benches);
