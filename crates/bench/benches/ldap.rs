//! Criterion bench for the Table 1 workload: directory inserts under the
//! Mnemosyne configuration vs the WSP (plain in-memory) configuration.

use wsp_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wsp_pheap::HeapConfig;
use wsp_units::{ByteSize, Nanos};
use wsp_workloads::LdapBenchmark;

fn bench_ldap(c: &mut Criterion) {
    let bench = LdapBenchmark {
        entries: 500,
        region: ByteSize::mib(8),
        per_op_overhead: Nanos::new(10_000),
    };
    let mut group = c.benchmark_group("ldap_insert_500");
    group.sample_size(10);
    group.throughput(Throughput::Elements(bench.entries));
    for (label, config) in [("mnemosyne", HeapConfig::FocStm), ("wsp", HeapConfig::Fof)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, &config| {
            b.iter(|| bench.run(config, 11).expect("benchmark runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ldap);
criterion_main!(benches);
