//! Experiment drivers regenerating every table and figure of the WSP
//! paper's evaluation, as structured data. The `repro` binary prints
//! them; the Criterion benches measure the host-time cost of the same
//! code paths; `EXPERIMENTS.md` records paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
