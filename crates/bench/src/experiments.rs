//! One driver per paper table/figure, returning structured results.

use wsp_det::{DetRng, Rng};
use wsp_cache::{CpuProfile, FlushAnalysis, FlushMethod};
use wsp_cluster::{AvailabilityReport, ClusterSpec, FleetTimeline, OutageScenario, StormReport};
use wsp_core::{feasibility_matrix, CapacitanceTradeoff, FeasibilityRow, RestartStrategy, TradeoffPoint};
use wsp_machine::{DeviceModel, HybridMemory, Machine, PlacementPolicy, SystemLoad};
use wsp_nvram::{NvDimm, SaveTracePoint};
use wsp_power::{AgingModel, EnergyCell, Oscilloscope, Psu, ScopeTrace};
use wsp_pheap::HeapConfig;
use wsp_units::{ByteSize, Nanos, OnlineStats, Summary, Watts};
use wsp_workloads::{HashBenchmark, LdapBenchmark, YcsbDriver, YcsbMix, YcsbResult};

/// One row of Table 1 (OpenLDAP update throughput).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// System label ("Mnemosyne" / "WSP").
    pub system: &'static str,
    /// Heap configuration used.
    pub config: HeapConfig,
    /// Updates/s over the runs (mean, stdev, min, max).
    pub throughput: Summary,
}

/// Table 1: insert `entries` random directory entries, `runs` times per
/// system, single-threaded closed-loop.
pub fn table1(entries: u64, runs: u32) -> Vec<Table1Row> {
    let bench = LdapBenchmark {
        entries,
        ..LdapBenchmark::paper()
    };
    let systems = [
        ("Mnemosyne", HeapConfig::FocStm),
        ("WSP", HeapConfig::Fof),
    ];
    systems
        .iter()
        .map(|&(system, config)| {
            let stats: OnlineStats = (0..runs)
                .map(|seed| {
                    bench
                        .run(config, u64::from(seed) + 1)
                        .expect("benchmark runs")
                        .updates_per_sec
                })
                .collect();
            Table1Row {
                system,
                config,
                throughput: stats.summary(),
            }
        })
        .collect()
}

/// One row of Table 2 (worst-case cache flush times).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Machine label.
    pub machine: String,
    /// `wbinvd` with every line dirty.
    pub wbinvd: Nanos,
    /// Back-to-back `clflush` of every line.
    pub clflush: Nanos,
    /// Theoretical best (cache bytes at memory bandwidth).
    pub theoretical_best: Nanos,
}

/// Table 2: worst-case flush times for the two testbeds.
#[must_use]
pub fn table2() -> Vec<Table2Row> {
    [CpuProfile::intel_c5528(), CpuProfile::amd_4180()]
        .into_iter()
        .map(|p| {
            let a = FlushAnalysis::new(p);
            Table2Row {
                machine: a.profile().name.clone(),
                wbinvd: a.worst_case(FlushMethod::Wbinvd),
                clflush: a.worst_case(FlushMethod::Clflush),
                theoretical_best: a.worst_case(FlushMethod::TheoreticalBest),
            }
        })
        .collect()
}

/// One point of Figure 1 (capacitance fade vs charge/discharge cycles).
#[derive(Debug, Clone, Copy)]
pub struct Fig1Point {
    /// Cycles at elevated temperature and voltage.
    pub cycles: u64,
    /// Ultracap best case, % of fresh capacitance.
    pub ultracap_best: f64,
    /// Ultracap worst case / data-sheet value.
    pub ultracap_worst: f64,
    /// Rechargeable battery, for contrast.
    pub battery: f64,
}

/// Figure 1: aging sweep to 100 k cycles.
#[must_use]
pub fn fig1() -> Vec<Fig1Point> {
    [0u64, 100, 300, 1_000, 3_000, 10_000, 30_000, 60_000, 100_000]
        .into_iter()
        .map(|cycles| Fig1Point {
            cycles,
            ultracap_best: AgingModel::UltracapBest.capacity_fraction(cycles) * 100.0,
            ultracap_worst: AgingModel::UltracapWorst.capacity_fraction(cycles) * 100.0,
            battery: AgingModel::Battery.capacity_fraction(cycles) * 100.0,
        })
        .collect()
}

/// Figure 2: voltage and power on a 1 GiB NVDIMM's ultracap during a
/// save, sampled every `step`.
#[must_use]
pub fn fig2(step: Nanos) -> Vec<SaveTracePoint> {
    NvDimm::agiga(ByteSize::gib(1)).save_trace(step)
}

/// One point of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Heap configuration.
    pub config: HeapConfig,
    /// Update probability.
    pub update_probability: f64,
    /// Time per operation in nanoseconds (mean/min/max over runs).
    pub time_per_op_ns: Summary,
}

/// Figure 5 sweep parameters.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Pre-populated entries.
    pub prepopulate: u64,
    /// Measured operations per run.
    pub ops: u64,
    /// Runs per point (paper: 10, with min-max error bars).
    pub runs: u32,
    /// Update probabilities to sweep.
    pub probs: Vec<f64>,
}

impl Fig5Config {
    /// The paper's configuration (slow: ~55 M simulated operations).
    #[must_use]
    pub fn paper() -> Self {
        Fig5Config {
            prepopulate: 100_000,
            ops: 1_000_000,
            runs: 10,
            probs: (0..=10).map(|i| f64::from(i) / 10.0).collect(),
        }
    }

    /// A faster sweep preserving the shape.
    #[must_use]
    pub fn quick() -> Self {
        Fig5Config {
            prepopulate: 20_000,
            ops: 100_000,
            runs: 3,
            probs: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        }
    }
}

/// Figure 5: the hash-table microbenchmark across all five heap
/// configurations.
pub fn fig5(cfg: &Fig5Config) -> Vec<Fig5Point> {
    let bench = HashBenchmark {
        prepopulate: cfg.prepopulate,
        ops: cfg.ops,
        region: ByteSize::mib(64),
    };
    let mut out = Vec::new();
    for config in HeapConfig::all() {
        for &p in &cfg.probs {
            let stats: OnlineStats = (0..cfg.runs)
                .map(|seed| {
                    bench
                        .run(config, p, u64::from(seed) * 7 + 1)
                        .expect("benchmark runs")
                        .time_per_op
                        .as_nanos() as f64
                })
                .collect();
            out.push(Fig5Point {
                config,
                update_probability: p,
                time_per_op_ns: stats.summary(),
            });
        }
    }
    out
}

/// Figure 6: the oscilloscope capture on the Intel testbed (1050 W PSU,
/// busy) and the window the paper's detector reports.
#[must_use]
pub fn fig6() -> (ScopeTrace, Option<Nanos>) {
    let scope = Oscilloscope::at_100khz();
    let trace = scope.capture(&Psu::atx_1050w(), Watts::new(350.0), Nanos::from_millis(100));
    let window = trace.measured_window();
    (trace, window)
}

/// One bar of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Testbed label.
    pub testbed: &'static str,
    /// PSU label.
    pub psu: String,
    /// Load label.
    pub load: &'static str,
    /// Worst (lowest) window over the runs.
    pub window: Nanos,
}

/// Figure 7: residual windows for the four PSU/testbed pairings, worst
/// of `runs` measurements with ±3 % load jitter (the paper reports the
/// worst of 3).
pub fn fig7(runs: u32) -> Vec<Fig7Row> {
    let mut rng = DetRng::seed_from_u64(7);
    let cases: Vec<(&'static str, Psu, f64, f64)> = vec![
        ("AMD", Psu::atx_400w(), 120.0, 60.0),
        ("AMD", Psu::atx_525w(), 120.0, 60.0),
        ("Intel", Psu::atx_750w(), 350.0, 200.0),
        ("Intel", Psu::atx_1050w(), 350.0, 200.0),
    ];
    let mut out = Vec::new();
    for (testbed, psu, busy_w, idle_w) in cases {
        for (load, watts) in [("Busy", busy_w), ("Idle", idle_w)] {
            let worst = (0..runs)
                .map(|_| {
                    let jitter = 1.0 + rng.gen_range(-0.03..0.03);
                    psu.residual_window(Watts::new(watts * jitter))
                })
                .fold(Nanos::MAX, Nanos::min);
            out.push(Fig7Row {
                testbed,
                psu: psu.name.clone(),
                load,
                window: worst,
            });
        }
    }
    out
}

/// One curve of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// Machine label.
    pub machine: String,
    /// (dirty bytes, state save time) points.
    pub points: Vec<(ByteSize, Nanos)>,
}

/// Figure 8: context save + cache flush time vs dirty bytes on the four
/// CPUs (128 B to 16 MiB, doubling).
#[must_use]
pub fn fig8() -> Vec<Fig8Series> {
    CpuProfile::paper_testbeds()
        .into_iter()
        .map(|profile| {
            let analysis = FlushAnalysis::new(profile);
            let mut points = Vec::new();
            let mut dirty = 128u64;
            while dirty <= 16 * 1024 * 1024 {
                let size = ByteSize::new(dirty);
                points.push((
                    size,
                    analysis.state_save_time(FlushMethod::Wbinvd, size),
                ));
                dirty *= 4;
            }
            Fig8Series {
                machine: analysis.profile().name.clone(),
                points,
            }
        })
        .collect()
}

/// One bar of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Testbed label.
    pub testbed: String,
    /// Load label.
    pub load: &'static str,
    /// Total ACPI D3 device save time.
    pub suspend_time: Nanos,
}

/// Figure 9: device state save time (ACPI D3 strawman) on both
/// testbeds, busy and idle.
#[must_use]
pub fn fig9() -> Vec<Fig9Row> {
    let mut out = Vec::new();
    for make in [Machine::amd_testbed, Machine::intel_testbed] {
        for load in SystemLoad::both() {
            let mut machine = make();
            machine.apply_load(load, 9);
            let t: Nanos = machine
                .devices()
                .iter()
                .map(DeviceModel::suspend_time)
                .sum();
            out.push(Fig9Row {
                testbed: machine.profile().name.clone(),
                load: load.label(),
                suspend_time: t,
            });
        }
    }
    out
}

/// §5.4 feasibility: save time as a fraction of the window.
#[must_use]
pub fn feasibility() -> Vec<FeasibilityRow> {
    feasibility_matrix()
}

/// §2/§6 recovery storms: back-end vs WSP recovery for growing
/// correlated failures.
#[must_use]
pub fn recovery_storm() -> Vec<StormReport> {
    let cluster = ClusterSpec::memcache_tier(100);
    [1usize, 10, 50, 100]
        .into_iter()
        .map(|failed| {
            cluster.recovery_report(&OutageScenario::rack_power(Nanos::from_secs(30), failed))
        })
        .collect()
}

/// End-to-end outage drills per restart strategy (save fit, data
/// preserved, downtime).
#[derive(Debug, Clone)]
pub struct DrillRow {
    /// Strategy label.
    pub strategy: &'static str,
    /// Whether the save fit in the residual window.
    pub save_completed: bool,
    /// Whether memory contents survived.
    pub data_preserved: bool,
    /// Local downtime (save + NVDIMM save + restore).
    pub local_downtime: Option<Nanos>,
}

/// Runs a busy-load power-failure drill on the Intel testbed under every
/// restart strategy.
#[must_use]
pub fn strategy_drills() -> Vec<DrillRow> {
    RestartStrategy::all()
        .into_iter()
        .map(|strategy| {
            let mut system = wsp_core::WspSystem::new(Machine::intel_testbed());
            let report = system.power_failure_drill(SystemLoad::Busy, strategy, 21);
            DrillRow {
                strategy: strategy.label(),
                save_completed: report.save.completed,
                data_preserved: report.data_preserved,
                local_downtime: report.restore.is_some().then_some(report.local_downtime),
            }
        })
        .collect()
}

/// Extension: YCSB mixes across the five heap configurations.
pub fn ycsb_matrix(driver: &YcsbDriver) -> Vec<YcsbResult> {
    let mut out = Vec::new();
    for mix in YcsbMix::all() {
        for config in HeapConfig::all() {
            out.push(driver.run(mix, config, 5).expect("driver runs"));
        }
    }
    out
}

/// Extension (paper §6 future work): the capacitance/downtime trade-off
/// curve for a marginal system.
#[must_use]
pub fn capacitance_curve() -> Vec<TradeoffPoint> {
    // A marginal deployment: Intel machine on the tight 750 W supply,
    // high window variance, four outages a year, ten-minute back-end
    // recovery.
    let machine = Machine::intel_testbed().with_psu(wsp_power::Psu::atx_750w());
    let mut tradeoff = CapacitanceTradeoff::for_machine(
        &machine,
        SystemLoad::Busy,
        4.0,
        Nanos::from_secs(600),
    );
    tradeoff.window_spread = 0.95;
    tradeoff.sweep(&[0.0, 0.05, 0.1, 0.25, 0.5, 1.0])
}

/// Extension (paper §6 "Hybrid systems"): placement-policy latency table.
#[must_use]
pub fn hybrid_placement() -> Vec<(PlacementPolicy, Nanos, f64)> {
    let hybrid = HybridMemory::typical(
        wsp_units::ByteSize::gib(32),
        wsp_units::ByteSize::gib(256),
    );
    PlacementPolicy::all()
        .into_iter()
        .map(|p| (p, hybrid.average_latency(p), hybrid.dram_hit_share(p)))
        .collect()
}

/// Extension: a simulated year of fleet power events, back-end-only vs
/// WSP recovery.
#[must_use]
pub fn fleet_year() -> (AvailabilityReport, AvailabilityReport) {
    FleetTimeline::typical_year(2012).compare(&ClusterSpec::memcache_tier(100))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_both_testbeds() {
        let rows = table2();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.theoretical_best < r.wbinvd));
    }

    #[test]
    fn fig1_endpoints_match_paper() {
        let points = fig1();
        let last = points.last().unwrap();
        assert_eq!(last.cycles, 100_000);
        assert!(last.ultracap_worst >= 89.5 && last.ultracap_worst <= 91.0);
        assert!(last.battery <= 15.0);
    }

    #[test]
    fn fig7_has_eight_bars_in_paper_range() {
        let rows = fig7(3);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            let ms = r.window.as_millis_f64();
            assert!((8.0..450.0).contains(&ms), "{}: {ms} ms", r.psu);
        }
    }

    #[test]
    fn fig8_curves_are_flat_and_under_5ms() {
        for series in fig8() {
            let first = series.points.first().unwrap().1;
            let last = series.points.last().unwrap().1;
            assert!(last.as_millis_f64() < 5.0, "{}", series.machine);
            let spread = last.as_secs_f64() / first.as_secs_f64();
            assert!(spread < 1.05, "{} not flat", series.machine);
        }
    }

    #[test]
    fn fig9_is_seconds_scale() {
        for row in fig9() {
            let s = row.suspend_time.as_secs_f64();
            assert!((4.5..7.5).contains(&s), "{} {}: {s}", row.testbed, row.load);
        }
    }

    #[test]
    fn strategy_drills_separate_acpi_from_the_rest() {
        let rows = strategy_drills();
        assert_eq!(rows.len(), 4);
        for row in rows {
            if row.strategy.contains("ACPI") {
                assert!(!row.save_completed);
            } else {
                assert!(row.save_completed && row.data_preserved, "{}", row.strategy);
            }
        }
    }

    #[test]
    fn storm_reports_monotone_in_failures() {
        let reports = recovery_storm();
        assert!(reports
            .windows(2)
            .all(|w| w[1].backend_time >= w[0].backend_time));
    }
}
