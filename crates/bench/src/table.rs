//! Minimal fixed-width table rendering for the `repro` binary.

/// A text table with a title, column headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["much longer name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.lines().count() >= 5);
        let lines: Vec<&str> = s.lines().collect();
        // Both value columns start at the same offset.
        let off1 = lines[3].find('1').unwrap();
        let off2 = lines[4].find('2').unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("t", &["a", "b", "c"]);
        t.row(&["x".into()]);
        assert!(t.render().lines().count() == 4);
    }
}
