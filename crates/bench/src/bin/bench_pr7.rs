//! `bench_pr7` — FliT write elision and double-buffered seal baseline.
//!
//! Measures what PR 7 buys: how far per-word flush tracking plus seal
//! pipelining push the epoch group-commit sweep past the PR 5 STM
//! instrumentation floor, what fraction of flushes the FliT table
//! elides, and how prepare-phase overlap changes the cross-shard 2PC
//! overhead. Emits machine-readable JSON; `BENCH_PR7.json` at the
//! repository root records the numbers.
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr7 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr7 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr7 -- check BENCH_PR7.json
//! ```
//!
//! * `run` sweeps epoch sizes 1/8/32/128 over both flush-on-commit
//!   configurations with FliT on, records the elision counters per
//!   cell, compares elision-on vs reference mode at epoch 32, and
//!   re-runs the cross-shard overhead pair with prepare rebates.
//! * `check` re-measures the quick-mode gate quantities and fails
//!   (exit 1) on regression beyond tolerance, on the hard epoch-32
//!   FoC + STM floor of 1.8x, or if the cross-shard overhead multiple
//!   climbs back to the pre-rebate 1.37x.

use std::process::ExitCode;
use std::time::Instant;

use wsp_microbench::json::Json;
use wsp_obs::{self as obs, Ctr};
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::{CrossShardKvBench, HashBenchmark};

/// Epoch sizes the sweep exercises (1 = per-transaction protocol).
const EPOCHS: [u64; 4] = [1, 8, 32, 128];

/// Regression tolerance for `check`: simulated ratios are deterministic,
/// so a modest margin only absorbs intentional-but-small model drift.
const GATE_TOLERANCE: f64 = 0.10;

/// Hard floor for the epoch-32 FoC + STM simulated speedup, from the PR
/// acceptance criteria: FliT barriers must break the ~1.26x STM
/// instrumentation ceiling the PR 5 notes recorded.
const STM_SPEEDUP_FLOOR: f64 = 1.8;

/// Hard ceiling for the all-cross-shard 2PC overhead multiple: with
/// prepare-phase overlap it must stay below the 1.37x the PR 6 baseline
/// measured without rebates.
const XS_OVERHEAD_CEILING: f64 = 1.37;

/// Best-of reps for host wall-clock numbers (simulated numbers are
/// deterministic and measured once).
const HOST_REPS: usize = 3;

fn hash_bench(quick: bool) -> HashBenchmark {
    if quick {
        HashBenchmark {
            prepopulate: 2_000,
            ops: 10_000,
            region: ByteSize::mib(8),
        }
    } else {
        HashBenchmark {
            prepopulate: 20_000,
            ops: 50_000,
            region: ByteSize::mib(64),
        }
    }
}

fn xs_bench(quick: bool, pct: f64) -> CrossShardKvBench {
    CrossShardKvBench {
        shards: 4,
        accounts_per_shard: 8,
        transfers: if quick { 200 } else { 1_000 },
        cross_shard_pct: pct,
        initial_balance: 10_000,
        region: ByteSize::mib(1),
        lose_shard: None,
        in_doubt_tail: false,
        coordinators: 1,
        decision_group: 1,
    }
}

/// One measured cell: simulated ns/op plus the flush-elision counters
/// the new barriers emit.
struct Cell {
    sim_ns: f64,
    skipped: u64,
    issued: u64,
}

impl Cell {
    fn elision_rate(&self) -> f64 {
        let total = self.skipped + self.issued;
        if total == 0 {
            0.0
        } else {
            self.skipped as f64 / total as f64
        }
    }
}

/// Simulated time-per-op and elision counters for one
/// (config, epoch-size, flit) cell.
fn sim_cell(bench: &HashBenchmark, config: HeapConfig, epoch: u64, flit: bool) -> Cell {
    let (r, cap) = obs::capture(|| {
        bench
            .run_with_epoch_flit(config, 0.5, 42, epoch, flit)
            .expect("benchmark runs")
    });
    Cell {
        sim_ns: r.time_per_op.as_nanos() as f64,
        skipped: cap.metrics.counter(Ctr::FlushSkipped),
        issued: cap.metrics.counter(Ctr::FlushIssued),
    }
}

/// Host wall-clock ops/sec for one cell (best of [`HOST_REPS`]).
fn host_ops_per_sec(bench: &HashBenchmark, config: HeapConfig, epoch: u64) -> f64 {
    (0..HOST_REPS)
        .map(|_| {
            let start = Instant::now();
            bench
                .run_with_epoch(config, 0.5, 42, epoch)
                .expect("benchmark runs");
            (bench.prepopulate + bench.ops) as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max)
}

/// The epoch-32 simulated speedup per FoC config at quick scale — the
/// deterministic quantity `check` gates on.
fn gate_epoch_speedups() -> Vec<(HeapConfig, f64)> {
    let bench = hash_bench(true);
    [HeapConfig::FocStm, HeapConfig::FocUndo]
        .into_iter()
        .map(|config| {
            let per_tx = sim_cell(&bench, config, 1, true).sim_ns;
            let epoch32 = sim_cell(&bench, config, 32, true).sim_ns;
            (config, per_tx / epoch32)
        })
        .collect()
}

/// The all-cross-shard 2PC overhead multiple at quick scale, with
/// prepare-phase rebates active.
fn gate_xs_overhead() -> f64 {
    let run = |pct: f64| {
        let report = xs_bench(true, pct)
            .run(HeapConfig::FocUndo, 42)
            .expect("transfer run");
        assert!(report.balance_conserved, "balance must conserve");
        report.txns_per_sec
    };
    run(0.0) / run(1.0)
}

fn measure_epoch_sweep(quick: bool) -> Json {
    let bench = hash_bench(quick);
    let mut per_config = Vec::new();
    let mut speedups = Vec::new();
    for config in [HeapConfig::FocStm, HeapConfig::FocUndo] {
        let mut rows = Vec::new();
        let mut by_epoch = Vec::new();
        for epoch in EPOCHS {
            let cell = sim_cell(&bench, config, epoch, true);
            let host = host_ops_per_sec(&bench, config, epoch);
            eprintln!(
                "  epoch {:<9} e={epoch:<4} {:>8.1} ns/op sim, {host:>12.0} ops/sec host, \
                 {:>5.1}% flushes elided",
                config.label(),
                cell.sim_ns,
                cell.elision_rate() * 100.0,
            );
            by_epoch.push((epoch, cell.sim_ns, host));
            rows.push(Json::object([
                ("epoch", Json::from(epoch)),
                ("sim_ns_per_op", Json::from(cell.sim_ns)),
                ("sim_ops_per_sec", Json::from(1e9 / cell.sim_ns)),
                ("host_ops_per_sec", Json::from(host)),
                ("flushes_skipped", Json::from(cell.skipped)),
                ("flushes_issued", Json::from(cell.issued)),
                ("elision_rate", Json::from(cell.elision_rate())),
            ]));
        }
        let base = &by_epoch[0];
        let at32 = by_epoch
            .iter()
            .find(|(e, _, _)| *e == 32)
            .expect("epoch 32 is in the sweep");
        speedups.push((
            config.label().to_owned(),
            Json::object([
                ("sim", Json::from(base.1 / at32.1)),
                ("host", Json::from(at32.2 / base.2)),
            ]),
        ));
        per_config.push((config.label().to_owned(), Json::Arr(rows)));
    }

    Json::object([
        ("prepopulate", Json::from(bench.prepopulate)),
        ("ops", Json::from(bench.ops)),
        ("update_probability", Json::from(0.5)),
        ("seed", Json::from(42u64)),
        ("sweep", Json::Obj(per_config)),
        ("speedup_at_epoch32", Json::Obj(speedups)),
    ])
}

/// Elision-on vs reference (always-append) mode at the epoch-32
/// operating point: the isolated value of the FliT table.
fn measure_flit_ablation(quick: bool) -> Json {
    let bench = hash_bench(quick);
    let mut per_config = Vec::new();
    for config in [HeapConfig::FocStm, HeapConfig::FocUndo] {
        let on = sim_cell(&bench, config, 32, true);
        let off = sim_cell(&bench, config, 32, false);
        eprintln!(
            "  flit  {:<9} on {:>7.1} ns/op, reference {:>7.1} ns/op ({:.2}x), \
             {:>5.1}% of flushes elided",
            config.label(),
            on.sim_ns,
            off.sim_ns,
            off.sim_ns / on.sim_ns,
            on.elision_rate() * 100.0,
        );
        per_config.push((
            config.label().to_owned(),
            Json::object([
                ("flit_on_sim_ns_per_op", Json::from(on.sim_ns)),
                ("flit_off_sim_ns_per_op", Json::from(off.sim_ns)),
                ("flit_speedup", Json::from(off.sim_ns / on.sim_ns)),
                ("flushes_skipped", Json::from(on.skipped)),
                ("flushes_issued", Json::from(on.issued)),
                ("elision_rate", Json::from(on.elision_rate())),
            ]),
        ));
    }
    Json::object([("epoch_size", Json::from(32u64)), ("by_config", Json::Obj(per_config))])
}

/// The cross-shard overhead pair with prepare-phase rebates active.
fn measure_cross_shard(quick: bool) -> Json {
    let run = |pct: f64| {
        let report = xs_bench(quick, pct)
            .run(HeapConfig::FocUndo, 42)
            .expect("transfer run");
        assert!(report.balance_conserved, "balance must conserve");
        report.txns_per_sec
    };
    let single = run(0.0);
    let cross = run(1.0);
    let overhead = single / cross;
    eprintln!(
        "  2pc   0% cross {single:>12.0} txn/s, 100% cross {cross:>12.0} txn/s \
         (overhead {overhead:.3}x)"
    );
    Json::object([
        ("config", Json::from(HeapConfig::FocUndo.label())),
        ("single_shard_txns_per_sec", Json::from(single)),
        ("cross_shard_txns_per_sec", Json::from(cross)),
        ("xs_overhead_multiple", Json::from(overhead)),
    ])
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr7: running {} suite",
        if quick { "quick" } else { "full" }
    );
    let epoch = measure_epoch_sweep(quick);
    let flit = measure_flit_ablation(quick);
    let xs = measure_cross_shard(quick);

    eprintln!("bench_pr7: measuring quick-mode gate quantities");
    let gate_speedups: Vec<(String, Json)> = gate_epoch_speedups()
        .into_iter()
        .map(|(c, s)| (c.label().to_owned(), Json::from(s)))
        .collect();
    let gate = Json::object([
        ("epoch32_sim_speedup", Json::Obj(gate_speedups)),
        ("xs_overhead_multiple", Json::from(gate_xs_overhead())),
    ]);

    Json::object([
        ("schema", Json::from("wsp-bench-pr7/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("epoch_group_commit", epoch),
        ("flit_ablation", flit),
        ("cross_shard", xs),
        ("gate", gate),
        (
            "notes",
            Json::Arr(vec![
                Json::from(
                    "FliT barriers replace the STM write-set scan and epoch-buffer lookup \
                     with one probe of an L1-resident per-word table (5 ns vs 35+ ns), and \
                     repeated writes to a hot word update the pending record in place \
                     instead of appending another — the elision counters above record the \
                     fraction of would-be flushes that never happen. This breaks the \
                     ~1.26x epoch-32 STM ceiling the PR 5 notes documented: the residual \
                     instrumentation was the floor, and the floor moved.",
                ),
                Json::from(
                    "Double-buffered seals stage a full generation and drain it while the \
                     next fills; the drain's overlap with foreground commits is credited \
                     back to the simulated clock (bounded by the time since handoff), and \
                     pheap.seal_stall_time records only the un-overlapped remainder. \
                     Durability lags one generation: a crash loses the open epoch AND a \
                     staged-but-undrained one, which the extended mid-seal crash sweep \
                     pins at every interleaving.",
                ),
                Json::from(
                    "Cross-shard 2PC now rebates all but the slowest participant's \
                     prepare (and phase-2 commit) per phase, modelling shards that seal \
                     concurrently. The overhead multiple falls below 1.0: an \
                     all-cross-shard run spreads each transfer's seal work over two \
                     shards' clocks while an all-single-shard run serializes it on one. \
                     The gate only requires staying under the pre-rebate 1.37x.",
                ),
            ]),
        ),
    ])
}

/// The `check` subcommand: quick-mode epoch-32 speedups and the
/// cross-shard overhead multiple vs the recorded gate, plus the hard
/// acceptance floors.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr7: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr7: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc.get("gate") else {
        eprintln!("bench_pr7: {baseline_path} has no gate section");
        return ExitCode::FAILURE;
    };

    let mut failed = false;

    let recorded_speedups = gate
        .get("epoch32_sim_speedup")
        .and_then(Json::entries)
        .unwrap_or_default();
    let current = gate_epoch_speedups();
    for (label, recorded) in recorded_speedups {
        let recorded = recorded.as_f64().unwrap_or(0.0);
        let Some((config, now)) = current.iter().find(|(c, _)| c.label() == label) else {
            eprintln!("bench_pr7: unknown heap config `{label}` in gate; skipping");
            continue;
        };
        let mut floor = recorded * (1.0 - GATE_TOLERANCE);
        if *config == HeapConfig::FocStm {
            floor = floor.max(STM_SPEEDUP_FLOOR);
        }
        let verdict = if *now >= floor { "ok" } else { "REGRESSED" };
        eprintln!(
            "  gate epoch32 {label:<9} current {now:.3}x, recorded {recorded:.3}x, floor {floor:.3}x  [{verdict}]"
        );
        if *now < floor {
            failed = true;
        }
    }

    let recorded_overhead = gate
        .get("xs_overhead_multiple")
        .and_then(Json::as_f64)
        .unwrap_or(f64::INFINITY);
    let overhead = gate_xs_overhead();
    let ceiling = (recorded_overhead * (1.0 + GATE_TOLERANCE)).min(XS_OVERHEAD_CEILING);
    let verdict = if overhead <= ceiling { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate xs-overhead    current {overhead:.3}x, recorded {recorded_overhead:.3}x, ceiling {ceiling:.3}x  [{verdict}]"
    );
    if overhead > ceiling {
        failed = true;
    }

    if failed {
        eprintln!("bench_pr7: FliT/seal-pipeline throughput regressed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr7: FliT + seal-pipeline gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr7 check <BENCH_PR7.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr7 run [--quick] | bench_pr7 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
