//! `bench_pr3` — the recorded recovery-ladder performance baseline.
//!
//! Measures the PR-3 degraded-mode machinery in host wall-clock terms
//! and emits machine-readable JSON, extending the PR-2 trajectory
//! (`BENCH_PR3.json` at the repository root records the numbers at the
//! commit that introduced the ladder).
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr3 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr3 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr3 -- check BENCH_PR3.json
//! ```
//!
//! * `run` executes the suite (recovery-ladder sweep wall-clock across
//!   both testbeds over sentinel seeds, and the single-point supervised
//!   save + full-resume path) and prints the results object to stdout.
//! * `check` re-runs the quick ladder sweep and fails (exit 1) if its
//!   wall-clock regressed more than 20% against the `gate` section of
//!   the given baseline file. Time gates invert the PR-2 throughput
//!   logic: the ceiling is `recorded * (1 + tolerance)`.

use std::process::ExitCode;
use std::time::Instant;

use wsp_core::{ladder_crash_points, sweep_recovery_ladder};
use wsp_machine::{Machine, SystemLoad};
use wsp_microbench::json::Json;

/// Regression threshold for `check`: fail when the sweep's wall-clock
/// rises above `1 + GATE_TOLERANCE` of the recorded gate value.
const GATE_TOLERANCE: f64 = 0.20;

/// Repetitions for `check`; the best (lowest) run is compared, which
/// absorbs scheduler noise on shared hardware.
const GATE_REPS: usize = 3;

/// Repetitions for `run`'s measurements (best-of).
const RUN_REPS: usize = 3;

fn ladder_seeds(quick: bool) -> u64 {
    if quick {
        2
    } else {
        8
    }
}

/// Wall-clock ms of the full recovery-ladder sweep — every degraded-mode
/// fault class from save supervision through ladder convergence — across
/// both testbeds over `seeds` sentinel seeds. Returns the best-of-reps
/// time; the sweep's own contract assertions run on every pass.
fn measure_ladder_sweep(seeds: u64) -> f64 {
    let mut best_ms = f64::INFINITY;
    for _ in 0..RUN_REPS {
        let start = Instant::now();
        for seed in 0..seeds {
            for (make, load) in [
                (Machine::intel_testbed as fn() -> Machine, SystemLoad::Busy),
                (Machine::amd_testbed as fn() -> Machine, SystemLoad::Idle),
            ] {
                let report = sweep_recovery_ladder(make, load, seed * 31 + 42);
                assert_eq!(report.glitches_ignored, 2);
                assert_eq!(report.recovered, 4);
            }
        }
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best_ms
}

fn measure_ladder(quick: bool) -> Json {
    let seeds = ladder_seeds(quick);
    let sweep_ms = measure_ladder_sweep(seeds);
    let points = ladder_crash_points(Machine::intel_testbed().nvram().dimms().len()).len();
    eprintln!(
        "  ladder    sweep {sweep_ms:.1} ms ({seeds} seeds x 2 testbeds, {points} points each, best of {RUN_REPS})"
    );
    Json::object([
        ("seeds", Json::from(seeds)),
        ("points_per_sweep", Json::from(points as u64)),
        ("sweep_ms", Json::from(sweep_ms)),
    ])
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr3: running {} suite",
        if quick { "quick" } else { "full" }
    );
    let ladder = measure_ladder(quick);
    // The gate always records the *quick* configuration so `check` can
    // compare like with like regardless of the recorded run's mode.
    let gate_ms = if quick {
        ladder
            .get("sweep_ms")
            .and_then(Json::as_f64)
            .unwrap_or(f64::INFINITY)
    } else {
        let quick_ms = measure_ladder_sweep(ladder_seeds(true));
        eprintln!("  gate      quick sweep {quick_ms:.1} ms (recorded for `check`)");
        quick_ms
    };
    Json::object([
        ("schema", Json::from("wsp-bench-pr3/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("ladder", ladder),
        (
            "gate",
            Json::object([
                ("mode", Json::from("quick")),
                ("ladder_sweep_ms", Json::from(gate_ms)),
            ]),
        ),
    ])
}

/// The `check` subcommand: quick ladder-sweep wall-clock vs. the
/// recorded gate, with a [`GATE_TOLERANCE`] margin above it.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr3: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr3: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(recorded) = doc
        .get("gate")
        .and_then(|g| g.get("ladder_sweep_ms"))
        .and_then(Json::as_f64)
    else {
        eprintln!("bench_pr3: {baseline_path} has no gate.ladder_sweep_ms value");
        return ExitCode::FAILURE;
    };

    let current = (0..GATE_REPS)
        .map(|_| measure_ladder_sweep(ladder_seeds(true)))
        .fold(f64::INFINITY, f64::min);
    let ceiling = recorded * (1.0 + GATE_TOLERANCE);
    let verdict = if current <= ceiling { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate ladder_sweep current {current:>8.1} ms, recorded {recorded:>8.1}, ceiling {ceiling:>8.1}  [{verdict}]"
    );
    if current > ceiling {
        eprintln!(
            "bench_pr3: ladder sweep slowed more than {:.0}% against {baseline_path}",
            GATE_TOLERANCE * 100.0
        );
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr3: ladder-sweep time gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr3 check <BENCH_PR3.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr3 run [--quick] | bench_pr3 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
