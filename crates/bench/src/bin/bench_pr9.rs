//! `bench_pr9` — concurrent detectable structures: in-shard thread
//! scaling, the FoF-vs-FoC gap under contention, and the interleaving
//! sweep's coverage scorecard.
//!
//! Measures what PR 9 buys: how much aggregate throughput many client
//! threads inside *one* shard recover through the lock-free detectable
//! hash (versus the same total work serialized on one thread), how far
//! flush-on-fail pulls ahead of flush-on-commit when those threads
//! contend on a Zipfian-hot key set, and how many schedules / crash
//! points the exhaustive interleaving sweep proves exactly-once
//! recovery over. Emits machine-readable JSON; `BENCH_PR9.json` at the
//! repository root records the numbers.
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr9 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr9 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr9 -- check BENCH_PR9.json
//! ```
//!
//! * `run` drives the concurrent serving path at 1 and 4 in-shard
//!   threads (same total op count) for both flush policies, measures
//!   the contended FoF/FoC throughput ratio, and runs the lock-free
//!   crash sweep for both structures under both policies.
//! * `check` re-measures the quick-mode gate quantities and fails
//!   (exit 1) on regression beyond tolerance, if 4-thread scaling
//!   drops below the 1.8x acceptance floor, or if the FoF advantage
//!   inverts (drops below 1.0x).

use std::process::ExitCode;
use std::time::Instant;

use wsp_core::{sweep_lockfree, LfStructure, LockfreeSweepReport};
use wsp_microbench::json::Json;
use wsp_pheap::lockfree::FlushPolicy;
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::{ShardedKvBench, YcsbMix};

/// Regression tolerance for `check`: the simulated ratios are
/// deterministic, so the margin only absorbs intentional model drift.
const GATE_TOLERANCE: f64 = 0.10;

/// Hard floor for 4-thread in-shard scaling, from the PR acceptance
/// criteria; `check` enforces it regardless of the recorded gate.
const SCALING_FLOOR: f64 = 1.8;

/// Hard floor for the contended FoF/FoC throughput ratio: removing the
/// commit-path flushes must never cost throughput.
const FOF_GAP_FLOOR: f64 = 1.0;

/// Seed every measured run uses; the serving path is deterministic per
/// (bench, config, seed), so one seed is a measurement, not a sample.
const SEED: u64 = 42;

/// The single-shard bench the scaling pair runs: `threads` in-shard
/// clients splitting `total_ops` commands over a contended record set.
fn concurrent_bench(quick: bool, threads: usize) -> ShardedKvBench {
    let (total_ops, records) = if quick { (2_000, 512) } else { (8_000, 1_024) };
    ShardedKvBench {
        shards: 1,
        clients_per_shard: 1,
        ops_per_client: total_ops / threads as u64,
        records_per_shard: records,
        region: ByteSize::mib(16),
        epoch_size: 32,
        mix: YcsbMix::A,
        zipf_theta: 0.99,
        in_shard_threads: threads,
    }
}

/// Simulated throughput (ops/s) of the concurrent serving path.
fn concurrent_ops_per_sec(bench: &ShardedKvBench, config: HeapConfig) -> f64 {
    bench
        .run_concurrent(config, SEED)
        .expect("concurrent kv run")
        .aggregate_ops_per_sec
}

/// The deterministic 4-thread scaling ratio `check` gates on.
fn gate_scaling(config: HeapConfig) -> (f64, f64, f64) {
    let one = concurrent_ops_per_sec(&concurrent_bench(true, 1), config);
    let four = concurrent_ops_per_sec(&concurrent_bench(true, 4), config);
    (one, four, four / one)
}

/// The deterministic contended FoF/FoC throughput ratio `check` gates
/// on (4 in-shard threads, Zipf 0.99, YCSB-A).
fn gate_fof_gap() -> (f64, f64, f64) {
    let bench = concurrent_bench(true, 4);
    let foc = concurrent_ops_per_sec(&bench, HeapConfig::FocUndo);
    let fof = concurrent_ops_per_sec(&bench, HeapConfig::Fof);
    (foc, fof, fof / foc)
}

fn measure_scaling(quick: bool) -> Json {
    let threads = [1usize, 2, 4, 8];
    let mut per_config = Vec::new();
    for config in [HeapConfig::FocUndo, HeapConfig::Fof] {
        let base = concurrent_ops_per_sec(&concurrent_bench(quick, 1), config);
        let mut points = Vec::new();
        for &t in &threads {
            let thr = concurrent_ops_per_sec(&concurrent_bench(quick, t), config);
            let scaling = thr / base;
            eprintln!(
                "  scaling {:<9} {t} in-shard threads: {thr:>12.0} ops/s ({scaling:.2}x)",
                config.label(),
            );
            points.push(Json::object([
                ("threads", Json::from(t as u64)),
                ("ops_per_sec", Json::from(thr)),
                ("scaling", Json::from(scaling)),
            ]));
        }
        per_config.push((config.label().to_owned(), Json::Arr(points)));
    }
    Json::object([
        ("mix", Json::from("A")),
        ("zipf_theta", Json::from(0.99)),
        ("by_config", Json::Obj(per_config)),
    ])
}

fn measure_fof_gap(quick: bool) -> Json {
    let bench = concurrent_bench(quick, 4);
    let foc = concurrent_ops_per_sec(&bench, HeapConfig::FocUndo);
    let fof = concurrent_ops_per_sec(&bench, HeapConfig::Fof);
    eprintln!(
        "  contended gap: fof {fof:>12.0} ops/s vs foc {foc:>12.0} ops/s ({:.2}x)",
        fof / foc
    );
    Json::object([
        ("threads", Json::from(4u64)),
        ("foc_ops_per_sec", Json::from(foc)),
        ("fof_ops_per_sec", Json::from(fof)),
        ("fof_advantage", Json::from(fof / foc)),
    ])
}

fn sweep_json(report: &LockfreeSweepReport, host_secs: f64) -> Json {
    Json::object([
        ("schedules", Json::from(report.schedules)),
        ("crash_points", Json::from(report.crash_points)),
        ("cas_points", Json::from(report.cas_points)),
        ("flush_points", Json::from(report.flush_points)),
        ("fence_points", Json::from(report.fence_points)),
        ("completed", Json::from(report.completed)),
        ("not_started", Json::from(report.not_started)),
        ("resolved", Json::from(report.resolved)),
        ("helps", Json::from(report.helps)),
        ("cas_conflicts", Json::from(report.conflicts)),
        ("fingerprint", Json::from(format!("{:016x}", report.fingerprint))),
        ("host_secs", Json::from(host_secs)),
    ])
}

fn measure_sweeps() -> Json {
    let mut per_pair = Vec::new();
    for structure in [LfStructure::Stack, LfStructure::Hash] {
        for policy in [FlushPolicy::FlushOnCommit, FlushPolicy::FlushOnFail] {
            let start = Instant::now();
            let report = sweep_lockfree(structure, policy, SEED);
            let host = start.elapsed().as_secs_f64();
            eprintln!(
                "  sweep   {:<5} {:<3} {:>9} schedules, {:>9} crash points \
                 ({} completed / {} not-started / {} resolved) ({host:.2}s host)",
                structure.label(),
                policy.label(),
                report.schedules,
                report.crash_points,
                report.completed,
                report.not_started,
                report.resolved,
            );
            per_pair.push((
                format!("{}_{}", structure.label(), policy.label()),
                sweep_json(&report, host),
            ));
        }
    }
    Json::object([("seed", Json::from(SEED)), ("by_pair", Json::Obj(per_pair))])
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr9: running {} suite",
        if quick { "quick" } else { "full" }
    );
    let scaling = measure_scaling(quick);
    let gap = measure_fof_gap(quick);
    let sweeps = measure_sweeps();

    eprintln!("bench_pr9: measuring quick-mode gate quantities");
    let (one, four, ratio) = gate_scaling(HeapConfig::FocUndo);
    let (foc, fof, advantage) = gate_fof_gap();
    let gate = Json::object([
        ("scaling_1t_ops_per_sec", Json::from(one)),
        ("scaling_4t_ops_per_sec", Json::from(four)),
        ("scaling_4t", Json::from(ratio)),
        ("gap_foc_ops_per_sec", Json::from(foc)),
        ("gap_fof_ops_per_sec", Json::from(fof)),
        ("fof_advantage", Json::from(advantage)),
    ]);

    Json::object([
        ("schema", Json::from("wsp-bench-pr9/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("in_shard_scaling", scaling),
        ("contended_fof_foc_gap", gap),
        ("lockfree_sweep", sweeps),
        ("gate", gate),
        (
            "notes",
            Json::Arr(vec![
                Json::from(
                    "The scaling pair holds total work constant (one shard, YCSB-A, \
                     Zipf 0.99) and splits it over N in-shard client threads driving \
                     the lock-free detectable hash. Each thread pays simulated time \
                     only for the steps it executes, so the shard's measured phase is \
                     the slowest thread's clock; scaling below Nx is contention — CAS \
                     retries and helping — not serialization.",
                ),
                Json::from(
                    "The gap row pits flush-on-fail against flush-on-commit at 4 \
                     threads on the same hot key set. FoC pays a flush + fence to seal \
                     every operation descriptor before its linearizing CAS and flushes \
                     victims while helping; FoF relies on the residual-energy save to \
                     drain the cache at failure, so the same detectability protocol \
                     costs only the CAS traffic.",
                ),
                Json::from(
                    "The sweep rows summarize sweep_lockfree at the recorded seed: \
                     every schedule of the scenario suite with a power failure \
                     injected at every CAS/flush/fence step, every crash classified \
                     Completed / NotStarted / Resolved with exactly-once effects \
                     (asserted in-sweep). The fingerprint is the order-sensitive FNV \
                     fold verify.sh compares across worker counts.",
                ),
            ]),
        ),
    ])
}

/// The `check` subcommand: quick-mode scaling and FoF-gap quantities vs
/// the recorded gate, plus the hard floors.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr9: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr9: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc.get("gate") else {
        eprintln!("bench_pr9: {baseline_path} has no gate section");
        return ExitCode::FAILURE;
    };

    let mut failed = false;

    let recorded_scaling = gate.get("scaling_4t").and_then(Json::as_f64).unwrap_or(0.0);
    let (_, _, scaling) = gate_scaling(HeapConfig::FocUndo);
    let floor = (recorded_scaling * (1.0 - GATE_TOLERANCE)).max(SCALING_FLOOR);
    let verdict = if scaling >= floor { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate scaling  current {scaling:.3}x, recorded {recorded_scaling:.3}x, \
         floor {floor:.3}x  [{verdict}]"
    );
    if scaling < floor {
        failed = true;
    }

    let recorded_gap = gate.get("fof_advantage").and_then(Json::as_f64).unwrap_or(0.0);
    let (_, _, advantage) = gate_fof_gap();
    let floor = (recorded_gap * (1.0 - GATE_TOLERANCE)).max(FOF_GAP_FLOOR);
    let verdict = if advantage >= floor { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate fof gap  current {advantage:.3}x, recorded {recorded_gap:.3}x, \
         floor {floor:.3}x  [{verdict}]"
    );
    if advantage < floor {
        failed = true;
    }

    if failed {
        eprintln!("bench_pr9: concurrent-structures gate regressed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr9: in-shard scaling + FoF-gap gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr9 check <BENCH_PR9.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr9 run [--quick] | bench_pr9 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
