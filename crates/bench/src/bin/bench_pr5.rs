//! `bench_pr5` — epoch group-commit and sharded-KV throughput baseline.
//!
//! Measures what PR 5 buys: how much epoch group commit amortizes the
//! flush-on-commit durability tax on the Figure-5 hash-table workload,
//! and how aggregate KV throughput scales when the serving path is
//! hash-partitioned across shards. Emits machine-readable JSON;
//! `BENCH_PR5.json` at the repository root records the numbers.
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr5 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr5 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr5 -- check BENCH_PR5.json
//! ```
//!
//! * `run` sweeps epoch sizes 1/8/32/128 over both flush-on-commit
//!   configurations (simulated and host throughput), verifies epoch
//!   mode is inert for flush-on-fail, and runs the 1-shard vs 4-shard
//!   KV comparison.
//! * `check` re-measures the quick-mode gate quantities — epoch-32
//!   simulated speedup per FoC config and the 4-shard aggregate
//!   scaling — and fails (exit 1) on regression beyond tolerance or
//!   if scaling drops below the hard 3x floor.

use std::process::ExitCode;
use std::time::Instant;

use wsp_microbench::json::Json;
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::{HashBenchmark, ShardedKvBench, YcsbMix};

/// Epoch sizes the sweep exercises (1 = per-transaction protocol).
const EPOCHS: [u64; 4] = [1, 8, 32, 128];

/// Regression tolerance for `check`: simulated ratios are deterministic,
/// so a modest margin only absorbs intentional-but-small model drift.
const GATE_TOLERANCE: f64 = 0.10;

/// Hard floor for 4-shard aggregate scaling, from the PR acceptance
/// criteria; `check` enforces it regardless of the recorded gate.
const KV_SCALING_FLOOR: f64 = 3.0;

/// Best-of reps for host wall-clock numbers (simulated numbers are
/// deterministic and measured once).
const HOST_REPS: usize = 3;

fn hash_bench(quick: bool) -> HashBenchmark {
    if quick {
        HashBenchmark {
            prepopulate: 2_000,
            ops: 10_000,
            region: ByteSize::mib(8),
        }
    } else {
        HashBenchmark {
            prepopulate: 20_000,
            ops: 50_000,
            region: ByteSize::mib(64),
        }
    }
}

fn kv_pair(quick: bool) -> (ShardedKvBench, ShardedKvBench) {
    // Same total clients, per-client work, and store size; only the
    // shard count differs, so the ratio is pure serving-path scaling.
    let (ops, records) = if quick { (500, 800) } else { (2_000, 2_000) };
    let one = ShardedKvBench {
        shards: 1,
        clients_per_shard: 4,
        ops_per_client: ops,
        records_per_shard: records,
        region: ByteSize::mib(16),
        epoch_size: 32,
        mix: YcsbMix::A,
        zipf_theta: 0.99,
        in_shard_threads: 1,
    };
    let four = ShardedKvBench {
        shards: 4,
        clients_per_shard: 1,
        records_per_shard: records / 4,
        ..one
    };
    (one, four)
}

/// Simulated time-per-op (ns) for one (config, epoch-size) cell.
fn sim_ns_per_op(bench: &HashBenchmark, config: HeapConfig, epoch: u64) -> f64 {
    let r = bench
        .run_with_epoch(config, 0.5, 42, epoch)
        .expect("benchmark runs");
    r.time_per_op.as_nanos() as f64
}

/// Host wall-clock ops/sec for one cell (best of [`HOST_REPS`]).
fn host_ops_per_sec(bench: &HashBenchmark, config: HeapConfig, epoch: u64) -> f64 {
    (0..HOST_REPS)
        .map(|_| {
            let start = Instant::now();
            bench
                .run_with_epoch(config, 0.5, 42, epoch)
                .expect("benchmark runs");
            (bench.prepopulate + bench.ops) as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max)
}

/// The epoch-32 simulated speedup per FoC config at quick scale — the
/// deterministic quantity `check` gates on.
fn gate_epoch_speedups() -> Vec<(HeapConfig, f64)> {
    let bench = hash_bench(true);
    [HeapConfig::FocStm, HeapConfig::FocUndo]
        .into_iter()
        .map(|config| {
            let per_tx = sim_ns_per_op(&bench, config, 1);
            let epoch32 = sim_ns_per_op(&bench, config, 32);
            (config, per_tx / epoch32)
        })
        .collect()
}

/// The 4-shard vs 1-shard aggregate simulated scaling at quick scale.
fn gate_kv_scaling() -> f64 {
    let (one, four) = kv_pair(true);
    let r1 = one.run(HeapConfig::FocUndo, 42).expect("1-shard run");
    let r4 = four.run(HeapConfig::FocUndo, 42).expect("4-shard run");
    r4.aggregate_ops_per_sec / r1.aggregate_ops_per_sec
}

fn measure_epoch_sweep(quick: bool) -> Json {
    let bench = hash_bench(quick);
    let mut per_config = Vec::new();
    let mut speedups = Vec::new();
    for config in [HeapConfig::FocStm, HeapConfig::FocUndo] {
        let mut rows = Vec::new();
        let mut by_epoch = Vec::new();
        for epoch in EPOCHS {
            let sim_ns = sim_ns_per_op(&bench, config, epoch);
            let host = host_ops_per_sec(&bench, config, epoch);
            eprintln!(
                "  epoch {:<9} e={epoch:<4} {sim_ns:>8.1} ns/op sim, {host:>12.0} ops/sec host",
                config.label()
            );
            by_epoch.push((epoch, sim_ns, host));
            rows.push(Json::object([
                ("epoch", Json::from(epoch)),
                ("sim_ns_per_op", Json::from(sim_ns)),
                ("sim_ops_per_sec", Json::from(1e9 / sim_ns)),
                ("host_ops_per_sec", Json::from(host)),
            ]));
        }
        let base = &by_epoch[0];
        let at32 = by_epoch
            .iter()
            .find(|(e, _, _)| *e == 32)
            .expect("epoch 32 is in the sweep");
        speedups.push((
            config.label().to_owned(),
            Json::object([
                ("sim", Json::from(base.1 / at32.1)),
                ("host", Json::from(at32.2 / base.2)),
            ]),
        ));
        per_config.push((config.label().to_owned(), Json::Arr(rows)));
    }

    // Flush-on-fail has no per-transaction durability work to amortize:
    // epoch mode must be exactly inert.
    let fof = hash_bench(true);
    let inert = sim_ns_per_op(&fof, HeapConfig::FofStm, 32)
        == sim_ns_per_op(&fof, HeapConfig::FofStm, 1);
    assert!(inert, "epoch mode must be a no-op for flush-on-fail configs");

    Json::object([
        ("prepopulate", Json::from(bench.prepopulate)),
        ("ops", Json::from(bench.ops)),
        ("update_probability", Json::from(0.5)),
        ("seed", Json::from(42u64)),
        ("sweep", Json::Obj(per_config)),
        ("speedup_at_epoch32", Json::Obj(speedups)),
        ("fof_epoch_mode_inert", Json::from(inert)),
    ])
}

fn measure_sharded_kv(quick: bool) -> Json {
    let (one, four) = kv_pair(quick);
    let r1 = one.run(HeapConfig::FocUndo, 42).expect("1-shard run");
    let r4 = four.run(HeapConfig::FocUndo, 42).expect("4-shard run");
    let scaling = r4.aggregate_ops_per_sec / r1.aggregate_ops_per_sec;
    eprintln!(
        "  kv        1 shard {:>12.0} ops/sec, 4 shards {:>12.0} ops/sec ({scaling:.2}x)",
        r1.aggregate_ops_per_sec, r4.aggregate_ops_per_sec
    );
    Json::object([
        ("mix", Json::from(one.mix.label())),
        ("config", Json::from(HeapConfig::FocUndo.label())),
        ("epoch_size", Json::from(one.epoch_size)),
        ("clients_total", Json::from(4u64)),
        ("ops_per_client", Json::from(one.ops_per_client)),
        ("records_total", Json::from(one.records_per_shard)),
        ("one_shard_ops_per_sec", Json::from(r1.aggregate_ops_per_sec)),
        ("four_shard_ops_per_sec", Json::from(r4.aggregate_ops_per_sec)),
        (
            "one_shard_p99_ns",
            Json::from(r1.latencies.percentile(99.0).as_nanos()),
        ),
        (
            "four_shard_p99_ns",
            Json::from(r4.latencies.percentile(99.0).as_nanos()),
        ),
        ("scaling", Json::from(scaling)),
    ])
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr5: running {} suite",
        if quick { "quick" } else { "full" }
    );
    let epoch = measure_epoch_sweep(quick);
    let kv = measure_sharded_kv(quick);

    eprintln!("bench_pr5: measuring quick-mode gate quantities");
    let gate_speedups: Vec<(String, Json)> = gate_epoch_speedups()
        .into_iter()
        .map(|(c, s)| (c.label().to_owned(), Json::from(s)))
        .collect();
    let gate = Json::object([
        ("epoch32_sim_speedup", Json::Obj(gate_speedups)),
        ("kv_shard_scaling", Json::from(gate_kv_scaling())),
    ]);

    Json::object([
        ("schema", Json::from("wsp-bench-pr5/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("epoch_group_commit", epoch),
        ("sharded_kv", kv),
        ("gate", gate),
        (
            "notes",
            Json::Arr(vec![
                Json::from(
                    "Epoch group commit engages only for the two flush-on-commit configs; \
                     flush-on-fail already defers durability to the failure-time save, so \
                     epoch mode is a verified no-op there (fof_epoch_mode_inert).",
                ),
                Json::from(
                    "Latency trade-off: with epoch size N a crash loses up to N committed \
                     transactions (they roll back to the last sealed epoch), and commit \
                     latency becomes bimodal — N-1 commits are buffer-speed, the sealing \
                     commit pays the whole coalesced flush. The sweep shows the throughput \
                     side: gains rise steeply to epoch 32 and flatten by 128, so 32 is the \
                     recorded default operating point.",
                ),
                Json::from(
                    "Target shortfall, documented: the ISSUE asked for >=2x ops/s at epoch 32. \
                     Measured full-scale simulated speedups are ~1.75x for FoC+UL and ~1.34x \
                     for FoC+STM. For STM the cap is structural: with durability made free, \
                     FoC+STM can only fall to the FoF+STM floor, whose read/write/validate \
                     instrumentation (35/40/10 ns) bounds total speedup at ~1.4x on this mix. \
                     The durability tax itself shrinks by >70%; the residual is STM \
                     instrumentation, not flushing. The check gate pins the measured ratios.",
                ),
            ]),
        ),
    ])
}

/// The `check` subcommand: quick-mode epoch-32 speedups and 4-shard
/// scaling vs the recorded gate.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr5: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr5: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc.get("gate") else {
        eprintln!("bench_pr5: {baseline_path} has no gate section");
        return ExitCode::FAILURE;
    };

    let mut failed = false;

    let recorded_speedups = gate
        .get("epoch32_sim_speedup")
        .and_then(Json::entries)
        .unwrap_or_default();
    let current = gate_epoch_speedups();
    for (label, recorded) in recorded_speedups {
        let recorded = recorded.as_f64().unwrap_or(0.0);
        let Some((_, now)) = current.iter().find(|(c, _)| c.label() == label) else {
            eprintln!("bench_pr5: unknown heap config `{label}` in gate; skipping");
            continue;
        };
        let floor = recorded * (1.0 - GATE_TOLERANCE);
        let verdict = if *now >= floor { "ok" } else { "REGRESSED" };
        eprintln!(
            "  gate epoch32 {label:<9} current {now:.3}x, recorded {recorded:.3}x, floor {floor:.3}x  [{verdict}]"
        );
        if *now < floor {
            failed = true;
        }
    }

    let recorded_scaling = gate
        .get("kv_shard_scaling")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let scaling = gate_kv_scaling();
    let floor = (recorded_scaling * (1.0 - GATE_TOLERANCE)).max(KV_SCALING_FLOOR);
    let verdict = if scaling >= floor { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate kv-scaling      current {scaling:.2}x, recorded {recorded_scaling:.2}x, floor {floor:.2}x  [{verdict}]"
    );
    if scaling < floor {
        failed = true;
    }

    if failed {
        eprintln!("bench_pr5: group-commit/sharding throughput regressed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr5: epoch + sharding gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr5 check <BENCH_PR5.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr5 run [--quick] | bench_pr5 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
