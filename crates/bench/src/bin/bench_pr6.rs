//! `bench_pr6` — cross-shard two-phase-commit throughput baseline.
//!
//! Measures what PR 6 costs: transfer throughput through the two-phase
//! epoch seal as the cross-shard fraction rises from 0 % (single-
//! participant transactions — one PREPARED record, one decision, one
//! marker) to 100 % (every transfer spans two shards), and how a 2PC
//! transfer compares with the PR 5 single-shard serving-path baseline.
//! Emits machine-readable JSON; `BENCH_PR6.json` at the repository root
//! records the numbers.
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr6 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr6 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr6 -- check BENCH_PR6.json
//! ```
//!
//! * `run` sweeps the cross-shard fraction over both flush-on-commit
//!   configurations and records the PR 5 single-shard KV baseline next
//!   to the 2PC numbers.
//! * `check` re-measures the quick-mode gate quantities — all-cross-
//!   shard transfer throughput and the cross-shard overhead multiple —
//!   and fails (exit 1) on regression beyond tolerance.

use std::process::ExitCode;
use std::time::Instant;

use wsp_microbench::json::Json;
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::{CrossShardKvBench, ShardedKvBench, YcsbMix};

/// Cross-shard percentages the sweep exercises.
const PCTS: [u64; 5] = [0, 25, 50, 75, 100];

/// Regression tolerance for `check`: simulated ratios are deterministic,
/// so a modest margin only absorbs intentional-but-small model drift.
const GATE_TOLERANCE: f64 = 0.10;

/// Best-of reps for host wall-clock numbers (simulated numbers are
/// deterministic and measured once).
const HOST_REPS: usize = 3;

fn xs_bench(quick: bool, pct: f64) -> CrossShardKvBench {
    let transfers = if quick { 200 } else { 1_000 };
    CrossShardKvBench {
        shards: 4,
        accounts_per_shard: 8,
        transfers,
        cross_shard_pct: pct,
        // Deep balances so throughput measures the protocol, not
        // overdraft admission aborts.
        initial_balance: 10_000,
        region: ByteSize::mib(1),
        lose_shard: None,
        // Every transfer runs the full protocol to its commit markers.
        in_doubt_tail: false,
        coordinators: 1,
        decision_group: 1,
    }
}

/// The PR 5 single-shard serving-path baseline the 2PC numbers are
/// compared against.
fn kv_baseline(quick: bool) -> ShardedKvBench {
    ShardedKvBench {
        shards: 1,
        clients_per_shard: 4,
        ops_per_client: if quick { 500 } else { 2_000 },
        records_per_shard: if quick { 800 } else { 2_000 },
        region: ByteSize::mib(16),
        epoch_size: 32,
        mix: YcsbMix::A,
        zipf_theta: 0.99,
        in_shard_threads: 1,
    }
}

/// Simulated transfer throughput for one (config, cross-shard-%) cell.
fn sim_txns_per_sec(quick: bool, config: HeapConfig, pct: u64) -> f64 {
    let report = xs_bench(quick, pct as f64 / 100.0)
        .run(config, 42)
        .expect("transfer run");
    assert!(report.balance_conserved, "{config}: balance must conserve");
    report.txns_per_sec
}

/// Host wall-clock transfers/sec for one cell (best of [`HOST_REPS`]).
fn host_txns_per_sec(quick: bool, config: HeapConfig, pct: u64) -> f64 {
    let bench = xs_bench(quick, pct as f64 / 100.0);
    (0..HOST_REPS)
        .map(|_| {
            let start = Instant::now();
            bench.run(config, 42).expect("transfer run");
            bench.transfers as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max)
}

/// Gate quantity 1: all-cross-shard simulated transfer throughput at
/// quick scale, flush-on-commit undo.
fn gate_xs_throughput() -> f64 {
    sim_txns_per_sec(true, HeapConfig::FocUndo, 100)
}

/// Gate quantity 2: the cross-shard overhead multiple — how much slower
/// an all-cross-shard run is than an all-single-shard run of the same
/// transfer workload (extra PREPARED seal + second commit marker).
fn gate_xs_overhead() -> f64 {
    let single = sim_txns_per_sec(true, HeapConfig::FocUndo, 0);
    let cross = sim_txns_per_sec(true, HeapConfig::FocUndo, 100);
    single / cross
}

fn measure_pct_sweep(quick: bool) -> Json {
    let mut per_config = Vec::new();
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let mut rows = Vec::new();
        for pct in PCTS {
            let sim = sim_txns_per_sec(quick, config, pct);
            let host = host_txns_per_sec(quick, config, pct);
            eprintln!(
                "  2pc {:<9} cross-shard {pct:>3}%  {sim:>12.0} txn/s sim, {host:>10.0} txn/s host",
                config.label()
            );
            rows.push(Json::object([
                ("cross_shard_pct", Json::from(pct)),
                ("sim_txns_per_sec", Json::from(sim)),
                ("host_txns_per_sec", Json::from(host)),
            ]));
        }
        per_config.push((config.label().to_owned(), Json::Arr(rows)));
    }
    let bench = xs_bench(quick, 1.0);
    Json::object([
        ("shards", Json::from(bench.shards as u64)),
        ("transfers", Json::from(bench.transfers as u64)),
        ("accounts_per_shard", Json::from(bench.accounts_per_shard as u64)),
        ("seed", Json::from(42u64)),
        ("sweep", Json::Obj(per_config)),
    ])
}

fn measure_vs_pr5_baseline(quick: bool) -> Json {
    let kv = kv_baseline(quick)
        .run(HeapConfig::FocUndo, 42)
        .expect("KV baseline run");
    let xs = sim_txns_per_sec(quick, HeapConfig::FocUndo, 100);
    let cost_in_kv_ops = kv.aggregate_ops_per_sec / xs;
    eprintln!(
        "  baseline  single-shard KV {:>12.0} ops/sec; one cross-shard txn costs {cost_in_kv_ops:.1} KV ops",
        kv.aggregate_ops_per_sec
    );
    Json::object([
        ("kv_mix", Json::from(kv.mix.label())),
        ("kv_epoch_size", Json::from(kv.epoch_size)),
        (
            "single_shard_kv_ops_per_sec",
            Json::from(kv.aggregate_ops_per_sec),
        ),
        ("cross_shard_txns_per_sec", Json::from(xs)),
        ("txn_cost_in_kv_ops", Json::from(cost_in_kv_ops)),
    ])
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr6: running {} suite",
        if quick { "quick" } else { "full" }
    );
    let sweep = measure_pct_sweep(quick);
    let baseline = measure_vs_pr5_baseline(quick);

    eprintln!("bench_pr6: measuring quick-mode gate quantities");
    let gate = Json::object([
        ("xs_txns_per_sec", Json::from(gate_xs_throughput())),
        ("xs_overhead_multiple", Json::from(gate_xs_overhead())),
    ]);

    Json::object([
        ("schema", Json::from("wsp-bench-pr6/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("cross_shard_sweep", sweep),
        ("vs_pr5_single_shard", baseline),
        ("gate", gate),
        (
            "notes",
            Json::Arr(vec![
                Json::from(
                    "Every transfer runs presumed-abort 2PC: durable per-shard PREPARED \
                     records (one log record per coalesced address, one flush per line, \
                     fenced), a fenced coordinator decision record, then per-shard commit \
                     markers. A 0% cross-shard run still pays one prepare+marker; the \
                     sweep isolates the marginal cost of the second participant.",
                ),
                Json::from(
                    "The overhead multiple is the protocol's price in simulated time, not \
                     host time: flush-on-commit charges every log append and line flush to \
                     the simulated clock, so the ratio is deterministic and gate-stable.",
                ),
                Json::from(
                    "txn_cost_in_kv_ops contextualizes a cross-shard transfer against the \
                     PR 5 single-shard serving path (YCSB-A, epoch 32): units differ (a \
                     transfer is two writes plus protocol), so it is recorded for scale, \
                     not gated.",
                ),
            ]),
        ),
    ])
}

/// The `check` subcommand: quick-mode cross-shard throughput and
/// overhead multiple vs the recorded gate.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr6: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr6: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc.get("gate") else {
        eprintln!("bench_pr6: {baseline_path} has no gate section");
        return ExitCode::FAILURE;
    };

    let mut failed = false;

    let recorded_tput = gate
        .get("xs_txns_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let tput = gate_xs_throughput();
    let floor = recorded_tput * (1.0 - GATE_TOLERANCE);
    let verdict = if tput >= floor { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate xs-throughput  current {tput:.0} txn/s, recorded {recorded_tput:.0}, floor {floor:.0}  [{verdict}]"
    );
    if tput < floor {
        failed = true;
    }

    let recorded_overhead = gate
        .get("xs_overhead_multiple")
        .and_then(Json::as_f64)
        .unwrap_or(f64::INFINITY);
    let overhead = gate_xs_overhead();
    let ceiling = recorded_overhead * (1.0 + GATE_TOLERANCE);
    let verdict = if overhead <= ceiling { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate xs-overhead    current {overhead:.3}x, recorded {recorded_overhead:.3}x, ceiling {ceiling:.3}x  [{verdict}]"
    );
    if overhead > ceiling {
        failed = true;
    }

    if failed {
        eprintln!("bench_pr6: cross-shard 2PC throughput regressed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr6: cross-shard 2PC gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr6 check <BENCH_PR6.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr6 run [--quick] | bench_pr6 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
