//! `bench_pr8` — shared power domain: global triage vs private budgets,
//! and the storm-survival scorecard.
//!
//! Measures what PR 8 buys: how much more of a sharded fleet the domain
//! supervisor's *global* residual-energy triage seals under contention
//! than the same window split into private per-shard budgets, and
//! whether the intermittent-computing storm (dozens of outages landing
//! mid-recovery) survives with full decision/rung coverage. Emits
//! machine-readable JSON; `BENCH_PR8.json` at the repository root
//! records the numbers.
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr8 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr8 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr8 -- check BENCH_PR8.json
//! ```
//!
//! * `run` drives a contended three-shard save through the domain
//!   supervisor and through an equal split of the same window, scores
//!   both (complete = 2, partial = 1, sacrificed = 0), then runs the
//!   power-storm sweep for both flush-on-commit configurations and
//!   records the survival scorecard.
//! * `check` re-measures the quick-mode gate quantities and fails
//!   (exit 1) on regression beyond tolerance, if the triage advantage
//!   drops below 1.0 (the global window must never seal less than
//!   private budgets), or if a storm stops surviving with full
//!   coverage.

use std::process::ExitCode;
use std::time::Instant;

use wsp_core::{
    clean_failure_trace, domain_decision_points, domain_save, supervised_save, sweep_power_storm,
    DomainBudget, DomainInput, PowerStormReport, SaveBudget, SaveVerdict, ShardVerdict,
};
use wsp_machine::{Machine, SystemLoad};
use wsp_microbench::json::Json;
use wsp_pheap::{HeapConfig, PersistentHeap};
use wsp_power::{PowerDomain, Psu, Ultracapacitor};
use wsp_units::{ByteSize, Farads, Nanos, Volts};

/// Regression tolerance for `check`: the measured quantities are
/// deterministic, so the margin only absorbs intentional model drift.
const GATE_TOLERANCE: f64 = 0.10;

/// Hard floor for the triage advantage: a *global* window must never
/// seal less of the fleet than the same joules split into private
/// per-shard budgets.
const TRIAGE_ADVANTAGE_FLOOR: f64 = 1.0;

/// Shards in the contended-save fleet.
const SHARDS: usize = 3;

fn verdict_score(complete: usize, partial: usize) -> u64 {
    (2 * complete + partial) as u64
}

/// An uneven fleet: shard 0 carries a deep committed history (a large
/// priority stage), shards 1–2 are light. Exactly the case where a
/// global window beats private slices — the light shards' surplus can
/// pay for the heavy shard's priority stage.
fn contended_fleet(config: HeapConfig) -> Vec<PersistentHeap> {
    let mut heaps = Vec::with_capacity(SHARDS);
    for shard in 0..SHARDS {
        let mut heap = PersistentHeap::create(ByteSize::kib(512), config);
        let txns = if shard == 0 { 160 } else { 4 };
        for t in 0..txns {
            let mut tx = heap.begin();
            let p = tx.alloc(64).expect("fleet seed allocation");
            tx.write_word(p, (shard as u64) << 32 | t).expect("seed write");
            if t == 0 {
                tx.set_root(p).expect("root");
            }
            tx.commit().expect("seed commit");
        }
        heaps.push(heap);
    }
    heaps
}

fn loaded_machine() -> Machine {
    let mut machine = Machine::intel_testbed();
    machine.apply_load(SystemLoad::Busy, 42);
    machine
}

/// The shared window the comparison runs under: one fixed detection
/// cost plus the heaviest shard's priority stage plus one light full
/// save — enough for the triage to seal most of the fleet, far too
/// little for three private slices to each re-pay detection.
fn contention_window(machine: &Machine, heaps: &[PersistentHeap]) -> Nanos {
    let per_shard: Vec<Nanos> = heaps
        .iter()
        .map(|h| wsp_core::priority_stage_window(machine, h))
        .collect();
    let heaviest = per_shard.iter().copied().max().unwrap_or(Nanos::ZERO);
    let lightest = per_shard.iter().copied().min().unwrap_or(Nanos::ZERO);
    let share = machine.flush_analysis().flush_time(
        wsp_cache::FlushMethod::Wbinvd,
        machine.dirty_estimate(SystemLoad::Busy) / SHARDS as u64,
    );
    heaviest + lightest + share
}

struct TriageOutcome {
    complete: usize,
    partial: usize,
    sacrificed: usize,
    window: Nanos,
    used: Nanos,
}

/// The contended save through the domain supervisor: one global window,
/// urgency-ranked staged budgets.
fn run_global_triage(config: HeapConfig) -> TriageOutcome {
    let mut machine = loaded_machine();
    let mut heaps = contended_fleet(config);
    let window = contention_window(&machine, &heaps);
    let mut domain = PowerDomain::new(
        Psu::atx_750w(),
        Ultracapacitor::new(Farads::new(2.0), Volts::new(12.0), Volts::new(6.0)),
        machine.power_draw(SystemLoad::Busy),
        SHARDS,
    );
    let staleness = vec![Nanos::ZERO; SHARDS];
    let report = domain_save(DomainInput {
        machine: &mut machine,
        domain: &mut domain,
        heaps: &mut heaps,
        staleness: &staleness,
        load: SystemLoad::Busy,
        trace: &clean_failure_trace(),
        budget: DomainBudget {
            window_cap: Some(window),
            ..DomainBudget::trusting()
        },
    })
    .expect("domain save yields a verdict");
    TriageOutcome {
        complete: report.count(ShardVerdict::Complete),
        partial: report.count(ShardVerdict::PartialPriority),
        sacrificed: report.count(ShardVerdict::Sacrificed),
        window: report.window,
        used: report.used,
    }
}

/// The same fleet and the same total window, but split into three
/// private slices — every slice re-pays its own detection and context
/// costs, and no shard can borrow a neighbour's surplus.
fn run_private_split(config: HeapConfig) -> TriageOutcome {
    let heaps = contended_fleet(config);
    let window = contention_window(&loaded_machine(), &heaps);
    let slice = window / SHARDS as u64;
    let (mut complete, mut partial, mut sacrificed) = (0, 0, 0);
    let mut used = Nanos::ZERO;
    for mut heap in heaps {
        let mut machine = loaded_machine();
        let report = supervised_save(
            &mut machine,
            &mut heap,
            SystemLoad::Busy,
            &clean_failure_trace(),
            SaveBudget {
                window_cap: Some(slice),
                ..SaveBudget::trusting()
            },
        )
        .expect("supervised save yields a verdict");
        match report.verdict {
            SaveVerdict::Complete => complete += 1,
            SaveVerdict::PartialPriority => partial += 1,
            _ => sacrificed += 1,
        }
        used = used.saturating_add(report.used);
    }
    TriageOutcome {
        complete,
        partial,
        sacrificed,
        window,
        used,
    }
}

/// The deterministic triage-advantage pair `check` gates on.
fn gate_triage_advantage(config: HeapConfig) -> (u64, u64, f64) {
    let triaged = run_global_triage(config);
    let split = run_private_split(config);
    let t = verdict_score(triaged.complete, triaged.partial);
    let s = verdict_score(split.complete, split.partial);
    (t, s, t as f64 / (s as f64).max(1.0))
}

fn outcome_json(o: &TriageOutcome) -> Json {
    Json::object([
        ("complete", Json::from(o.complete as u64)),
        ("partial", Json::from(o.partial as u64)),
        ("sacrificed", Json::from(o.sacrificed as u64)),
        ("score", Json::from(verdict_score(o.complete, o.partial))),
        ("window_ns", Json::from(o.window.as_nanos())),
        ("used_ns", Json::from(o.used.as_nanos())),
    ])
}

fn measure_triage() -> Json {
    let mut per_config = Vec::new();
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let triaged = run_global_triage(config);
        let split = run_private_split(config);
        let t = verdict_score(triaged.complete, triaged.partial);
        let s = verdict_score(split.complete, split.partial);
        eprintln!(
            "  triage {:<9} global {}C/{}P/{}S (score {t}), private split \
             {}C/{}P/{}S (score {s}), advantage {:.2}x",
            config.label(),
            triaged.complete,
            triaged.partial,
            triaged.sacrificed,
            split.complete,
            split.partial,
            split.sacrificed,
            t as f64 / (s as f64).max(1.0),
        );
        per_config.push((
            config.label().to_owned(),
            Json::object([
                ("global_triage", outcome_json(&triaged)),
                ("private_split", outcome_json(&split)),
                ("advantage", Json::from(t as f64 / (s as f64).max(1.0))),
            ]),
        ));
    }
    Json::object([
        ("shards", Json::from(SHARDS as u64)),
        ("scoring", Json::from("complete=2 partial=1 sacrificed=0")),
        ("by_config", Json::Obj(per_config)),
    ])
}

/// The sealed-shard fraction of one storm sweep — the quantity `check`
/// gates survival quality on.
fn sealed_fraction(report: &PowerStormReport) -> f64 {
    let (mut sealed, mut total) = (0usize, 0usize);
    for point in &report.points {
        sealed += point.stats.complete + point.stats.partial;
        total += point.stats.complete + point.stats.partial + point.stats.sacrificed;
    }
    sealed as f64 / (total as f64).max(1.0)
}

fn storm_json(config: HeapConfig, seeds: &[u64], host_secs: f64, sweeps: &[PowerStormReport]) -> Json {
    let mut outages = 0usize;
    let mut committed = 0usize;
    let mut aborts = 0usize;
    let mut sacrificed = 0usize;
    let mut rebuilt = 0usize;
    let mut rerouted = 0u64;
    let mut coord = 0usize;
    let mut reclimbs = 0usize;
    let mut covered = true;
    for sweep in sweeps {
        outages += sweep.outages;
        rebuilt += sweep.rebuilt;
        rerouted += sweep.rerouted_writes;
        covered &= sweep.decision_cuts_covered == domain_decision_points(3)
            && sweep.crash_rungs_covered == 3;
        for p in &sweep.points {
            committed += p.stats.committed_txns;
            aborts += p.stats.presumed_aborts;
            sacrificed += p.stats.sacrificed;
            coord += p.stats.coordinator_shard_sacrifices;
            reclimbs += p.stats.reclimbs_verified;
        }
    }
    let fraction =
        sweeps.iter().map(sealed_fraction).sum::<f64>() / (sweeps.len() as f64).max(1.0);
    eprintln!(
        "  storm  {:<9} {} outages across {} sweeps: {:.1}% shard-epochs sealed, \
         {sacrificed} sacrificed / {rebuilt} rebuilt, {rerouted} words rerouted, \
         {coord} coordinator-shard losses, {reclimbs} re-climbs verified \
         ({host_secs:.2}s host)",
        config.label(),
        outages,
        sweeps.len(),
        fraction * 100.0,
    );
    Json::object([
        ("seeds", Json::Arr(seeds.iter().map(|&s| Json::from(s)).collect())),
        ("outages", Json::from(outages as u64)),
        ("committed_txns", Json::from(committed as u64)),
        ("presumed_aborts", Json::from(aborts as u64)),
        ("sealed_fraction", Json::from(fraction)),
        ("sacrificed", Json::from(sacrificed as u64)),
        ("rebuilt", Json::from(rebuilt as u64)),
        ("rerouted_writes", Json::from(rerouted)),
        ("coordinator_shard_sacrifices", Json::from(coord as u64)),
        ("reclimbs_verified", Json::from(reclimbs as u64)),
        ("full_coverage", Json::from(covered)),
        ("host_secs", Json::from(host_secs)),
    ])
}

fn measure_storm(quick: bool) -> Json {
    let seeds: &[u64] = if quick { &[42] } else { &[42, 7, 4242] };
    let mut per_config = Vec::new();
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let start = Instant::now();
        let sweeps: Vec<PowerStormReport> = seeds
            .iter()
            .map(|&seed| sweep_power_storm(config, seed))
            .collect();
        let host = start.elapsed().as_secs_f64();
        per_config.push((
            config.label().to_owned(),
            storm_json(config, seeds, host, &sweeps),
        ));
    }
    Json::object([("by_config", Json::Obj(per_config))])
}

/// The quick-mode storm gate pair: sealed fraction and full coverage.
fn gate_storm(config: HeapConfig) -> (f64, bool) {
    let sweep = sweep_power_storm(config, 42);
    let covered = sweep.decision_cuts_covered == domain_decision_points(3)
        && sweep.crash_rungs_covered == 3
        && sweep.rebuilt > 0;
    (sealed_fraction(&sweep), covered)
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr8: running {} suite",
        if quick { "quick" } else { "full" }
    );
    let triage = measure_triage();
    let storm = measure_storm(quick);

    eprintln!("bench_pr8: measuring quick-mode gate quantities");
    let mut gate_configs = Vec::new();
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let (t, s, advantage) = gate_triage_advantage(config);
        let (fraction, covered) = gate_storm(config);
        gate_configs.push((
            config.label().to_owned(),
            Json::object([
                ("triage_score", Json::from(t)),
                ("split_score", Json::from(s)),
                ("triage_advantage", Json::from(advantage)),
                ("storm_sealed_fraction", Json::from(fraction)),
                ("storm_full_coverage", Json::from(covered)),
            ]),
        ));
    }
    let gate = Json::Obj(gate_configs);

    Json::object([
        ("schema", Json::from("wsp-bench-pr8/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("triage_vs_private_budgets", triage),
        ("power_storm", storm),
        ("gate", gate),
        (
            "notes",
            Json::Arr(vec![
                Json::from(
                    "The triage comparison runs one uneven fleet (one shard with a deep \
                     committed history, two light ones) under the same total residual \
                     window twice: once through the domain supervisor's global triage, \
                     once as three private per-shard slices. Private slices each re-pay \
                     detection + context costs and strand the light shards' surplus; the \
                     global window pays detection once and moves the surplus to where the \
                     urgency ranking says it buys the most durable state.",
                ),
                Json::from(
                    "The storm scorecard aggregates sweep_power_storm: 6 storms per seed \
                     (3 rung phases x 2 triage biases) of 27 outages each, every outage \
                     cutting a triage decision and landing mid-recovery of the previous \
                     one. sealed_fraction counts shard-epochs that ended Complete or \
                     PartialPriority; the remainder were typed sacrifices, every one \
                     rebuilt from a checkpoint plus the coordinator's routing log — the \
                     in-sweep asserts already proved no committed transaction was lost.",
                ),
            ]),
        ),
    ])
}

/// The `check` subcommand: quick-mode triage advantage and storm
/// quality vs the recorded gate, plus the hard floors.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr8: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr8: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc.get("gate") else {
        eprintln!("bench_pr8: {baseline_path} has no gate section");
        return ExitCode::FAILURE;
    };

    let mut failed = false;
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let label = config.label();
        let Some(recorded) = gate.get(label) else {
            eprintln!("bench_pr8: gate has no `{label}` section");
            failed = true;
            continue;
        };
        let recorded_adv = recorded
            .get("triage_advantage")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let (_, _, advantage) = gate_triage_advantage(config);
        let floor = (recorded_adv * (1.0 - GATE_TOLERANCE)).max(TRIAGE_ADVANTAGE_FLOOR);
        let verdict = if advantage >= floor { "ok" } else { "REGRESSED" };
        eprintln!(
            "  gate triage {label:<9} current {advantage:.3}x, recorded {recorded_adv:.3}x, \
             floor {floor:.3}x  [{verdict}]"
        );
        if advantage < floor {
            failed = true;
        }

        let recorded_fraction = recorded
            .get("storm_sealed_fraction")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let (fraction, covered) = gate_storm(config);
        let floor = recorded_fraction * (1.0 - GATE_TOLERANCE);
        let verdict = if fraction >= floor && covered {
            "ok"
        } else {
            "REGRESSED"
        };
        eprintln!(
            "  gate storm  {label:<9} sealed {:.1}% (recorded {:.1}%, floor {:.1}%), \
             coverage {covered}  [{verdict}]",
            fraction * 100.0,
            recorded_fraction * 100.0,
            floor * 100.0,
        );
        if fraction < floor || !covered {
            failed = true;
        }
    }

    if failed {
        eprintln!("bench_pr8: shared-domain triage/storm gate regressed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr8: shared-domain triage + storm-survival gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr8 check <BENCH_PR8.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr8 run [--quick] | bench_pr8 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
