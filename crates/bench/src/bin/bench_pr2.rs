//! `bench_pr2` — the recorded host-time performance baseline.
//!
//! Measures the simulator's hot paths in host wall-clock terms and
//! emits machine-readable JSON, so every PR from PR 2 onward has a
//! throughput trajectory to compare against (`BENCH_PR2.json` at the
//! repository root records the PR-2 before/after numbers).
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr2 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr2 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr2 -- check BENCH_PR2.json
//! ```
//!
//! * `run` executes the suite (hash-table ops/sec per heap config,
//!   crash-sweep wall-clock, `wbinvd` walk time) and prints the results
//!   object to stdout.
//! * `check` re-runs the quick hash-table benchmark and fails (exit 1)
//!   if any heap configuration's ops/sec regressed more than 20%
//!   against the `gate` section of the given baseline file.

use std::process::ExitCode;
use std::time::Instant;

use wsp_cache::{CacheHierarchy, CpuProfile};
use wsp_core::{sweep_mid_transaction, sweep_save_path, RestartStrategy};
use wsp_machine::{Machine, SystemLoad};
use wsp_microbench::json::Json;
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::HashBenchmark;

/// Regression threshold for `check`: fail when ops/sec drops below
/// `1 - GATE_TOLERANCE` of the recorded gate value.
const GATE_TOLERANCE: f64 = 0.20;

/// Repetitions for `check`; the best of the runs is compared, which
/// absorbs scheduler noise on shared hardware.
const GATE_REPS: usize = 3;

/// Repetitions for `run`'s hash-table measurement (best-of; the recorded
/// baseline must not be a hostage of scheduler noise).
const RUN_HASH_REPS: usize = 5;

/// Repetitions for `run`'s sweep measurement (best-of).
const RUN_SWEEP_REPS: usize = 3;

fn hash_bench(quick: bool) -> HashBenchmark {
    if quick {
        HashBenchmark {
            prepopulate: 1_000,
            ops: 4_000,
            region: ByteSize::mib(8),
        }
    } else {
        HashBenchmark {
            prepopulate: 20_000,
            ops: 50_000,
            region: ByteSize::mib(64),
        }
    }
}

/// Host-time ops/sec of the Figure-5 hash-table microbenchmark for one
/// heap configuration (prepopulate + measured phase, like the paper).
fn measure_hashtable(bench: &HashBenchmark, config: HeapConfig) -> f64 {
    let start = Instant::now();
    bench.run(config, 0.5, 42).expect("benchmark runs");
    let wall = start.elapsed().as_secs_f64();
    (bench.prepopulate + bench.ops) as f64 / wall
}

fn measure_hashtable_all(quick: bool) -> Json {
    let bench = hash_bench(quick);
    let mut rates = Vec::new();
    for config in HeapConfig::all() {
        let rate = (0..RUN_HASH_REPS)
            .map(|_| measure_hashtable(&bench, config))
            .fold(0.0f64, f64::max);
        eprintln!(
            "  hashtable {:<9} {:>12.0} ops/sec (best of {RUN_HASH_REPS})",
            config.label(),
            rate
        );
        rates.push((config.label().to_owned(), Json::from(rate)));
    }
    Json::object([
        ("prepopulate", Json::from(bench.prepopulate)),
        ("ops", Json::from(bench.ops)),
        ("update_probability", Json::from(0.5)),
        ("ops_per_sec", Json::Obj(rates)),
    ])
}

/// Wall-clock of the PR-1 crash sweeps at the load the test suite puts
/// on them: the save-path sweep across both testbeds and loads over
/// several sentinel seeds, and the mid-transaction sweep across every
/// heap configuration over several script seeds.
fn measure_sweeps(quick: bool) -> Json {
    let (save_seeds, tx_seeds) = if quick { (2u64, 2u64) } else { (16, 32) };

    let mut save_path_ms = f64::INFINITY;
    let mut mid_tx_ms = f64::INFINITY;
    for _ in 0..RUN_SWEEP_REPS {
        let start = Instant::now();
        for seed in 0..save_seeds {
            for (make, load) in [
                (Machine::intel_testbed as fn() -> Machine, SystemLoad::Busy),
                (Machine::amd_testbed as fn() -> Machine, SystemLoad::Idle),
            ] {
                let report =
                    sweep_save_path(make, load, RestartStrategy::RestorePathReinit, seed * 31 + 42);
                assert_eq!(report.locally_restored, 1);
            }
        }
        save_path_ms = save_path_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        for seed in 0..tx_seeds {
            for config in HeapConfig::all() {
                let report = sweep_mid_transaction(config, seed * 97 + 1234);
                assert!(report.crash_points > 0);
            }
        }
        mid_tx_ms = mid_tx_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    eprintln!(
        "  sweeps    save-path {save_path_ms:.1} ms, mid-tx {mid_tx_ms:.1} ms (best of {RUN_SWEEP_REPS})"
    );
    Json::object([
        ("save_path_seeds", Json::from(save_seeds)),
        ("mid_tx_seeds", Json::from(tx_seeds)),
        ("save_path_ms", Json::from(save_path_ms)),
        ("mid_tx_ms", Json::from(mid_tx_ms)),
        ("total_ms", Json::from(save_path_ms + mid_tx_ms)),
    ])
}

/// Host time of one `wbinvd` whole-hierarchy walk with `lines` dirty
/// lines (best of 5, on fresh clones of a pre-dirtied hierarchy).
fn measure_wbinvd() -> Json {
    const DIRTY_LINES: u64 = 10_000;
    let mut template = CacheHierarchy::new(CpuProfile::intel_c5528());
    for i in 0..DIRTY_LINES {
        template.store(i * 64);
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let mut cache = template.clone();
        let start = Instant::now();
        let r = cache.wbinvd();
        let us = start.elapsed().as_secs_f64() * 1e6;
        assert_eq!(r.writebacks.len() as u64, DIRTY_LINES);
        best = best.min(us);
    }
    eprintln!("  wbinvd    walk {best:.1} us host ({DIRTY_LINES} dirty lines)");
    Json::object([
        ("dirty_lines", Json::from(DIRTY_LINES)),
        ("walk_host_us", Json::from(best)),
    ])
}

fn run_suite(quick: bool) -> Json {
    eprintln!("bench_pr2: running {} suite", if quick { "quick" } else { "full" });
    Json::object([
        ("schema", Json::from("wsp-bench-pr2/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("hashtable", measure_hashtable_all(quick)),
        ("sweeps", measure_sweeps(quick)),
        ("wbinvd", measure_wbinvd()),
    ])
}

/// The `check` subcommand: quick hash-table throughput vs. the recorded
/// gate, per heap configuration, with a [`GATE_TOLERANCE`] margin.
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr2: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr2: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc
        .get("gate")
        .and_then(|g| g.get("hashtable_ops_per_sec"))
        .and_then(Json::entries)
    else {
        eprintln!("bench_pr2: {baseline_path} has no gate.hashtable_ops_per_sec section");
        return ExitCode::FAILURE;
    };

    // Best-of-N current quick throughput per config.
    let bench = hash_bench(true);
    let mut failed = false;
    for (label, recorded) in gate {
        let recorded = recorded.as_f64().unwrap_or(0.0);
        let config = HeapConfig::all()
            .into_iter()
            .find(|c| c.label() == label);
        let Some(config) = config else {
            eprintln!("bench_pr2: unknown heap config `{label}` in gate; skipping");
            continue;
        };
        let current = (0..GATE_REPS)
            .map(|_| measure_hashtable(&bench, config))
            .fold(0.0f64, f64::max);
        let floor = recorded * (1.0 - GATE_TOLERANCE);
        let verdict = if current >= floor { "ok" } else { "REGRESSED" };
        eprintln!(
            "  gate {label:<9} current {current:>12.0} ops/sec, recorded {recorded:>12.0}, floor {floor:>12.0}  [{verdict}]"
        );
        if current < floor {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "bench_pr2: hash-table throughput regressed more than {:.0}% against {baseline_path}",
            GATE_TOLERANCE * 100.0
        );
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr2: throughput gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr2 check <BENCH_PR2.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr2 run [--quick] | bench_pr2 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
