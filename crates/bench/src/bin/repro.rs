//! `repro` — regenerate every table and figure of the WSP paper.
//!
//! Usage: `repro <experiment> [--paper]` where experiment is one of
//! `table1 table2 fig1 fig2 fig5 fig6 fig7 fig8 fig9 feasibility
//! recovery-storm drills ycsb tradeoff hybrid fleet all`. `--paper`
//! runs the full-size workloads for `table1`/`fig5` (slower); the
//! default is a scaled sweep that preserves the shape.

use std::env;
use std::process::ExitCode;

use wsp_bench::table::TextTable;
use wsp_bench::{
    capacitance_curve, feasibility, fig1, fig2, fig5, fig6, fig7, fig8, fig9, fleet_year,
    hybrid_placement, recovery_storm, strategy_drills, table1, table2, ycsb_matrix, Fig5Config,
};
use wsp_workloads::YcsbDriver;
use wsp_units::Nanos;

fn ms(n: Nanos) -> String {
    format!("{:.2}", n.as_millis_f64())
}

fn print_table1(paper: bool) {
    let (entries, runs) = if paper { (100_000, 5) } else { (5_000, 5) };
    println!(
        "(Table 1; paper: Mnemosyne 2160 (77), WSP 5274 (139) updates/s; {} entries x {} runs)",
        entries, runs
    );
    let mut t = TextTable::new(
        "Table 1: OpenLDAP update throughput",
        &["Configuration", "Updates/s", "(stdev)", "speedup vs Mnemosyne"],
    );
    let rows = table1(entries, runs);
    let base = rows[0].throughput.mean;
    for r in &rows {
        t.row(&[
            r.system.to_owned(),
            format!("{:.0}", r.throughput.mean),
            format!("({:.0})", r.throughput.stdev),
            format!("{:.2}x", r.throughput.mean / base),
        ]);
    }
    print!("{}", t.render());
}

fn print_table2() {
    println!("(Table 2; paper: Intel 2.8/2.3/0.79 ms, AMD 1.3/1.6/0.65 ms)");
    let mut t = TextTable::new(
        "Table 2: worst-case cache flush times",
        &["Machine", "wbinvd (ms)", "clflush (ms)", "theoretical best (ms)"],
    );
    for r in table2() {
        t.row(&[r.machine, ms(r.wbinvd), ms(r.clflush), ms(r.theoretical_best)]);
    }
    print!("{}", t.render());
}

fn print_fig1() {
    println!("(Figure 1; paper: ultracaps retain ~90-96% at 100k cycles, batteries collapse)");
    let mut t = TextTable::new(
        "Figure 1: capacitance vs charge/discharge cycles (%)",
        &["Cycles", "Ultracap best", "Ultracap worst", "Battery"],
    );
    for p in fig1() {
        t.row(&[
            p.cycles.to_string(),
            format!("{:.1}", p.ultracap_best),
            format!("{:.1}", p.ultracap_worst),
            format!("{:.1}", p.battery),
        ]);
    }
    print!("{}", t.render());
}

fn print_fig2() {
    println!("(Figure 2; paper: 1 GB NVDIMM saves in <10 s; ultracap supplies >=2x save time)");
    let mut t = TextTable::new(
        "Figure 2: ultracap voltage & power during NVDIMM save",
        &["t (s)", "Voltage (V)", "Power (W)", "save done?"],
    );
    let trace = fig2(Nanos::from_millis(500));
    for p in trace.iter().step_by(2) {
        t.row(&[
            format!("{:.1}", p.t.as_secs_f64()),
            format!("{:.2}", p.voltage.get()),
            format!("{:.1}", p.power.get()),
            if p.save_completed { "yes" } else { "" }.to_owned(),
        ]);
    }
    print!("{}", t.render());
}

fn print_fig5(paper: bool) {
    let cfg = if paper { Fig5Config::paper() } else { Fig5Config::quick() };
    println!(
        "(Figure 5; paper: FoC+STM 6-13x slower than FoF, gap grows with update ratio; {} ops x {} runs)",
        cfg.ops, cfg.runs
    );
    let points = fig5(&cfg);
    let mut t = TextTable::new(
        "Figure 5: hash table time per op (us), by update probability",
        &["Config", "p=update", "mean", "min", "max", "x FoF"],
    );
    // Index FoF means by probability for the ratio column.
    let fof: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.config == wsp_pheap::HeapConfig::Fof)
        .map(|p| (p.update_probability, p.time_per_op_ns.mean))
        .collect();
    for p in &points {
        let base = fof
            .iter()
            .find(|(q, _)| (*q - p.update_probability).abs() < 1e-9)
            .map_or(1.0, |(_, m)| *m);
        t.row(&[
            p.config.label().to_owned(),
            format!("{:.1}", p.update_probability),
            format!("{:.3}", p.time_per_op_ns.mean / 1000.0),
            format!("{:.3}", p.time_per_op_ns.min / 1000.0),
            format!("{:.3}", p.time_per_op_ns.max / 1000.0),
            format!("{:.1}x", p.time_per_op_ns.mean / base),
        ]);
    }
    print!("{}", t.render());
}

fn print_fig6() {
    println!("(Figure 6; paper: PWR_OK drop -> first rail <95% nominal = 33 ms, Intel busy)");
    let (trace, window) = fig6();
    let mut t = TextTable::new(
        "Figure 6: oscilloscope capture (downsampled to 5 ms)",
        &["t (ms)", "12V", "5V", "3.3V", "PWR_OK"],
    );
    for s in trace.samples.iter().step_by(500) {
        t.row(&[
            format!("{:.1}", s.offset_ns as f64 / 1e6),
            format!("{:.2}", s.rails[0]),
            format!("{:.2}", s.rails[1]),
            format!("{:.2}", s.rails[2]),
            if s.pwr_ok { "high" } else { "low" }.to_owned(),
        ]);
    }
    print!("{}", t.render());
    match window {
        Some(w) => println!("measured residual energy window: {:.1} ms", w.as_millis_f64()),
        None => println!("no rail drop detected within the capture"),
    }
}

fn print_fig7() {
    println!("(Figure 7; paper: 346/392, 22/71, 10/10, 33/33 ms busy/idle; worst of 3 runs)");
    let mut t = TextTable::new(
        "Figure 7: residual energy windows",
        &["Testbed", "PSU", "Load", "Window (ms)"],
    );
    for r in fig7(3) {
        t.row(&[
            r.testbed.to_owned(),
            r.psu,
            r.load.to_owned(),
            format!("{:.0}", r.window.as_millis_f64()),
        ]);
    }
    print!("{}", t.render());
}

fn print_fig8() {
    println!("(Figure 8; paper: save <5 ms on all four CPUs, nearly flat in dirty bytes)");
    let series = fig8();
    let mut headers: Vec<String> = vec!["Dirty bytes".to_owned()];
    headers.extend(series.iter().map(|s| format!("{} (ms)", s.machine)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = TextTable::new(
        "Figure 8: context save + cache flush time vs dirty bytes",
        &header_refs,
    );
    for i in 0..series[0].points.len() {
        let mut row = vec![series[0].points[i].0.to_string()];
        for s in &series {
            row.push(ms(s.points[i].1));
        }
        t.row(&row);
    }
    print!("{}", t.render());
}

fn print_fig9() {
    println!("(Figure 9; paper: ~5.3-6.6 s, dominated by GPU, disk and NIC)");
    let mut t = TextTable::new(
        "Figure 9: ACPI device state save time",
        &["Testbed", "Load", "Suspend time (ms)"],
    );
    for r in fig9() {
        t.row(&[r.testbed, r.load.to_owned(), ms(r.suspend_time)]);
    }
    print!("{}", t.render());
}

fn print_feasibility() {
    println!("(S5.4; paper: save completes within 2-35% of the residual window)");
    let mut t = TextTable::new(
        "Feasibility: state save vs residual window",
        &["Machine", "PSU", "Load", "Save (ms)", "Window (ms)", "Fraction", "Fits"],
    );
    for r in feasibility() {
        t.row(&[
            r.machine,
            r.psu,
            r.load.to_owned(),
            ms(r.save_time),
            ms(r.window),
            r.fraction.map_or("-".into(), |f| format!("{:.1}%", f * 100.0)),
            if r.fits { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    print!("{}", t.render());
}

fn print_storm() {
    println!("(S2 example: 256 GB @ 0.5 GB/s > 8 min/server; storms multiply it)");
    let mut t = TextTable::new(
        "Recovery storms: back-end vs WSP local recovery (100-server tier)",
        &["Failed", "Back-end (min)", "WSP local (s)", "Speedup"],
    );
    for r in recovery_storm() {
        t.row(&[
            r.failed.to_string(),
            format!("{:.1}", r.backend_time.as_secs_f64() / 60.0),
            format!("{:.1}", r.wsp_time.as_secs_f64()),
            format!("{:.0}x", r.speedup()),
        ]);
    }
    print!("{}", t.render());
}

fn print_drills() {
    println!("(S4 device restart: only non-ACPI strategies fit the window)");
    let mut t = TextTable::new(
        "Power-failure drills by restart strategy (Intel testbed, busy)",
        &["Strategy", "Save fits", "Data preserved", "Local downtime (s)"],
    );
    for r in strategy_drills() {
        t.row(&[
            r.strategy.to_owned(),
            if r.save_completed { "yes" } else { "NO" }.to_owned(),
            if r.data_preserved { "yes" } else { "NO" }.to_owned(),
            r.local_downtime
                .map_or("- (back-end recovery)".into(), |d| {
                    format!("{:.1}", d.as_secs_f64())
                }),
        ]);
    }
    print!("{}", t.render());
}

fn print_ycsb() {
    println!("(extension: YCSB core mixes x heap configurations, simulated time/op)");
    let results = ycsb_matrix(&YcsbDriver::quick());
    let mut t = TextTable::new(
        "YCSB: time per op (us)",
        &["Mix", "FoC + STM", "FoC + UL", "FoF + STM", "FoF + UL", "FoF"],
    );
    for chunk in results.chunks(5) {
        let mut row = vec![chunk[0].mix.label().to_owned()];
        row.extend(
            chunk
                .iter()
                .map(|r| format!("{:.3}", r.time_per_op.as_nanos() as f64 / 1000.0)),
        );
        t.row(&row);
    }
    print!("{}", t.render());
}

fn print_tradeoff() {
    println!("(extension, paper S6 future work: added capacitance vs expected downtime)");
    let mut t = TextTable::new(
        "Capacitance trade-off (Intel + 750W, high window variance, 4 outages/yr)",
        &["Added F", "Cost ($)", "Window (ms)", "P(miss)", "Downtime/yr (s)"],
    );
    for p in capacitance_curve() {
        t.row(&[
            format!("{:.2}", p.added_capacitance.get()),
            format!("{:.2}", p.cost_usd),
            format!("{:.1}", p.effective_window.as_millis_f64()),
            format!("{:.2}", p.miss_probability),
            format!("{:.1}", p.expected_annual_downtime.as_secs_f64()),
        ]);
    }
    print!("{}", t.render());
}

fn print_hybrid() {
    println!("(extension, paper S6: hybrid DRAM+SCM page placement)");
    let mut t = TextTable::new(
        "Hybrid memory placement (32 GiB DRAM + 256 GiB SCM, 10%/90% hot set)",
        &["Policy", "Avg latency (ns)", "DRAM hit share"],
    );
    for (policy, latency, share) in hybrid_placement() {
        t.row(&[
            policy.label().to_owned(),
            format!("{}", latency.as_nanos()),
            format!("{:.0}%", share * 100.0),
        ]);
    }
    print!("{}", t.render());
}

fn print_fleet() {
    println!("(extension, paper S1 motivation: a simulated year of fleet power events)");
    let (backend, wsp) = fleet_year();
    let mut t = TextTable::new(
        "Fleet availability over one year (100 x 256 GiB servers)",
        &["Discipline", "Availability", "Server-downtime (h)", "Worst recovery"],
    );
    for (label, r) in [("back-end only", backend), ("WSP", wsp)] {
        t.row(&[
            label.to_owned(),
            format!("{:.5}%", r.availability * 100.0),
            format!("{:.1}", r.server_downtime.as_secs_f64() / 3600.0),
            format!("{:.1} min", r.worst_event_recovery.as_secs_f64() / 60.0),
        ]);
    }
    print!("{}", t.render());
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let which = args.iter().find(|a| !a.starts_with("--")).map_or("all", |s| s.as_str());
    let known = [
        "table1", "table2", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
        "feasibility", "recovery-storm", "drills", "ycsb", "tradeoff", "hybrid", "fleet",
        "all",
    ];
    if !known.contains(&which) {
        eprintln!("unknown experiment '{which}'; expected one of: {}", known.join(" "));
        return ExitCode::FAILURE;
    }
    let run = |name: &str| which == "all" || which == name;
    if run("table1") {
        print_table1(paper);
        println!();
    }
    if run("table2") {
        print_table2();
        println!();
    }
    if run("fig1") {
        print_fig1();
        println!();
    }
    if run("fig2") {
        print_fig2();
        println!();
    }
    if run("fig5") {
        print_fig5(paper);
        println!();
    }
    if run("fig6") {
        print_fig6();
        println!();
    }
    if run("fig7") {
        print_fig7();
        println!();
    }
    if run("fig8") {
        print_fig8();
        println!();
    }
    if run("fig9") {
        print_fig9();
        println!();
    }
    if run("feasibility") {
        print_feasibility();
        println!();
    }
    if run("recovery-storm") {
        print_storm();
        println!();
    }
    if run("drills") {
        print_drills();
        println!();
    }
    if run("ycsb") {
        print_ycsb();
        println!();
    }
    if run("tradeoff") {
        print_tradeoff();
        println!();
    }
    if run("hybrid") {
        print_hybrid();
        println!();
    }
    if run("fleet") {
        print_fleet();
    }
    ExitCode::SUCCESS
}
