//! `bench_pr10` — group-decided 2PC: batched decision records and
//! concurrent coordinators sharing the decision log.
//!
//! Measures what PR 10 buys on the coordinator path: sealing N buffered
//! commit decisions under a *single* fenced group record instead of N
//! fenced records (the decision-fence amortization), and overlapping
//! independent transactions across concurrent coordinators on the
//! simulated clock (only the slowest coordinator in a group pays
//! unrebated time). Emits machine-readable JSON; `BENCH_PR10.json` at
//! the repository root records the numbers.
//!
//! ```text
//! cargo run --release -p wsp-bench --features bench --bin bench_pr10 -- run
//! cargo run --release -p wsp-bench --features bench --bin bench_pr10 -- run --quick
//! cargo run --release -p wsp-bench --features bench --bin bench_pr10 -- check BENCH_PR10.json
//! ```
//!
//! * `run` sweeps the decision group size over both flush-on-commit
//!   configurations at 100 % cross-shard, then sweeps the coordinator
//!   count at the headline group size.
//! * `check` re-measures the two gate ratios and fails (exit 1) below
//!   their *hard floors*: group-32 sealing must keep at least 2.0x the
//!   group-1 coordinator-path throughput, and four coordinators must
//!   reach at least 1.8x the single-coordinator simulated wall clock.

use std::process::ExitCode;
use std::time::Instant;

use wsp_core::group_size_from_env;
use wsp_microbench::json::Json;
use wsp_pheap::HeapConfig;
use wsp_units::ByteSize;
use wsp_workloads::CrossShardKvBench;

/// Decision group sizes the sweep exercises (1 = one fenced decision
/// record per transfer, the PR 6 protocol).
const GROUPS: [usize; 4] = [1, 4, 8, 32];

/// Coordinator counts the concurrency sweep exercises.
const COORDS: [usize; 3] = [1, 2, 4];

/// Hard floor for the group-batching gate: group-32 sealing must keep
/// at least this multiple of the group-1 coordinator-path throughput.
const GROUP_FLOOR: f64 = 2.0;

/// Hard floor for the concurrency gate: four coordinators must beat
/// one by at least this multiple on the simulated wall clock.
const COORD_FLOOR: f64 = 1.8;

/// Best-of reps for host wall-clock numbers (simulated numbers are
/// deterministic and measured once).
const HOST_REPS: usize = 3;

/// The headline group size: `WSP_TXN_GROUP` overrides the default 32
/// (the gates below assume the default — re-gating at a tiny group is
/// an explicit opt-out).
fn headline_group() -> usize {
    group_size_from_env(32)
}

fn xs_bench(quick: bool, coordinators: usize, decision_group: usize) -> CrossShardKvBench {
    CrossShardKvBench {
        // Eight shards so four coordinators' two-participant transfers
        // can genuinely overlap (two txns can run concurrently on four
        // shards at best — the shards, not the pool, would be the
        // bottleneck).
        shards: 8,
        // A deep account pool keeps buffered write sets disjoint long
        // enough for real groups to form: conflicts drain the open
        // group early, so a shallow pool would re-serialize sealing.
        accounts_per_shard: 64,
        transfers: if quick { 200 } else { 1_000 },
        // Every transfer spans two shards: the full 2PC price.
        cross_shard_pct: 1.0,
        initial_balance: 10_000,
        region: ByteSize::mib(1),
        lose_shard: None,
        in_doubt_tail: false,
        coordinators,
        decision_group,
    }
}

/// One measured cell of the sweep.
struct Cell {
    /// Simulated ns spent on the shared decision log alone.
    coordinator_ns: f64,
    /// Transfers per simulated coordinator-path second.
    coord_txns_per_sec: f64,
    /// Simulated wall clock (slowest coordinator).
    wall_ns: f64,
    /// Fenced group records written.
    decision_groups: usize,
    /// Commits those records covered.
    committed: usize,
}

fn measure(quick: bool, config: HeapConfig, coordinators: usize, group: usize) -> Cell {
    let report = xs_bench(quick, coordinators, group)
        .run(config, 42)
        .expect("transfer run");
    assert!(report.balance_conserved, "{config}: balance must conserve");
    let coordinator_ns = report.coordinator_ns.as_secs_f64() * 1e9;
    Cell {
        coordinator_ns,
        coord_txns_per_sec: report.transfers as f64 / (coordinator_ns / 1e9).max(1e-12),
        wall_ns: report.wall.as_secs_f64() * 1e9,
        decision_groups: report.decision_groups,
        committed: report.committed,
    }
}

/// Host wall-clock transfers/sec for one cell (best of [`HOST_REPS`]).
fn host_txns_per_sec(quick: bool, config: HeapConfig, coordinators: usize, group: usize) -> f64 {
    let bench = xs_bench(quick, coordinators, group);
    (0..HOST_REPS)
        .map(|_| {
            let start = Instant::now();
            bench.run(config, 42).expect("transfer run");
            bench.transfers as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max)
}

/// Gate quantity 1: coordinator-path throughput multiple of the
/// headline group size over group 1, both on the pool path (two
/// coordinators) so only the group size differs.
fn gate_group_batching(quick: bool) -> f64 {
    let g1 = measure(quick, HeapConfig::FocUndo, 2, 1);
    let gn = measure(quick, HeapConfig::FocUndo, 2, headline_group());
    gn.coord_txns_per_sec / g1.coord_txns_per_sec
}

/// Gate quantity 2: simulated-wall-clock speedup of four coordinators
/// over one, at the headline group size.
fn gate_coordinator_speedup(quick: bool) -> f64 {
    let w1 = measure(quick, HeapConfig::FocUndo, 1, headline_group());
    let w4 = measure(quick, HeapConfig::FocUndo, 4, headline_group());
    w1.wall_ns / w4.wall_ns
}

fn measure_group_sweep(quick: bool) -> Json {
    let mut per_config = Vec::new();
    for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
        let mut rows = Vec::new();
        for group in GROUPS {
            let cell = measure(quick, config, 2, group);
            let host = host_txns_per_sec(quick, config, 2, group);
            eprintln!(
                "  group {:<9} size {group:>3}  {:>12.0} txn/s coord-path, {:>4} records for {:>4} commits, {host:>10.0} txn/s host",
                config.label(),
                cell.coord_txns_per_sec,
                cell.decision_groups,
                cell.committed,
            );
            rows.push(Json::object([
                ("decision_group", Json::from(group as u64)),
                ("sim_coordinator_ns", Json::from(cell.coordinator_ns)),
                ("coord_txns_per_sec", Json::from(cell.coord_txns_per_sec)),
                ("decision_records", Json::from(cell.decision_groups as u64)),
                ("committed", Json::from(cell.committed as u64)),
                ("host_txns_per_sec", Json::from(host)),
            ]));
        }
        per_config.push((config.label().to_owned(), Json::Arr(rows)));
    }
    let bench = xs_bench(quick, 2, 1);
    Json::object([
        ("shards", Json::from(bench.shards as u64)),
        ("transfers", Json::from(bench.transfers as u64)),
        ("accounts_per_shard", Json::from(bench.accounts_per_shard as u64)),
        ("coordinators", Json::from(2u64)),
        ("cross_shard_pct", Json::from(100u64)),
        ("seed", Json::from(42u64)),
        ("sweep", Json::Obj(per_config)),
    ])
}

fn measure_coordinator_sweep(quick: bool) -> Json {
    let group = headline_group();
    let base = measure(quick, HeapConfig::FocUndo, COORDS[0], group);
    let mut rows = Vec::new();
    for coordinators in COORDS {
        let cell = measure(quick, HeapConfig::FocUndo, coordinators, group);
        let speedup = base.wall_ns / cell.wall_ns;
        eprintln!(
            "  pool  {coordinators} coordinator(s)  wall {:>12.0} ns sim, speedup {speedup:.2}x",
            cell.wall_ns
        );
        rows.push(Json::object([
            ("coordinators", Json::from(coordinators as u64)),
            ("sim_wall_ns", Json::from(cell.wall_ns)),
            ("speedup_vs_one", Json::from(speedup)),
        ]));
    }
    Json::object([
        ("decision_group", Json::from(group as u64)),
        ("rows", Json::Arr(rows)),
    ])
}

fn run_suite(quick: bool) -> Json {
    eprintln!(
        "bench_pr10: running {} suite (headline group {})",
        if quick { "quick" } else { "full" },
        headline_group()
    );
    let group_sweep = measure_group_sweep(quick);
    let coordinator_sweep = measure_coordinator_sweep(quick);

    eprintln!("bench_pr10: measuring quick-mode gate quantities");
    let gate = Json::object([
        ("group_batching_speedup", Json::from(gate_group_batching(true))),
        ("group_batching_floor", Json::from(GROUP_FLOOR)),
        (
            "coordinator_speedup",
            Json::from(gate_coordinator_speedup(true)),
        ),
        ("coordinator_floor", Json::from(COORD_FLOOR)),
    ]);

    Json::object([
        ("schema", Json::from("wsp-bench-pr10/v1")),
        ("mode", Json::from(if quick { "quick" } else { "full" })),
        ("group_sweep", group_sweep),
        ("coordinator_sweep", coordinator_sweep),
        ("gate", gate),
        (
            "notes",
            Json::Arr(vec![
                Json::from(
                    "Group-decided commit buffers decided gtxids and seals them under one \
                     fenced GroupDecision record: N transactions pay one decision fence \
                     instead of N. coordinator_ns charges only the shared decision log, so \
                     the batching ratio isolates exactly the amortized fence.",
                ),
                Json::from(
                    "Transfers whose accounts collide with an open group drain it early to \
                     keep concurrently-prepared write sets disjoint (the undo flavour \
                     applies prepares in place), so recorded groups are shorter than the \
                     configured size; the gate ratio already includes that cost.",
                ),
                Json::from(
                    "Concurrent coordinators are modeled on the simulated clock: each owns \
                     a clock, shards and the shared log are resources with availability \
                     times, and the pool wall clock is the slowest coordinator. The \
                     speedup is bounded by shard contention (two participants per \
                     transfer), not by the shared decision log.",
                ),
                Json::from(
                    "WSP_TXN_GROUP overrides the headline group size for run and check; \
                     the recorded gates assume the default of 32.",
                ),
            ]),
        ),
    ])
}

/// The `check` subcommand: both gate ratios against their hard floors
/// (the recorded values are informational — the floors are absolute).
fn check_against(baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_pr10: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_pr10: {baseline_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(gate) = doc.get("gate") else {
        eprintln!("bench_pr10: {baseline_path} has no gate section");
        return ExitCode::FAILURE;
    };

    let mut failed = false;

    let recorded_batching = gate
        .get("group_batching_speedup")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let batching = gate_group_batching(true);
    let verdict = if batching >= GROUP_FLOOR { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate group-batching  current {batching:.2}x, recorded {recorded_batching:.2}x, hard floor {GROUP_FLOOR:.1}x  [{verdict}]"
    );
    if batching < GROUP_FLOOR {
        failed = true;
    }

    let recorded_speedup = gate
        .get("coordinator_speedup")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let speedup = gate_coordinator_speedup(true);
    let verdict = if speedup >= COORD_FLOOR { "ok" } else { "REGRESSED" };
    eprintln!(
        "  gate coordinators    current {speedup:.2}x, recorded {recorded_speedup:.2}x, hard floor {COORD_FLOOR:.1}x  [{verdict}]"
    );
    if speedup < COORD_FLOOR {
        failed = true;
    }

    if failed {
        eprintln!("bench_pr10: group-decided 2PC gate failed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_pr10: group-decided 2PC gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            print!("{}", run_suite(quick).to_string_pretty());
            ExitCode::SUCCESS
        }
        Some("check") => match args.get(1) {
            Some(path) => check_against(path),
            None => {
                eprintln!("usage: bench_pr10 check <BENCH_PR10.json>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: bench_pr10 run [--quick] | bench_pr10 check <baseline.json>");
            ExitCode::FAILURE
        }
    }
}
