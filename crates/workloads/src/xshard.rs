//! Cross-shard transactions over the sharded KV engine: a deterministic
//! bank-transfer workload driven through `wsp_core`'s two-phase-commit
//! coordinator, with the whole fleet crashed at the end and resolved
//! against the coordinator's durable decision log.
//!
//! Each shard holds a column of fixed-location account cells (one per
//! cache line, like the serving engine's records). A transfer debits an
//! account on one shard and credits an account on another — the
//! write-set spans two persistent heaps, so it must go through the
//! two-phase epoch seal: durable per-shard `PREPARED` records, a fenced
//! coordinator decision, then per-shard commit markers. The workload
//! checks the invariant that matters for a bank: the sum of all
//! balances is conserved by every schedule, crash included.
//!
//! Losing a shard's NVRAM image mid-run exercises the PR 3 recovery
//! ladder fleet-wide: the lost shard comes back as a typed
//! [`WspError::BackendRecoveryRequired`] refusal with quantified
//! staleness, while the survivors still apply every decided outcome.

use std::collections::HashSet;

use wsp_cluster::ClusterSpec;
use wsp_core::{
    resolve_cross_shard, CoordinatorPool, LadderRung, RecoveryOutcome, SubmitOutcome,
    TxnCoordinator, TxnOutcome, WspError,
};
use wsp_det::{DetRng, Rng};
use wsp_obs as obs;
use wsp_pheap::{HeapConfig, HeapError, PersistentHeap, PmPtr};
use wsp_units::{ByteSize, Nanos};

/// A deterministic cross-shard transfer workload over per-shard
/// persistent heaps, committed through the 2PC coordinator.
///
/// # Examples
///
/// ```
/// use wsp_pheap::HeapConfig;
/// use wsp_workloads::CrossShardKvBench;
///
/// let report = CrossShardKvBench::quick(3).run(HeapConfig::FocUndo, 42)?;
/// assert!(report.committed > 0);
/// assert!(report.balance_conserved);
/// # Ok::<(), wsp_pheap::HeapError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossShardKvBench {
    /// Participant shards (per-shard heaps).
    pub shards: usize,
    /// Account cells per shard, each on its own cache line.
    pub accounts_per_shard: usize,
    /// Transfers issued through the coordinator.
    pub transfers: usize,
    /// Fraction of transfers whose debit and credit live on different
    /// shards (the rest stay on one shard but still run the protocol).
    pub cross_shard_pct: f64,
    /// Starting balance of every account.
    pub initial_balance: u64,
    /// Heap region size per shard.
    pub region: ByteSize,
    /// Crash the fleet with this shard's NVRAM image lost outright,
    /// exercising the degraded rung of the recovery ladder.
    pub lose_shard: Option<usize>,
    /// Leave the final transfer in doubt (prepared everywhere, decision
    /// durable, no commit marker) when the fleet crashes: recovery must
    /// resolve it to commit from the coordinator log.
    pub in_doubt_tail: bool,
    /// Concurrent coordinators sharing one decision log. `1` with
    /// `decision_group == 1` runs the classic single-coordinator path,
    /// bitwise identical to earlier revisions; anything else drives the
    /// transfers through a [`CoordinatorPool`].
    pub coordinators: usize,
    /// Decisions buffered per fenced group record in pool mode (the
    /// `WSP_TXN_GROUP` knob): N transfers share one decision fence.
    pub decision_group: usize,
}

impl CrossShardKvBench {
    /// Standard scale: 16 accounts per shard, 400 transfers, 60 %
    /// cross-shard, an in-doubt tail transfer.
    #[must_use]
    pub fn standard(shards: usize) -> Self {
        CrossShardKvBench {
            shards,
            accounts_per_shard: 16,
            transfers: 400,
            cross_shard_pct: 0.6,
            initial_balance: 20,
            region: ByteSize::kib(512),
            lose_shard: None,
            in_doubt_tail: true,
            coordinators: 1,
            decision_group: 1,
        }
    }

    /// Scaled down for tests and doc examples.
    #[must_use]
    pub fn quick(shards: usize) -> Self {
        CrossShardKvBench {
            shards,
            accounts_per_shard: 4,
            transfers: 40,
            cross_shard_pct: 0.6,
            initial_balance: 20,
            region: ByteSize::kib(256),
            lose_shard: None,
            in_doubt_tail: true,
            coordinators: 1,
            decision_group: 1,
        }
    }

    /// Runs the workload: seeds the fleet, drives every transfer
    /// through the two-phase seal, crashes all shards (and the
    /// coordinator) at once, resolves the wreckage against the decision
    /// log, and audits every surviving balance against the model.
    ///
    /// # Errors
    ///
    /// Propagates heap failures from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards < 2`, if `lose_shard` is out of range, if the
    /// pool parameters are zero (or `coordinators > 256`), or if
    /// recovery violates the all-or-nothing contract.
    pub fn run(&self, config: HeapConfig, seed: u64) -> Result<CrossShardKvReport, HeapError> {
        assert!(self.shards >= 2, "cross-shard transfers need two shards");
        assert!(
            (1..=256).contains(&self.coordinators),
            "coordinators must fit the gtxid layout"
        );
        assert!(self.decision_group >= 1, "decision group must be at least 1");
        if let Some(s) = self.lose_shard {
            assert!(s < self.shards, "lose_shard out of range");
        }
        let pooled = self.coordinators > 1 || self.decision_group > 1;
        let (report, capture) = obs::capture(|| {
            if pooled {
                self.run_pool_inner(config, seed)
            } else {
                self.run_inner(config, seed)
            }
        });
        let mut report = report?;
        report.trace = capture.trace;
        report.metrics = capture.metrics;
        Ok(report)
    }

    #[allow(clippy::too_many_lines)]
    fn run_inner(&self, config: HeapConfig, seed: u64) -> Result<CrossShardKvReport, HeapError> {
        let mut rng = DetRng::seed_from_u64(seed);

        // Seed the fleet: one heap per shard, accounts on distinct
        // cache lines, everything sealed before the measured phase.
        let mut heaps: Vec<PersistentHeap> = Vec::with_capacity(self.shards);
        let mut accounts: Vec<Vec<PmPtr>> = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let mut heap = PersistentHeap::create(self.region, config);
            let mut tx = heap.begin();
            let base = tx.alloc(self.accounts_per_shard as u64 * 64)?;
            let mut cells = Vec::with_capacity(self.accounts_per_shard);
            for i in 0..self.accounts_per_shard {
                let p = base.byte_offset(i as u64 * 64);
                tx.write_word(p, self.initial_balance)?;
                cells.push(p);
            }
            tx.set_root(base)?;
            tx.commit()?;
            heap.seal_epoch();
            heaps.push(heap);
            accounts.push(cells);
        }
        // The volatile mirror the audit checks against.
        let mut model: Vec<Vec<u64>> =
            vec![vec![self.initial_balance; self.accounts_per_shard]; self.shards];
        let total_balance =
            self.initial_balance * (self.shards * self.accounts_per_shard) as u64;

        let mut coordinator = TxnCoordinator::new();
        let clock = |coordinator: &TxnCoordinator, heaps: &[PersistentHeap]| {
            heaps
                .iter()
                .fold(coordinator.elapsed(), |acc, h| acc + h.elapsed())
        };
        let t0 = clock(&coordinator, &heaps);
        let c0 = coordinator.elapsed();

        let mut outcomes: Vec<TransferOutcome> = Vec::with_capacity(self.transfers);
        let mut in_doubt_gtxid: Option<u64> = None;
        for t in 0..self.transfers {
            let src_shard = rng.gen_range(0..self.shards);
            let cross = rng.gen::<f64>() < self.cross_shard_pct;
            let dst_shard = if cross {
                // A different shard, chosen uniformly among the others.
                let d = rng.gen_range(0..self.shards - 1);
                if d >= src_shard { d + 1 } else { d }
            } else {
                src_shard
            };
            let src_acct = rng.gen_range(0..self.accounts_per_shard);
            let dst_acct = if dst_shard == src_shard {
                // A different account on the same shard.
                let d = rng.gen_range(0..self.accounts_per_shard - 1);
                if d >= src_acct { d + 1 } else { d }
            } else {
                rng.gen_range(0..self.accounts_per_shard)
            };
            let amount = rng.gen_range(1..16u64);

            let transfer = Transfer {
                txn: t,
                src: (src_shard, src_acct),
                dst: (dst_shard, dst_acct),
                amount,
                cross_shard: dst_shard != src_shard,
            };

            // Application-level admission check: an overdraft aborts
            // before anything touches NVRAM.
            if model[src_shard][src_acct] < amount {
                outcomes.push(TransferOutcome {
                    transfer,
                    outcome: TxnOutcome::Aborted {
                        reason: format!(
                            "insufficient funds: balance {} < amount {amount}",
                            model[src_shard][src_acct]
                        ),
                    },
                    resolved_in_doubt: false,
                });
                continue;
            }

            let mut txn = coordinator.begin(self.shards);
            txn.stage(
                src_shard,
                accounts[src_shard][src_acct].offset(),
                model[src_shard][src_acct] - amount,
            );
            let credited = model[dst_shard][dst_acct] + amount;
            txn.stage(dst_shard, accounts[dst_shard][dst_acct].offset(), credited);

            let last = t + 1 == self.transfers;
            if last && self.in_doubt_tail && config.flush_on_commit() {
                // Drive the final transfer to the canonical in-doubt
                // point: prepared on every participant, decision
                // durable, no commit marker anywhere.
                for &shard in &txn.participants() {
                    coordinator.prepare_shard(&mut heaps[shard], shard, &txn)?;
                }
                coordinator.record_decision(&txn);
                in_doubt_gtxid = Some(txn.gtxid());
                model[src_shard][src_acct] -= amount;
                model[dst_shard][dst_acct] = credited;
                outcomes.push(TransferOutcome {
                    transfer,
                    outcome: TxnOutcome::Committed,
                    resolved_in_doubt: true,
                });
                continue;
            }

            let outcome = coordinator.commit(&mut heaps, &txn)?;
            if matches!(outcome, TxnOutcome::Committed) {
                model[src_shard][src_acct] -= amount;
                model[dst_shard][dst_acct] = credited;
            }
            outcomes.push(TransferOutcome {
                transfer,
                outcome,
                resolved_in_doubt: false,
            });
        }
        let elapsed = clock(&coordinator, &heaps) - t0;
        let coordinator_ns = coordinator.elapsed() - c0;

        // Power fails everywhere at once; the lost shard (if any)
        // never produces an image.
        let coordinator_image = coordinator.crash_image();
        let images = heaps
            .into_iter()
            .enumerate()
            .map(|(shard, heap)| {
                if self.lose_shard == Some(shard) {
                    None
                } else {
                    // FoC shards recover from their logs alone; FoF
                    // shards get the whole-system save they rely on.
                    Some(heap.crash(!config.flush_on_commit()))
                }
            })
            .collect();
        let cluster = ClusterSpec::memcache_tier(self.shards.max(2));
        let recovery = resolve_cross_shard(&coordinator_image, images, &cluster);
        if let Some(gtxid) = in_doubt_gtxid {
            assert!(
                recovery.decided.contains(&gtxid),
                "the in-doubt tail transfer has a durable decision"
            );
        }

        // Audit every surviving shard cell-by-cell against the model.
        let mut degraded = None;
        let mut audited = HashSet::new();
        for mut shard_rec in recovery.shards {
            let shard = shard_rec.shard;
            if self.lose_shard == Some(shard) {
                let (reason, staleness) = match &shard_rec.outcome {
                    RecoveryOutcome::Degraded { rung, reason, took } => {
                        assert_eq!(*rung, LadderRung::ClusterRebuild);
                        (reason.clone(), *took)
                    }
                    other => panic!("lost shard {shard} must degrade, got {other:?}"),
                };
                let kind = match shard_rec.refusal {
                    Some(e @ WspError::BackendRecoveryRequired { .. }) => e.kind(),
                    other => panic!("lost shard {shard} needs a typed refusal, got {other:?}"),
                };
                degraded = Some(DegradedShard {
                    shard,
                    kind,
                    reason,
                    staleness,
                });
                continue;
            }
            let heap = shard_rec
                .heap
                .as_mut()
                .unwrap_or_else(|| panic!("shard {shard} must recover locally"));
            let mut check = heap.begin();
            for (acct, &cell) in accounts[shard].iter().enumerate() {
                let got = check.read_word(cell)?;
                assert_eq!(
                    got, model[shard][acct],
                    "shard {shard} account {acct} diverged after recovery"
                );
            }
            check.commit()?;
            audited.insert(shard);
        }

        let committed = outcomes
            .iter()
            .filter(|o| matches!(o.outcome, TxnOutcome::Committed))
            .count();
        let aborted = outcomes.len() - committed;
        let cross_shard = outcomes.iter().filter(|o| o.transfer.cross_shard).count();
        let model_total: u64 = model.iter().flatten().sum();

        Ok(CrossShardKvReport {
            config,
            shards: self.shards,
            transfers: self.transfers,
            cross_shard,
            committed,
            aborted,
            resolved_in_doubt: in_doubt_gtxid.is_some(),
            balance_conserved: model_total == total_balance,
            shards_audited: audited.len(),
            txns_per_sec: self.transfers as f64 / elapsed.as_secs_f64().max(1e-12),
            elapsed,
            // One fenced decision record per committed transfer: the
            // classic path has no batching to report.
            decision_groups: committed,
            wall: elapsed,
            coordinator_ns,
            degraded,
            outcomes,
            trace: obs::Trace::default(),
            metrics: obs::MetricsSnapshot::default(),
        })
    }

    /// The pool-mode measured phase: transfers round-robin across
    /// `coordinators`, decisions buffered and sealed in groups of
    /// `decision_group` under one fence each. Accounts referenced by a
    /// buffered-but-unsettled decision are locked — the undo flavour
    /// applies prepared writes in place, so a new transfer touching one
    /// drains the pool first, keeping concurrently-prepared write sets
    /// pairwise disjoint.
    #[allow(clippy::too_many_lines)]
    fn run_pool_inner(&self, config: HeapConfig, seed: u64) -> Result<CrossShardKvReport, HeapError> {
        let mut rng = DetRng::seed_from_u64(seed);

        // Seed the fleet exactly like the classic path.
        let mut heaps: Vec<PersistentHeap> = Vec::with_capacity(self.shards);
        let mut accounts: Vec<Vec<PmPtr>> = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let mut heap = PersistentHeap::create(self.region, config);
            let mut tx = heap.begin();
            let base = tx.alloc(self.accounts_per_shard as u64 * 64)?;
            let mut cells = Vec::with_capacity(self.accounts_per_shard);
            for i in 0..self.accounts_per_shard {
                let p = base.byte_offset(i as u64 * 64);
                tx.write_word(p, self.initial_balance)?;
                cells.push(p);
            }
            tx.set_root(base)?;
            tx.commit()?;
            heap.seal_epoch();
            heaps.push(heap);
            accounts.push(cells);
        }
        let mut model: Vec<Vec<u64>> =
            vec![vec![self.initial_balance; self.accounts_per_shard]; self.shards];
        let total_balance =
            self.initial_balance * (self.shards * self.accounts_per_shard) as u64;

        let mut pool = CoordinatorPool::new(self.coordinators, self.decision_group);
        let clock = |pool: &CoordinatorPool, heaps: &[PersistentHeap]| {
            heaps.iter().fold(pool.elapsed(), |acc, h| acc + h.elapsed())
        };
        let t0 = clock(&pool, &heaps);
        let c0 = pool.elapsed();

        let mut outcomes: Vec<TransferOutcome> = Vec::with_capacity(self.transfers);
        let mut in_doubt_gtxid: Option<u64> = None;
        let mut decision_groups = 0usize;
        // Accounts referenced by a buffered (decided-but-unsealed)
        // transfer.
        let mut open: HashSet<(usize, usize)> = HashSet::new();
        for t in 0..self.transfers {
            let src_shard = rng.gen_range(0..self.shards);
            let cross = rng.gen::<f64>() < self.cross_shard_pct;
            let dst_shard = if cross {
                let d = rng.gen_range(0..self.shards - 1);
                if d >= src_shard { d + 1 } else { d }
            } else {
                src_shard
            };
            let src_acct = rng.gen_range(0..self.accounts_per_shard);
            let dst_acct = if dst_shard == src_shard {
                let d = rng.gen_range(0..self.accounts_per_shard - 1);
                if d >= src_acct { d + 1 } else { d }
            } else {
                rng.gen_range(0..self.accounts_per_shard)
            };
            let amount = rng.gen_range(1..16u64);

            let transfer = Transfer {
                txn: t,
                src: (src_shard, src_acct),
                dst: (dst_shard, dst_acct),
                amount,
                cross_shard: dst_shard != src_shard,
            };
            let coordinator = t % self.coordinators;

            if model[src_shard][src_acct] < amount {
                outcomes.push(TransferOutcome {
                    transfer,
                    outcome: TxnOutcome::Aborted {
                        reason: format!(
                            "insufficient funds: balance {} < amount {amount}",
                            model[src_shard][src_acct]
                        ),
                    },
                    resolved_in_doubt: false,
                });
                continue;
            }

            // Account conflict with an open group: flush the group
            // early so the write sets stay disjoint.
            if open.contains(&transfer.src) || open.contains(&transfer.dst) {
                if pool.drain(coordinator, &mut heaps)? > 0 {
                    decision_groups += 1;
                }
                open.clear();
            }

            let mut txn = pool.begin(coordinator, self.shards);
            txn.stage(
                src_shard,
                accounts[src_shard][src_acct].offset(),
                model[src_shard][src_acct] - amount,
            );
            let credited = model[dst_shard][dst_acct] + amount;
            txn.stage(dst_shard, accounts[dst_shard][dst_acct].offset(), credited);

            let last = t + 1 == self.transfers;
            if last && self.in_doubt_tail && config.flush_on_commit() {
                // Seal the whole open group (tail included) but run no
                // phase 2: every member crashes in doubt and recovery
                // must commit them all from the shared log.
                let refusal = pool.prepare(coordinator, &mut heaps, &txn)?;
                assert!(refusal.is_none(), "disjoint write sets cannot refuse");
                pool.buffer_decision(coordinator, &txn);
                pool.seal_decisions(coordinator);
                decision_groups += 1;
                in_doubt_gtxid = Some(txn.gtxid());
                model[src_shard][src_acct] -= amount;
                model[dst_shard][dst_acct] = credited;
                outcomes.push(TransferOutcome {
                    transfer,
                    outcome: TxnOutcome::Committed,
                    resolved_in_doubt: true,
                });
                continue;
            }

            match pool.submit(coordinator, &mut heaps, &txn)? {
                SubmitOutcome::Buffered => {
                    // The decision is buffered, not yet durable — but
                    // every group is drained before the final crash, so
                    // it will commit. Lock its accounts until then.
                    open.insert(transfer.src);
                    open.insert(transfer.dst);
                    model[src_shard][src_acct] -= amount;
                    model[dst_shard][dst_acct] = credited;
                    outcomes.push(TransferOutcome {
                        transfer,
                        outcome: TxnOutcome::Committed,
                        resolved_in_doubt: false,
                    });
                }
                SubmitOutcome::Committed { .. } => {
                    decision_groups += 1;
                    open.clear();
                    model[src_shard][src_acct] -= amount;
                    model[dst_shard][dst_acct] = credited;
                    outcomes.push(TransferOutcome {
                        transfer,
                        outcome: TxnOutcome::Committed,
                        resolved_in_doubt: false,
                    });
                }
                SubmitOutcome::Aborted { reason } => {
                    outcomes.push(TransferOutcome {
                        transfer,
                        outcome: TxnOutcome::Aborted { reason },
                        resolved_in_doubt: false,
                    });
                }
            }
        }
        // End-of-run flush of any open group (unless the in-doubt tail
        // already sealed it).
        if in_doubt_gtxid.is_none() && pool.drain(0, &mut heaps)? > 0 {
            decision_groups += 1;
        }
        let elapsed = clock(&pool, &heaps) - t0;
        let coordinator_ns = pool.elapsed() - c0;
        let wall = pool.wall();

        let coordinator_image = pool.crash_image();
        let images = heaps
            .into_iter()
            .enumerate()
            .map(|(shard, heap)| {
                if self.lose_shard == Some(shard) {
                    None
                } else {
                    Some(heap.crash(!config.flush_on_commit()))
                }
            })
            .collect();
        let cluster = ClusterSpec::memcache_tier(self.shards.max(2));
        let recovery = resolve_cross_shard(&coordinator_image, images, &cluster);
        if let Some(gtxid) = in_doubt_gtxid {
            assert!(
                recovery.decided.contains(&gtxid),
                "the in-doubt tail transfer has a durable decision"
            );
        }

        let mut degraded = None;
        let mut audited = HashSet::new();
        for mut shard_rec in recovery.shards {
            let shard = shard_rec.shard;
            if self.lose_shard == Some(shard) {
                let (reason, staleness) = match &shard_rec.outcome {
                    RecoveryOutcome::Degraded { rung, reason, took } => {
                        assert_eq!(*rung, LadderRung::ClusterRebuild);
                        (reason.clone(), *took)
                    }
                    other => panic!("lost shard {shard} must degrade, got {other:?}"),
                };
                let kind = match shard_rec.refusal {
                    Some(e @ WspError::BackendRecoveryRequired { .. }) => e.kind(),
                    other => panic!("lost shard {shard} needs a typed refusal, got {other:?}"),
                };
                degraded = Some(DegradedShard {
                    shard,
                    kind,
                    reason,
                    staleness,
                });
                continue;
            }
            let heap = shard_rec
                .heap
                .as_mut()
                .unwrap_or_else(|| panic!("shard {shard} must recover locally"));
            let mut check = heap.begin();
            for (acct, &cell) in accounts[shard].iter().enumerate() {
                let got = check.read_word(cell)?;
                assert_eq!(
                    got, model[shard][acct],
                    "shard {shard} account {acct} diverged after recovery"
                );
            }
            check.commit()?;
            audited.insert(shard);
        }

        let committed = outcomes
            .iter()
            .filter(|o| matches!(o.outcome, TxnOutcome::Committed))
            .count();
        let aborted = outcomes.len() - committed;
        let cross_shard = outcomes.iter().filter(|o| o.transfer.cross_shard).count();
        let model_total: u64 = model.iter().flatten().sum();

        Ok(CrossShardKvReport {
            config,
            shards: self.shards,
            transfers: self.transfers,
            cross_shard,
            committed,
            aborted,
            resolved_in_doubt: in_doubt_gtxid.is_some(),
            balance_conserved: model_total == total_balance,
            shards_audited: audited.len(),
            txns_per_sec: self.transfers as f64 / elapsed.as_secs_f64().max(1e-12),
            elapsed,
            decision_groups,
            wall,
            coordinator_ns,
            degraded,
            outcomes,
            trace: obs::Trace::default(),
            metrics: obs::MetricsSnapshot::default(),
        })
    }
}

/// One scripted transfer: debit `src`, credit `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Index in issue order.
    pub txn: usize,
    /// Debited `(shard, account)`.
    pub src: (usize, usize),
    /// Credited `(shard, account)`.
    pub dst: (usize, usize),
    /// Amount moved.
    pub amount: u64,
    /// True when debit and credit live on different shards.
    pub cross_shard: bool,
}

/// The fate of one transfer, including how the final crash resolved it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferOutcome {
    /// The transfer that was attempted.
    pub transfer: Transfer,
    /// Committed everywhere or aborted everywhere — 2PC admits nothing
    /// in between.
    pub outcome: TxnOutcome,
    /// True when the transfer was left prepared-but-unmarked at the
    /// crash and recovery resolved it to commit from the decision log.
    pub resolved_in_doubt: bool,
}

/// The typed verdict for a shard whose NVRAM image was lost mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedShard {
    /// The lost shard.
    pub shard: usize,
    /// Stable error-kind label of the refusal
    /// (`backend-recovery-required`).
    pub kind: &'static str,
    /// The human-readable refusal, including the staleness quote.
    pub reason: String,
    /// Quantified staleness: how long the cluster rebuild streams from
    /// the back end while peers serve stale reads.
    pub staleness: Nanos,
}

/// The merged result of one cross-shard transfer run.
#[derive(Debug, Clone)]
pub struct CrossShardKvReport {
    /// Heap configuration every shard ran.
    pub config: HeapConfig,
    /// Participant shards.
    pub shards: usize,
    /// Transfers issued.
    pub transfers: usize,
    /// Transfers that spanned two shards.
    pub cross_shard: usize,
    /// Transfers that committed everywhere.
    pub committed: usize,
    /// Transfers that aborted everywhere (overdrafts, refusals).
    pub aborted: usize,
    /// True when the final transfer crashed in doubt and recovery
    /// committed it from the decision log.
    pub resolved_in_doubt: bool,
    /// True when the post-recovery audit conserved the total balance.
    pub balance_conserved: bool,
    /// Shards audited cell-by-cell after recovery.
    pub shards_audited: usize,
    /// Simulated transfer throughput through the two-phase seal.
    pub txns_per_sec: f64,
    /// Simulated time of the measured phase (coordinator + all shards).
    pub elapsed: Nanos,
    /// Fenced decision records written: in pool mode one per sealed
    /// group (the batching win), in classic mode one per commit.
    pub decision_groups: usize,
    /// Pool-mode wall clock (slowest coordinator); equals `elapsed` on
    /// the serial classic path.
    pub wall: Nanos,
    /// Simulated time spent on the shared decision log alone — the
    /// coordinator-path cost that group sealing amortizes.
    pub coordinator_ns: Nanos,
    /// The lost shard's typed verdict, when `lose_shard` was set.
    pub degraded: Option<DegradedShard>,
    /// Per-transfer outcomes, in issue order.
    pub outcomes: Vec<TransferOutcome>,
    /// The run's trace (setup, transfers, crash resolution).
    pub trace: obs::Trace,
    /// The run's metrics.
    pub metrics: obs::MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_conserve_the_total_balance() {
        for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
            let report = CrossShardKvBench::quick(3).run(config, 42).unwrap();
            assert!(report.balance_conserved, "{config}");
            assert!(report.committed > 0, "{config}");
            assert!(report.cross_shard > 0, "{config}");
            assert!(report.resolved_in_doubt, "{config}");
            assert_eq!(report.shards_audited, 3, "{config}");
            assert!(report.txns_per_sec > 0.0, "{config}");
        }
    }

    #[test]
    fn same_seed_is_bitwise_identical() {
        let bench = CrossShardKvBench::quick(3);
        let a = bench.run(HeapConfig::FocUndo, 7).unwrap();
        let b = bench.run(HeapConfig::FocUndo, 7).unwrap();
        assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
        assert_eq!(a.txns_per_sec.to_bits(), b.txns_per_sec.to_bits());
        if let Err(report) = obs::diff_traces(&a.trace, &b.trace, obs::DiffMode::Full) {
            panic!("same-seed cross-shard traces diverge:\n{report}");
        }
        if let Some(diff) = a.metrics.first_difference(&b.metrics) {
            panic!("same-seed cross-shard metrics diverge: {diff}");
        }
    }

    #[test]
    fn overdrafts_abort_everywhere() {
        // Tiny balances force application-level aborts; the audit still
        // conserves the total.
        let bench = CrossShardKvBench {
            initial_balance: 3,
            ..CrossShardKvBench::quick(3)
        };
        let report = bench.run(HeapConfig::FocUndo, 11).unwrap();
        assert!(report.aborted > 0);
        assert!(report.balance_conserved);
    }

    #[test]
    fn losing_a_shard_degrades_with_quantified_staleness() {
        let bench = CrossShardKvBench {
            lose_shard: Some(1),
            ..CrossShardKvBench::quick(3)
        };
        let report = bench.run(HeapConfig::FocUndo, 42).unwrap();
        let degraded = report.degraded.expect("lost shard is reported");
        assert_eq!(degraded.shard, 1);
        assert_eq!(degraded.kind, "backend-recovery-required");
        assert!(degraded.staleness > Nanos::ZERO);
        assert!(degraded.reason.contains("rebuild"));
        // The survivors still audit clean.
        assert_eq!(report.shards_audited, 2);
    }

    #[test]
    fn pool_mode_batches_decisions_and_conserves_balance() {
        for config in [HeapConfig::FocUndo, HeapConfig::FocStm] {
            let bench = CrossShardKvBench {
                coordinators: 2,
                decision_group: 8,
                accounts_per_shard: 16,
                ..CrossShardKvBench::quick(3)
            };
            let report = bench.run(config, 42).unwrap();
            assert!(report.balance_conserved, "{config}");
            assert!(report.committed > 0, "{config}");
            assert!(report.resolved_in_doubt, "{config}");
            assert_eq!(report.shards_audited, 3, "{config}");
            // Batching: far fewer fenced decision records than commits.
            assert!(
                report.decision_groups < report.committed,
                "{config}: {} groups for {} commits",
                report.decision_groups,
                report.committed
            );
            // Concurrent coordinators overlap: the wall clock undercuts
            // the serial sum of simulated time.
            assert!(report.wall <= report.elapsed, "{config}");
        }
    }

    #[test]
    fn pool_mode_same_seed_is_bitwise_identical() {
        let bench = CrossShardKvBench {
            coordinators: 4,
            decision_group: 4,
            accounts_per_shard: 16,
            ..CrossShardKvBench::quick(3)
        };
        let a = bench.run(HeapConfig::FocUndo, 7).unwrap();
        let b = bench.run(HeapConfig::FocUndo, 7).unwrap();
        assert_eq!(format!("{:?}", a.outcomes), format!("{:?}", b.outcomes));
        assert_eq!(a.decision_groups, b.decision_groups);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.txns_per_sec.to_bits(), b.txns_per_sec.to_bits());
        if let Err(report) = obs::diff_traces(&a.trace, &b.trace, obs::DiffMode::Full) {
            panic!("same-seed pool traces diverge:\n{report}");
        }
        if let Some(diff) = a.metrics.first_difference(&b.metrics) {
            panic!("same-seed pool metrics diverge: {diff}");
        }
    }

    #[test]
    fn group_size_one_pool_writes_one_record_per_commit() {
        let bench = CrossShardKvBench {
            coordinators: 2,
            decision_group: 1,
            ..CrossShardKvBench::quick(3)
        };
        let report = bench.run(HeapConfig::FocUndo, 9).unwrap();
        assert!(report.balance_conserved);
        assert_eq!(report.decision_groups, report.committed);
    }

    #[test]
    fn grouping_cuts_coordinator_path_time() {
        let grouped = CrossShardKvBench {
            decision_group: 16,
            accounts_per_shard: 32,
            transfers: 120,
            ..CrossShardKvBench::quick(3)
        };
        let classic = CrossShardKvBench {
            decision_group: 1,
            coordinators: 2, // stay on the pool path for a fair clock
            ..grouped
        };
        let g = grouped.run(HeapConfig::FocUndo, 21).unwrap();
        let c = classic.run(HeapConfig::FocUndo, 21).unwrap();
        assert!(
            g.coordinator_ns < c.coordinator_ns,
            "grouped {:?} vs per-commit {:?}",
            g.coordinator_ns,
            c.coordinator_ns
        );
    }

    #[test]
    fn fof_shards_refuse_every_transfer() {
        // Flush-on-fail shards cannot make a PREPARED record durable
        // ahead of the decision, so every transfer aborts (typed), and
        // nothing ever moves.
        let bench = CrossShardKvBench {
            in_doubt_tail: false,
            ..CrossShardKvBench::quick(2)
        };
        let report = bench.run(HeapConfig::Fof, 5).unwrap();
        assert_eq!(report.committed, 0);
        assert_eq!(report.aborted, report.transfers);
        assert!(report.balance_conserved);
    }
}
