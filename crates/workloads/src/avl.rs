//! A persistent AVL tree over the transactional heap — the store the
//! paper drops into OpenLDAP in place of Berkeley DB for the Table 1
//! experiment.

use wsp_pheap::{HeapError, PersistentHeap, PmPtr, Tx};

/// Descriptor field indices: `[root, count]`.
const D_ROOT: u64 = 0;
const D_COUNT: u64 = 1;

/// Node field indices: `[key, value, left, right, height]`.
const N_KEY: u64 = 0;
const N_VALUE: u64 = 1;
const N_LEFT: u64 = 2;
const N_RIGHT: u64 = 3;
const N_HEIGHT: u64 = 4;
const NODE_BYTES: u64 = 40;

fn height(tx: &mut Tx<'_>, node: u64) -> Result<u64, HeapError> {
    match PmPtr::new(node) {
        Some(p) => tx.read_word(p.field(N_HEIGHT)),
        None => Ok(0),
    }
}

fn update_height(tx: &mut Tx<'_>, node: PmPtr) -> Result<(), HeapError> {
    let left = tx.read_word(node.field(N_LEFT))?;
    let right = tx.read_word(node.field(N_RIGHT))?;
    let l = height(tx, left)?;
    let r = height(tx, right)?;
    tx.write_word(node.field(N_HEIGHT), 1 + l.max(r))
}

fn balance(tx: &mut Tx<'_>, node: PmPtr) -> Result<i64, HeapError> {
    let left = tx.read_word(node.field(N_LEFT))?;
    let right = tx.read_word(node.field(N_RIGHT))?;
    let l = height(tx, left)? as i64;
    let r = height(tx, right)? as i64;
    Ok(l - r)
}

/// Left rotation around `node`; returns the new subtree root offset.
fn rotate_left(tx: &mut Tx<'_>, node: PmPtr) -> Result<u64, HeapError> {
    let pivot = PmPtr::new(tx.read_word(node.field(N_RIGHT))?)
        .expect("rotate_left requires a right child");
    let inner = tx.read_word(pivot.field(N_LEFT))?;
    tx.write_word(node.field(N_RIGHT), inner)?;
    tx.write_word(pivot.field(N_LEFT), node.offset())?;
    update_height(tx, node)?;
    update_height(tx, pivot)?;
    Ok(pivot.offset())
}

/// Right rotation around `node`; returns the new subtree root offset.
fn rotate_right(tx: &mut Tx<'_>, node: PmPtr) -> Result<u64, HeapError> {
    let pivot = PmPtr::new(tx.read_word(node.field(N_LEFT))?)
        .expect("rotate_right requires a left child");
    let inner = tx.read_word(pivot.field(N_RIGHT))?;
    tx.write_word(node.field(N_LEFT), inner)?;
    tx.write_word(pivot.field(N_RIGHT), node.offset())?;
    update_height(tx, node)?;
    update_height(tx, pivot)?;
    Ok(pivot.offset())
}

/// Restores the AVL invariant at `node`; returns the subtree root.
fn rebalance(tx: &mut Tx<'_>, node: PmPtr) -> Result<u64, HeapError> {
    update_height(tx, node)?;
    let bf = balance(tx, node)?;
    if bf > 1 {
        let left = PmPtr::new(tx.read_word(node.field(N_LEFT))?).expect("bf>1 has left");
        if balance(tx, left)? < 0 {
            let new_left = rotate_left(tx, left)?;
            tx.write_word(node.field(N_LEFT), new_left)?;
        }
        return rotate_right(tx, node);
    }
    if bf < -1 {
        let right = PmPtr::new(tx.read_word(node.field(N_RIGHT))?).expect("bf<-1 has right");
        if balance(tx, right)? > 0 {
            let new_right = rotate_right(tx, right)?;
            tx.write_word(node.field(N_RIGHT), new_right)?;
        }
        return rotate_left(tx, node);
    }
    Ok(node.offset())
}

fn insert_rec(
    tx: &mut Tx<'_>,
    node: u64,
    key: u64,
    value: u64,
    replaced: &mut Option<u64>,
) -> Result<u64, HeapError> {
    let Some(p) = PmPtr::new(node) else {
        let fresh = tx.alloc(NODE_BYTES)?;
        tx.write_word(fresh.field(N_KEY), key)?;
        tx.write_word(fresh.field(N_VALUE), value)?;
        tx.write_word(fresh.field(N_LEFT), 0)?;
        tx.write_word(fresh.field(N_RIGHT), 0)?;
        tx.write_word(fresh.field(N_HEIGHT), 1)?;
        return Ok(fresh.offset());
    };
    let node_key = tx.read_word(p.field(N_KEY))?;
    if key == node_key {
        *replaced = Some(tx.read_word(p.field(N_VALUE))?);
        tx.write_word(p.field(N_VALUE), value)?;
        return Ok(p.offset());
    }
    let side = if key < node_key { N_LEFT } else { N_RIGHT };
    let child = tx.read_word(p.field(side))?;
    let new_child = insert_rec(tx, child, key, value, replaced)?;
    if new_child != child {
        tx.write_word(p.field(side), new_child)?;
    }
    if replaced.is_some() {
        // Pure value update: no structural change to rebalance.
        return Ok(p.offset());
    }
    rebalance(tx, p)
}

/// Removes the minimum node of the subtree, returning
/// `(new_subtree_root, detached_min_node)`.
fn detach_min(tx: &mut Tx<'_>, node: PmPtr) -> Result<(u64, PmPtr), HeapError> {
    let left = tx.read_word(node.field(N_LEFT))?;
    match PmPtr::new(left) {
        None => {
            let right = tx.read_word(node.field(N_RIGHT))?;
            Ok((right, node))
        }
        Some(l) => {
            let (new_left, min) = detach_min(tx, l)?;
            tx.write_word(node.field(N_LEFT), new_left)?;
            Ok((rebalance(tx, node)?, min))
        }
    }
}

fn remove_rec(
    tx: &mut Tx<'_>,
    node: u64,
    key: u64,
    removed: &mut Option<u64>,
    to_free: &mut Vec<PmPtr>,
) -> Result<u64, HeapError> {
    let Some(p) = PmPtr::new(node) else {
        return Ok(0);
    };
    let node_key = tx.read_word(p.field(N_KEY))?;
    if key < node_key {
        let child = tx.read_word(p.field(N_LEFT))?;
        let new_child = remove_rec(tx, child, key, removed, to_free)?;
        tx.write_word(p.field(N_LEFT), new_child)?;
    } else if key > node_key {
        let child = tx.read_word(p.field(N_RIGHT))?;
        let new_child = remove_rec(tx, child, key, removed, to_free)?;
        tx.write_word(p.field(N_RIGHT), new_child)?;
    } else {
        *removed = Some(tx.read_word(p.field(N_VALUE))?);
        let left = tx.read_word(p.field(N_LEFT))?;
        let right = tx.read_word(p.field(N_RIGHT))?;
        to_free.push(p);
        match (PmPtr::new(left), PmPtr::new(right)) {
            (None, None) => return Ok(0),
            (Some(_), None) => return Ok(left),
            (None, Some(_)) => return Ok(right),
            (Some(_), Some(r)) => {
                // Replace with the successor: detach the right subtree's
                // minimum and graft the children onto it.
                let (new_right, successor) = detach_min(tx, r)?;
                tx.write_word(successor.field(N_LEFT), left)?;
                tx.write_word(successor.field(N_RIGHT), new_right)?;
                return rebalance(tx, successor);
            }
        }
    }
    rebalance(tx, p)
}

fn walk_in_order(
    tx: &mut Tx<'_>,
    node: u64,
    out: &mut Vec<(u64, u64)>,
) -> Result<(), HeapError> {
    let Some(p) = PmPtr::new(node) else {
        return Ok(());
    };
    let left = tx.read_word(p.field(N_LEFT))?;
    walk_in_order(tx, left, out)?;
    out.push((
        tx.read_word(p.field(N_KEY))?,
        tx.read_word(p.field(N_VALUE))?,
    ));
    let right = tx.read_word(p.field(N_RIGHT))?;
    walk_in_order(tx, right, out)
}

/// A `u64 → u64` AVL map stored in a persistent heap; each public
/// operation runs in its own transaction. The descriptor is published as
/// the heap root.
#[derive(Debug, Clone, Copy)]
pub struct PmAvlTree {
    desc: PmPtr,
}

impl PmAvlTree {
    /// Creates an empty tree and publishes it as the heap root.
    ///
    /// # Errors
    ///
    /// Propagates allocation or transaction failures.
    pub fn create(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        let mut tx = heap.begin();
        let desc = tx.alloc(16)?;
        tx.write_word(desc.field(D_ROOT), 0)?;
        tx.write_word(desc.field(D_COUNT), 0)?;
        tx.set_root(desc)?;
        tx.commit()?;
        Ok(PmAvlTree { desc })
    }

    /// Re-opens the tree published as the heap root (after recovery).
    ///
    /// # Errors
    ///
    /// [`HeapError::CorruptHeader`] if the heap has no root.
    pub fn open(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        let desc = heap.root().ok_or(HeapError::CorruptHeader)?;
        Ok(PmAvlTree { desc })
    }

    /// Inserts or updates a key; returns the previous value, if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn insert(
        &self,
        heap: &mut PersistentHeap,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let root = tx.read_word(self.desc.field(D_ROOT))?;
        let mut replaced = None;
        let new_root = insert_rec(&mut tx, root, key, value, &mut replaced)?;
        tx.write_word(self.desc.field(D_ROOT), new_root)?;
        if replaced.is_none() {
            let count = tx.read_word(self.desc.field(D_COUNT))?;
            tx.write_word(self.desc.field(D_COUNT), count + 1)?;
        }
        tx.commit()?;
        Ok(replaced)
    }

    /// Looks a key up (iteratively — reads only the search path).
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn get(&self, heap: &mut PersistentHeap, key: u64) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let mut cursor = tx.read_word(self.desc.field(D_ROOT))?;
        while let Some(p) = PmPtr::new(cursor) {
            let node_key = tx.read_word(p.field(N_KEY))?;
            if key == node_key {
                let v = tx.read_word(p.field(N_VALUE))?;
                tx.commit()?;
                return Ok(Some(v));
            }
            cursor = tx.read_word(p.field(if key < node_key { N_LEFT } else { N_RIGHT }))?;
        }
        tx.commit()?;
        Ok(None)
    }

    /// Removes a key; returns its value, if present.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn remove(&self, heap: &mut PersistentHeap, key: u64) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let root = tx.read_word(self.desc.field(D_ROOT))?;
        let mut removed = None;
        let mut to_free = Vec::new();
        let new_root = remove_rec(&mut tx, root, key, &mut removed, &mut to_free)?;
        if removed.is_some() {
            tx.write_word(self.desc.field(D_ROOT), new_root)?;
            let count = tx.read_word(self.desc.field(D_COUNT))?;
            tx.write_word(self.desc.field(D_COUNT), count - 1)?;
            for node in to_free {
                tx.free(node)?;
            }
        }
        tx.commit()?;
        Ok(removed)
    }

    /// Number of live entries.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn len(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        let mut tx = heap.begin();
        let n = tx.read_word(self.desc.field(D_COUNT))?;
        tx.commit()?;
        Ok(n)
    }

    /// True if the tree holds no entries.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn is_empty(&self, heap: &mut PersistentHeap) -> Result<bool, HeapError> {
        Ok(self.len(heap)? == 0)
    }

    /// All entries in key order.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn entries(&self, heap: &mut PersistentHeap) -> Result<Vec<(u64, u64)>, HeapError> {
        let mut tx = heap.begin();
        let root = tx.read_word(self.desc.field(D_ROOT))?;
        let mut out = Vec::new();
        walk_in_order(&mut tx, root, &mut out)?;
        tx.commit()?;
        Ok(out)
    }

    /// Height of the tree (test support: AVL balance verification).
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn tree_height(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        let mut tx = heap.begin();
        let root = tx.read_word(self.desc.field(D_ROOT))?;
        let h = height(&mut tx, root)?;
        tx.commit()?;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_pheap::HeapConfig;
    use wsp_units::ByteSize;

    fn heap(config: HeapConfig) -> PersistentHeap {
        PersistentHeap::create(ByteSize::mib(4), config)
    }

    #[test]
    fn sorted_insertion_stays_balanced() {
        let mut h = heap(HeapConfig::Fof);
        let t = PmAvlTree::create(&mut h).unwrap();
        for k in 0..512u64 {
            t.insert(&mut h, k, k).unwrap();
        }
        // A 512-node AVL tree has height <= 1.44 log2(512) ~ 13.
        let height = t.tree_height(&mut h).unwrap();
        assert!((9..=13).contains(&height), "height {height}");
        let entries = t.entries(&mut h).unwrap();
        assert_eq!(entries.len(), 512);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
    }

    #[test]
    fn insert_get_remove_round_trip() {
        for config in HeapConfig::all() {
            let mut h = heap(config);
            let t = PmAvlTree::create(&mut h).unwrap();
            let keys = [50u64, 30, 70, 20, 40, 60, 80, 10, 25, 35, 45];
            for &k in &keys {
                assert_eq!(t.insert(&mut h, k, k * 10).unwrap(), None);
            }
            assert_eq!(t.insert(&mut h, 40, 999).unwrap(), Some(400));
            assert_eq!(t.get(&mut h, 40).unwrap(), Some(999));
            // Remove a leaf, a one-child node, and a two-child node.
            assert_eq!(t.remove(&mut h, 10).unwrap(), Some(100));
            assert_eq!(t.remove(&mut h, 20).unwrap(), Some(200));
            assert_eq!(t.remove(&mut h, 50).unwrap(), Some(500));
            assert_eq!(t.remove(&mut h, 50).unwrap(), None);
            assert_eq!(t.len(&mut h).unwrap(), keys.len() as u64 - 3 + 1 - 1);
            let entries = t.entries(&mut h).unwrap();
            assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "{config}");
        }
    }

    #[test]
    fn randomized_against_btreemap() {
        use std::collections::BTreeMap;
        let mut h = heap(HeapConfig::FofUndo);
        let t = PmAvlTree::create(&mut h).unwrap();
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random op stream.
        let mut state = 0x12345678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let r = next();
            let key = r % 200;
            match r % 3 {
                0 => {
                    assert_eq!(
                        t.insert(&mut h, key, r).unwrap(),
                        model.insert(key, r),
                        "insert {key}"
                    );
                }
                1 => {
                    assert_eq!(t.remove(&mut h, key).unwrap(), model.remove(&key), "remove {key}");
                }
                _ => {
                    assert_eq!(
                        t.get(&mut h, key).unwrap(),
                        model.get(&key).copied(),
                        "get {key}"
                    );
                }
            }
        }
        assert_eq!(t.len(&mut h).unwrap(), model.len() as u64);
        let entries = t.entries(&mut h).unwrap();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(entries, expect);
    }

    #[test]
    fn tree_survives_crash_recovery() {
        let mut h = heap(HeapConfig::FocStm);
        let t = PmAvlTree::create(&mut h).unwrap();
        for k in 0..100u64 {
            t.insert(&mut h, k * 7 % 100, k).unwrap();
        }
        let mut h = PersistentHeap::recover(h.crash(false)).unwrap();
        let t = PmAvlTree::open(&mut h).unwrap();
        assert_eq!(t.len(&mut h).unwrap(), 100);
        let entries = t.entries(&mut h).unwrap();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
