//! A persistent separate-chaining hash table over the transactional heap
//! — the data structure of the paper's Figure 5 microbenchmark.

use wsp_pheap::{HeapError, PersistentHeap, PmPtr};

/// Descriptor field indices.
const D_BUCKETS: u64 = 0;
const D_ARRAY: u64 = 1;
const D_COUNT: u64 = 2;

/// Node field indices: `[key, value, next]`.
const N_KEY: u64 = 0;
const N_VALUE: u64 = 1;
const N_NEXT: u64 = 2;
const NODE_BYTES: u64 = 24;

/// Fibonacci hash of a key into `buckets` (a power of two).
fn bucket_of(key: u64, buckets: u64) -> u64 {
    key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - buckets.trailing_zeros())
}

/// A `u64 → u64` hash table stored in a persistent heap. Each public
/// operation runs in its own transaction, exactly as the paper's
/// benchmark wraps each hash-table operation.
///
/// The table's descriptor is published as the heap root, so
/// [`PmHashTable::open`] finds it again after crash recovery.
#[derive(Debug, Clone, Copy)]
pub struct PmHashTable {
    desc: PmPtr,
    buckets: u64,
}

impl PmHashTable {
    /// Creates a table with `buckets` chains (rounded up to a power of
    /// two) and publishes it as the heap root.
    ///
    /// # Errors
    ///
    /// Propagates allocation or transaction failures.
    pub fn create(heap: &mut PersistentHeap, buckets: u64) -> Result<Self, HeapError> {
        let buckets = buckets.next_power_of_two().max(8);
        let mut tx = heap.begin();
        let desc = tx.alloc(24)?;
        let array = tx.alloc(buckets * 8)?;
        tx.write_word(desc.field(D_BUCKETS), buckets)?;
        tx.write_word(desc.field(D_ARRAY), array.offset())?;
        tx.write_word(desc.field(D_COUNT), 0)?;
        for i in 0..buckets {
            tx.write_word(array.field(i), 0)?;
        }
        tx.set_root(desc)?;
        tx.commit()?;
        Ok(PmHashTable { desc, buckets })
    }

    /// Re-opens the table published as the heap root (after recovery).
    ///
    /// # Errors
    ///
    /// [`HeapError::CorruptHeader`] if the heap has no root.
    pub fn open(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        let desc = heap.root().ok_or(HeapError::CorruptHeader)?;
        let mut tx = heap.begin();
        let buckets = tx.read_word(desc.field(D_BUCKETS))?;
        tx.commit()?;
        Ok(PmHashTable { desc, buckets })
    }

    /// Inserts or updates a key; returns the previous value, if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures (e.g. [`HeapError::Conflict`]).
    pub fn insert(
        &self,
        heap: &mut PersistentHeap,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let array = PmPtr::new(tx.read_word(self.desc.field(D_ARRAY))?)
            .ok_or(HeapError::CorruptHeader)?;
        let slot = array.field(bucket_of(key, self.buckets));
        // Walk the chain looking for the key.
        let mut cursor = tx.read_word(slot)?;
        while let Some(node) = PmPtr::new(cursor) {
            if tx.read_word(node.field(N_KEY))? == key {
                let old = tx.read_word(node.field(N_VALUE))?;
                tx.write_word(node.field(N_VALUE), value)?;
                tx.commit()?;
                return Ok(Some(old));
            }
            cursor = tx.read_word(node.field(N_NEXT))?;
        }
        // Prepend a new node.
        let node = tx.alloc(NODE_BYTES)?;
        tx.write_word(node.field(N_KEY), key)?;
        tx.write_word(node.field(N_VALUE), value)?;
        let head = tx.read_word(slot)?;
        tx.write_word(node.field(N_NEXT), head)?;
        tx.write_word(slot, node.offset())?;
        let count = tx.read_word(self.desc.field(D_COUNT))?;
        tx.write_word(self.desc.field(D_COUNT), count + 1)?;
        tx.commit()?;
        Ok(None)
    }

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn get(&self, heap: &mut PersistentHeap, key: u64) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let array = PmPtr::new(tx.read_word(self.desc.field(D_ARRAY))?)
            .ok_or(HeapError::CorruptHeader)?;
        let mut cursor = tx.read_word(array.field(bucket_of(key, self.buckets)))?;
        while let Some(node) = PmPtr::new(cursor) {
            if tx.read_word(node.field(N_KEY))? == key {
                let value = tx.read_word(node.field(N_VALUE))?;
                tx.commit()?;
                return Ok(Some(value));
            }
            cursor = tx.read_word(node.field(N_NEXT))?;
        }
        tx.commit()?;
        Ok(None)
    }

    /// Removes a key; returns its value, if present.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn remove(&self, heap: &mut PersistentHeap, key: u64) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let array = PmPtr::new(tx.read_word(self.desc.field(D_ARRAY))?)
            .ok_or(HeapError::CorruptHeader)?;
        let slot = array.field(bucket_of(key, self.buckets));
        let mut prev: Option<PmPtr> = None;
        let mut cursor = tx.read_word(slot)?;
        while let Some(node) = PmPtr::new(cursor) {
            let next = tx.read_word(node.field(N_NEXT))?;
            if tx.read_word(node.field(N_KEY))? == key {
                let value = tx.read_word(node.field(N_VALUE))?;
                match prev {
                    Some(p) => tx.write_word(p.field(N_NEXT), next)?,
                    None => tx.write_word(slot, next)?,
                }
                tx.free(node)?;
                let count = tx.read_word(self.desc.field(D_COUNT))?;
                tx.write_word(self.desc.field(D_COUNT), count - 1)?;
                tx.commit()?;
                return Ok(Some(value));
            }
            prev = Some(node);
            cursor = next;
        }
        tx.commit()?;
        Ok(None)
    }

    /// Number of live entries.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn len(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        let mut tx = heap.begin();
        let count = tx.read_word(self.desc.field(D_COUNT))?;
        tx.commit()?;
        Ok(count)
    }

    /// True if the table holds no entries.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn is_empty(&self, heap: &mut PersistentHeap) -> Result<bool, HeapError> {
        Ok(self.len(heap)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_pheap::HeapConfig;
    use wsp_units::ByteSize;

    fn heap(config: HeapConfig) -> PersistentHeap {
        PersistentHeap::create(ByteSize::mib(4), config)
    }

    #[test]
    fn insert_get_remove_in_every_config() {
        for config in HeapConfig::all() {
            let mut h = heap(config);
            let t = PmHashTable::create(&mut h, 16).unwrap();
            assert_eq!(t.insert(&mut h, 1, 10).unwrap(), None);
            assert_eq!(t.insert(&mut h, 2, 20).unwrap(), None);
            assert_eq!(t.insert(&mut h, 1, 11).unwrap(), Some(10));
            assert_eq!(t.get(&mut h, 1).unwrap(), Some(11));
            assert_eq!(t.get(&mut h, 3).unwrap(), None);
            assert_eq!(t.remove(&mut h, 2).unwrap(), Some(20));
            assert_eq!(t.remove(&mut h, 2).unwrap(), None);
            assert_eq!(t.len(&mut h).unwrap(), 1, "{config}");
        }
    }

    #[test]
    fn chains_handle_collisions() {
        let mut h = heap(HeapConfig::Fof);
        let t = PmHashTable::create(&mut h, 8).unwrap();
        // 200 keys over 8 buckets: every bucket chains deeply.
        for k in 0..200u64 {
            t.insert(&mut h, k, k * 2).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(t.get(&mut h, k).unwrap(), Some(k * 2));
        }
        // Remove from the middle of chains.
        for k in (0..200u64).step_by(3) {
            assert_eq!(t.remove(&mut h, k).unwrap(), Some(k * 2));
        }
        for k in 0..200u64 {
            let expect = if k % 3 == 0 { None } else { Some(k * 2) };
            assert_eq!(t.get(&mut h, k).unwrap(), expect);
        }
    }

    #[test]
    fn survives_crash_and_recovery_foc() {
        let mut h = heap(HeapConfig::FocUndo);
        let t = PmHashTable::create(&mut h, 32).unwrap();
        for k in 0..50u64 {
            t.insert(&mut h, k, k + 100).unwrap();
        }
        let mut h = PersistentHeap::recover(h.crash(false)).unwrap();
        let t = PmHashTable::open(&mut h).unwrap();
        assert_eq!(t.len(&mut h).unwrap(), 50);
        for k in 0..50u64 {
            assert_eq!(t.get(&mut h, k).unwrap(), Some(k + 100));
        }
    }

    #[test]
    fn survives_crash_with_fof_save() {
        let mut h = heap(HeapConfig::Fof);
        let t = PmHashTable::create(&mut h, 32).unwrap();
        for k in 0..50u64 {
            t.insert(&mut h, k, k).unwrap();
        }
        let mut h = PersistentHeap::recover(h.crash(true)).unwrap();
        let t = PmHashTable::open(&mut h).unwrap();
        for k in 0..50u64 {
            assert_eq!(t.get(&mut h, k).unwrap(), Some(k));
        }
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut h = heap(HeapConfig::Fof);
        let t = PmHashTable::create(&mut h, 8).unwrap();
        for round in 0..20u64 {
            for k in 0..50u64 {
                t.insert(&mut h, k, round).unwrap();
            }
            for k in 0..50u64 {
                t.remove(&mut h, k).unwrap();
            }
        }
        assert!(t.is_empty(&mut h).unwrap());
    }
}
