//! Benchmark drivers: the Figure 5 hash-table microbenchmark and the
//! Table 1 OpenLDAP-style insert benchmark, runnable against any heap
//! configuration, reporting *simulated* time.

use wsp_det::{DetRng, Rng};
use wsp_pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_units::{ByteSize, Nanos};

use crate::generators::{Op, OpMix};
use crate::{random_dn, DirEntry, Directory, PmHashTable};

/// Result of one hash-microbenchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Heap configuration measured.
    pub config: HeapConfig,
    /// Update probability of the op mix.
    pub update_probability: f64,
    /// Operations executed.
    pub ops: u64,
    /// Total simulated time.
    pub elapsed: Nanos,
    /// Simulated time per operation.
    pub time_per_op: Nanos,
}

/// The Figure 5 microbenchmark: pre-populate a hash table, then run a
/// mixed lookup/insert/delete stream and report simulated time per
/// operation.
///
/// # Examples
///
/// ```
/// use wsp_pheap::HeapConfig;
/// use wsp_workloads::HashBenchmark;
///
/// let bench = HashBenchmark::quick();
/// let fof = bench.run(HeapConfig::Fof, 0.5, 1).unwrap();
/// let foc = bench.run(HeapConfig::FocStm, 0.5, 1).unwrap();
/// assert!(foc.time_per_op > fof.time_per_op);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashBenchmark {
    /// Entries pre-populated before measurement (paper: 100,000).
    pub prepopulate: u64,
    /// Measured operations (paper: 1,000,000).
    pub ops: u64,
    /// Heap region size.
    pub region: ByteSize,
}

impl HashBenchmark {
    /// The paper's configuration: 100 k entries, 1 M operations.
    #[must_use]
    pub fn paper() -> Self {
        HashBenchmark {
            prepopulate: 100_000,
            ops: 1_000_000,
            region: ByteSize::mib(64),
        }
    }

    /// A scaled-down configuration for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        HashBenchmark {
            prepopulate: 2_000,
            ops: 10_000,
            region: ByteSize::mib(8),
        }
    }

    /// Runs the benchmark for one configuration and update probability.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn run(
        &self,
        config: HeapConfig,
        update_probability: f64,
        seed: u64,
    ) -> Result<BenchResult, HeapError> {
        self.run_with_epoch(config, update_probability, seed, 1)
    }

    /// [`HashBenchmark::run`] with epoch group commit: `epoch_size`
    /// transactions per durability epoch (1 = per-transaction protocol).
    /// The final open epoch is sealed inside the measured window, so the
    /// reported time includes full durability of every operation.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn run_with_epoch(
        &self,
        config: HeapConfig,
        update_probability: f64,
        seed: u64,
        epoch_size: u64,
    ) -> Result<BenchResult, HeapError> {
        self.run_with_epoch_flit(config, update_probability, seed, epoch_size, true)
    }

    /// [`HashBenchmark::run_with_epoch`] with FliT per-word flush
    /// tracking switched on or off, for measuring what write elision
    /// buys on its own. `flit = false` runs the reference always-append
    /// barriers; both modes reach identical durable states.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn run_with_epoch_flit(
        &self,
        config: HeapConfig,
        update_probability: f64,
        seed: u64,
        epoch_size: u64,
        flit: bool,
    ) -> Result<BenchResult, HeapError> {
        let mut heap = PersistentHeap::create(self.region, config);
        heap.set_epoch_size(epoch_size);
        heap.set_flit_enabled(flit);
        let buckets = (self.prepopulate / 4).next_power_of_two().max(64);
        let table = PmHashTable::create(&mut heap, buckets)?;

        // Pre-populate with the even keys of a 2x key space, so inserts
        // and deletes in the measured phase hit both present and absent
        // keys.
        let key_space = self.prepopulate * 2;
        let mut rng = DetRng::seed_from_u64(seed);
        let mut inserted = 0u64;
        while inserted < self.prepopulate {
            let key = rng.gen_range(0..key_space);
            if table.insert(&mut heap, key, key)?.is_none() {
                inserted += 1;
            }
        }

        let mix = OpMix::new(update_probability);
        let start = heap.elapsed();
        for _ in 0..self.ops {
            match mix.next_op(&mut rng, key_space) {
                Op::Lookup(k) => {
                    table.get(&mut heap, k)?;
                }
                Op::Insert(k, v) => {
                    table.insert(&mut heap, k, v)?;
                }
                Op::Delete(k) => {
                    table.remove(&mut heap, k)?;
                }
            }
        }
        heap.seal_epoch();
        let elapsed = heap.elapsed() - start;
        Ok(BenchResult {
            config,
            update_probability,
            ops: self.ops,
            elapsed,
            time_per_op: elapsed / self.ops.max(1),
        })
    }
}

/// Result of one LDAP-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdapResult {
    /// Heap configuration measured.
    pub config: HeapConfig,
    /// Entries inserted.
    pub inserted: u64,
    /// Total simulated time.
    pub elapsed: Nanos,
    /// Simulated updates per second (Table 1's metric).
    pub updates_per_sec: f64,
}

/// The Table 1 benchmark: insert randomly generated entries into an
/// empty AVL-backed directory, single-threaded, closed-loop.
///
/// The paper compares the Mnemosyne configuration ([`HeapConfig::FocStm`])
/// against WSP (a plain in-memory AVL tree — [`HeapConfig::Fof`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdapBenchmark {
    /// Entries to insert (paper: 100,000).
    pub entries: u64,
    /// Heap region size.
    pub region: ByteSize,
    /// Per-request server work outside the store (protocol decode,
    /// schema checks, result encode). OpenLDAP does a lot of it, which
    /// is why Table 1's gap (2.4×) is narrower than the raw
    /// microbenchmark gap of Figure 5; both configurations pay this
    /// equally.
    pub per_op_overhead: Nanos,
}

impl LdapBenchmark {
    /// The paper's configuration: 100,000 entries.
    #[must_use]
    pub fn paper() -> Self {
        LdapBenchmark {
            entries: 100_000,
            region: ByteSize::mib(128),
            per_op_overhead: Nanos::new(10_000),
        }
    }

    /// A scaled-down configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        LdapBenchmark {
            entries: 1_000,
            region: ByteSize::mib(8),
            per_op_overhead: Nanos::new(10_000),
        }
    }

    /// Runs the insert workload against one configuration.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn run(&self, config: HeapConfig, seed: u64) -> Result<LdapResult, HeapError> {
        let mut heap = PersistentHeap::create(self.region, config);
        let dir = Directory::create(&mut heap)?;
        let mut rng = DetRng::seed_from_u64(seed);

        let start = heap.elapsed();
        let mut inserted = 0u64;
        while inserted < self.entries {
            let dn = random_dn(&mut rng);
            let entry = DirEntry::new(
                dn,
                vec![
                    ("objectClass".into(), "inetOrgPerson".into()),
                    ("sn".into(), format!("surname{inserted}")),
                    ("uid".into(), format!("uid{inserted}")),
                ],
            );
            heap.charge(self.per_op_overhead);
            if dir.add(&mut heap, &entry)? {
                inserted += 1;
            }
        }
        let elapsed = heap.elapsed() - start;
        Ok(LdapResult {
            config,
            inserted,
            elapsed,
            updates_per_sec: inserted as f64 / elapsed.as_secs_f64().max(1e-12),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fof_beats_foc_stm_by_paper_margins() {
        let bench = HashBenchmark::quick();
        let fof = bench.run(HeapConfig::Fof, 0.5, 42).unwrap();
        let foc = bench.run(HeapConfig::FocStm, 0.5, 42).unwrap();
        let ratio = foc.time_per_op.as_nanos() as f64 / fof.time_per_op.as_nanos() as f64;
        assert!(ratio > 3.0, "FoC+STM/FoF ratio {ratio} too small");
    }

    #[test]
    fn update_heavy_widens_the_gap() {
        let bench = HashBenchmark::quick();
        let read_only = bench.run(HeapConfig::FocStm, 0.0, 1).unwrap();
        let update_only = bench.run(HeapConfig::FocStm, 1.0, 1).unwrap();
        assert!(update_only.time_per_op > read_only.time_per_op);
    }

    #[test]
    fn fof_is_flat_across_update_ratios() {
        let bench = HashBenchmark::quick();
        let ro = bench.run(HeapConfig::Fof, 0.0, 1).unwrap();
        let uo = bench.run(HeapConfig::Fof, 1.0, 1).unwrap();
        let ratio = uo.time_per_op.as_nanos() as f64 / ro.time_per_op.as_nanos() as f64;
        assert!(ratio < 2.0, "FoF should be nearly flat, got {ratio}");
    }

    #[test]
    fn ldap_wsp_faster_than_mnemosyne() {
        let bench = LdapBenchmark::quick();
        let wsp = bench.run(HeapConfig::Fof, 9).unwrap();
        let mnemosyne = bench.run(HeapConfig::FocStm, 9).unwrap();
        let speedup = wsp.updates_per_sec / mnemosyne.updates_per_sec;
        assert!(
            speedup > 1.5,
            "paper: WSP ~2.4x Mnemosyne; got {speedup:.2}x"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let bench = HashBenchmark::quick();
        let a = bench.run(HeapConfig::FofUndo, 0.3, 5).unwrap();
        let b = bench.run(HeapConfig::FofUndo, 0.3, 5).unwrap();
        assert_eq!(a, b);
    }
}
