//! Workload generators: key distributions, operation mixes, and random
//! LDAP distinguished names.

use wsp_det::{DetRng, Rng};

/// The operation mix of the Figure 5 microbenchmark: a lookup with
/// probability `1 − update_probability`, otherwise an update that is an
/// insert or a delete with equal probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Probability an operation is an update (0.0 = read-only, 1.0 =
    /// update-only) — the x-axis of Figure 5.
    pub update_probability: f64,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Key lookup.
    Lookup(u64),
    /// Insert (or overwrite) a key.
    Insert(u64, u64),
    /// Delete a key.
    Delete(u64),
}

impl OpMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics unless `update_probability` is in `[0, 1]`.
    #[must_use]
    pub fn new(update_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&update_probability),
            "probability must be in [0, 1]"
        );
        OpMix { update_probability }
    }

    /// Draws the next operation over the key space `0..key_space`.
    pub fn next_op(&self, rng: &mut DetRng, key_space: u64) -> Op {
        let key = rng.gen_range(0..key_space);
        if rng.gen_bool(self.update_probability) {
            if rng.gen_bool(0.5) {
                Op::Insert(key, rng.gen())
            } else {
                Op::Delete(key)
            }
        } else {
            Op::Lookup(key)
        }
    }
}

/// Key distributions for lookups and updates.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over `0..n`.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian over `0..n` (YCSB-style skew).
    Zipfian(Zipfian),
}

impl KeyDistribution {
    /// Draws a key.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match self {
            KeyDistribution::Uniform { n } => rng.gen_range(0..*n),
            KeyDistribution::Zipfian(z) => z.sample(rng),
        }
    }
}

/// A Zipfian distribution over `0..n` with skew `theta`, using the
/// Gray et al. transform that YCSB popularised.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a Zipfian over `0..n` with skew `theta` (0 < theta < 1;
    /// YCSB uses 0.99).
    ///
    /// # Panics
    ///
    /// Panics for `n == 0` or `theta` outside `(0, 1)`.
    #[must_use]
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta in (0,1)");
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draws a rank in `0..n` (0 is the hottest key).
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Generates a random LDAP distinguished name like the paper's
/// 100,000-entry OpenLDAP insert workload
/// (`cn=user012345,ou=People,dc=example,dc=com`).
pub fn random_dn(rng: &mut DetRng) -> String {
    format!(
        "cn=user{:08},ou={},dc=example,dc=com",
        rng.gen_range(0..100_000_000u64),
        ["People", "Groups", "Services"][rng.gen_range(0..3usize)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from_u64(7)
    }

    #[test]
    fn op_mix_respects_probability() {
        let mut r = rng();
        let read_only = OpMix::new(0.0);
        let update_only = OpMix::new(1.0);
        for _ in 0..100 {
            assert!(matches!(read_only.next_op(&mut r, 100), Op::Lookup(_)));
            assert!(!matches!(update_only.next_op(&mut r, 100), Op::Lookup(_)));
        }
        let mixed = OpMix::new(0.5);
        let updates = (0..10_000)
            .filter(|_| !matches!(mixed.next_op(&mut r, 100), Op::Lookup(_)))
            .count();
        assert!((4_500..5_500).contains(&updates), "{updates}");
    }

    #[test]
    fn zipfian_is_skewed_toward_rank_zero() {
        let z = Zipfian::new(1000, 0.99);
        let mut r = rng();
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Hottest key draws a large share under theta=0.99.
        assert!(counts[0] > 5_000, "rank 0 count {}", counts[0]);
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::new(10, 0.5);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 10);
        }
    }

    #[test]
    fn uniform_covers_the_space() {
        let d = KeyDistribution::Uniform { n: 8 };
        let mut r = rng();
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[d.sample(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dns_look_like_ldap() {
        let mut r = rng();
        let dn = random_dn(&mut r);
        assert!(dn.starts_with("cn=user"));
        assert!(dn.contains("dc=example"));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = OpMix::new(1.5);
    }
}
