//! YCSB-style workload mixes over the persistent key-value structures —
//! the standard cloud-serving benchmark shapes, driven against any heap
//! configuration. The paper's motivating applications (memcache tiers,
//! key-value stores) are exactly the systems YCSB characterises.

use wsp_det::{DetRng, Rng};
use wsp_pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_units::{ByteSize, Nanos};

use crate::{PmHashTable, Zipfian};

/// The classic YCSB core workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbMix {
    /// A: update heavy — 50% reads, 50% updates.
    A,
    /// B: read mostly — 95% reads, 5% updates.
    B,
    /// C: read only.
    C,
    /// D: read latest — 95% reads, 5% inserts (fresh keys).
    D,
    /// F: read-modify-write — 50% reads, 50% RMW.
    F,
}

impl YcsbMix {
    /// All mixes, in YCSB order.
    #[must_use]
    pub fn all() -> [YcsbMix; 5] {
        [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::D, YcsbMix::F]
    }

    /// Workload label ("YCSB-A" …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "YCSB-A",
            YcsbMix::B => "YCSB-B",
            YcsbMix::C => "YCSB-C",
            YcsbMix::D => "YCSB-D",
            YcsbMix::F => "YCSB-F",
        }
    }
}

/// Result of one YCSB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbResult {
    /// Workload mix.
    pub mix: YcsbMix,
    /// Heap configuration.
    pub config: HeapConfig,
    /// Operations executed.
    pub ops: u64,
    /// Simulated time per operation.
    pub time_per_op: Nanos,
    /// Simulated throughput (ops/s).
    pub ops_per_sec: f64,
}

/// A YCSB driver over the persistent hash table.
///
/// # Examples
///
/// ```
/// use wsp_pheap::HeapConfig;
/// use wsp_workloads::{YcsbDriver, YcsbMix};
///
/// let driver = YcsbDriver::quick();
/// let read_only = driver.run(YcsbMix::C, HeapConfig::FocStm, 1)?;
/// let update_heavy = driver.run(YcsbMix::A, HeapConfig::FocStm, 1)?;
/// assert!(update_heavy.time_per_op > read_only.time_per_op);
/// # Ok::<(), wsp_pheap::HeapError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YcsbDriver {
    /// Records loaded before the measured phase.
    pub records: u64,
    /// Measured operations.
    pub ops: u64,
    /// Zipfian skew for key selection (YCSB default 0.99).
    pub zipf_theta: f64,
    /// Heap region size.
    pub region: ByteSize,
}

impl YcsbDriver {
    /// Standard-ish scale: 10 k records, 50 k operations.
    #[must_use]
    pub fn standard() -> Self {
        YcsbDriver {
            records: 10_000,
            ops: 50_000,
            zipf_theta: 0.99,
            region: ByteSize::mib(32),
        }
    }

    /// Scaled down for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        YcsbDriver {
            records: 1_000,
            ops: 5_000,
            zipf_theta: 0.99,
            region: ByteSize::mib(8),
        }
    }

    /// Runs one (mix, configuration) cell.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn run(
        &self,
        mix: YcsbMix,
        config: HeapConfig,
        seed: u64,
    ) -> Result<YcsbResult, HeapError> {
        let mut heap = PersistentHeap::create(self.region, config);
        let table = PmHashTable::create(&mut heap, self.records / 2)?;
        for k in 0..self.records {
            table.insert(&mut heap, k, k)?;
        }
        let zipf = Zipfian::new(self.records, self.zipf_theta);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut next_fresh = self.records;

        let start = heap.elapsed();
        for _ in 0..self.ops {
            let key = zipf.sample(&mut rng);
            let roll: f64 = rng.gen();
            match mix {
                YcsbMix::A => {
                    if roll < 0.5 {
                        table.get(&mut heap, key)?;
                    } else {
                        table.insert(&mut heap, key, roll.to_bits())?;
                    }
                }
                YcsbMix::B => {
                    if roll < 0.95 {
                        table.get(&mut heap, key)?;
                    } else {
                        table.insert(&mut heap, key, roll.to_bits())?;
                    }
                }
                YcsbMix::C => {
                    table.get(&mut heap, key)?;
                }
                YcsbMix::D => {
                    if roll < 0.95 {
                        // Read latest: bias toward recently inserted keys.
                        let recent = next_fresh - 1 - key.min(next_fresh - 1);
                        table.get(&mut heap, recent)?;
                    } else {
                        table.insert(&mut heap, next_fresh, next_fresh)?;
                        next_fresh += 1;
                    }
                }
                YcsbMix::F => {
                    if roll < 0.5 {
                        table.get(&mut heap, key)?;
                    } else {
                        let old = table.get(&mut heap, key)?.unwrap_or(0);
                        table.insert(&mut heap, key, old + 1)?;
                    }
                }
            }
        }
        let elapsed = heap.elapsed() - start;
        Ok(YcsbResult {
            mix,
            config,
            ops: self.ops,
            time_per_op: elapsed / self.ops.max(1),
            ops_per_sec: self.ops as f64 / elapsed.as_secs_f64().max(1e-12),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_c_is_cheapest_under_foc() {
        let d = YcsbDriver::quick();
        let c = d.run(YcsbMix::C, HeapConfig::FocUndo, 1).unwrap();
        let a = d.run(YcsbMix::A, HeapConfig::FocUndo, 1).unwrap();
        let f = d.run(YcsbMix::F, HeapConfig::FocUndo, 1).unwrap();
        assert!(c.time_per_op < a.time_per_op);
        assert!(c.time_per_op < f.time_per_op);
    }

    #[test]
    fn fof_beats_foc_on_update_heavy_mixes() {
        let d = YcsbDriver::quick();
        for mix in [YcsbMix::A, YcsbMix::F] {
            let foc = d.run(mix, HeapConfig::FocStm, 2).unwrap();
            let fof = d.run(mix, HeapConfig::Fof, 2).unwrap();
            let ratio =
                foc.time_per_op.as_nanos() as f64 / fof.time_per_op.as_nanos() as f64;
            assert!(ratio > 3.0, "{}: {ratio:.1}", mix.label());
        }
    }

    #[test]
    fn insert_mix_d_grows_the_table() {
        let d = YcsbDriver::quick();
        let mut heap = PersistentHeap::create(d.region, HeapConfig::Fof);
        let table = PmHashTable::create(&mut heap, 512).unwrap();
        for k in 0..d.records {
            table.insert(&mut heap, k, k).unwrap();
        }
        // Run D manually to observe growth.
        drop(heap);
        let r = d.run(YcsbMix::D, HeapConfig::Fof, 3).unwrap();
        assert_eq!(r.ops, d.ops);
        assert!(r.ops_per_sec > 0.0);
    }

    #[test]
    fn results_deterministic_per_seed() {
        let d = YcsbDriver::quick();
        let a = d.run(YcsbMix::B, HeapConfig::FofUndo, 9).unwrap();
        let b = d.run(YcsbMix::B, HeapConfig::FofUndo, 9).unwrap();
        assert_eq!(a, b);
    }
}
