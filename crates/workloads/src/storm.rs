//! The power-storm soak: repeated full storm sweeps (see
//! [`wsp_core::sweep_power_storm`]) across seeds, aggregated into one
//! survival scorecard. This is the workload `verify.sh` soaks under
//! different `WSP_FAULTSIM_THREADS` settings — the scorecard must come
//! out bitwise identical however the sweep is sharded.

use wsp_core::{domain_decision_points, sweep_power_storm, PowerStormReport};
use wsp_pheap::HeapConfig;

/// A multi-seed power-storm soak over one heap configuration.
///
/// # Examples
///
/// ```
/// use wsp_pheap::HeapConfig;
/// use wsp_workloads::PowerStormBench;
///
/// let report = PowerStormBench::quick(HeapConfig::FocUndo).run();
/// assert!(report.survived);
/// assert!(report.outages >= 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerStormBench {
    /// Heap configuration every shard runs (must be flush-on-commit).
    pub config: HeapConfig,
    /// One full sweep per seed.
    pub seeds: Vec<u64>,
}

impl PowerStormBench {
    /// The soak scale `verify.sh` runs: three seeds.
    #[must_use]
    pub fn standard(config: HeapConfig) -> Self {
        PowerStormBench {
            config,
            seeds: vec![42, 7, 4242],
        }
    }

    /// One seed, for tests and doc examples.
    #[must_use]
    pub fn quick(config: HeapConfig) -> Self {
        PowerStormBench {
            config,
            seeds: vec![42],
        }
    }

    /// Runs every sweep and folds the results into one scorecard.
    ///
    /// # Panics
    ///
    /// Panics on any storm invariant violation (a lost committed value,
    /// a silent tear, a divergent re-climb) — the sweeps assert those
    /// internally — and if `seeds` is empty.
    #[must_use]
    pub fn run(&self) -> PowerStormSoakReport {
        assert!(!self.seeds.is_empty(), "soak needs at least one seed");
        let sweeps: Vec<PowerStormReport> = self
            .seeds
            .iter()
            .map(|&seed| sweep_power_storm(self.config, seed))
            .collect();

        let mut outages = 0;
        let mut storms = 0;
        let mut committed_txns = 0;
        let mut presumed_aborts = 0;
        let mut sacrificed = 0;
        let mut rebuilt = 0;
        let mut rerouted_writes = 0;
        let mut coordinator_shard_sacrifices = 0;
        let mut reclimbs_verified = 0;
        let mut full_decision_coverage = true;
        let mut full_rung_coverage = true;
        for sweep in &sweeps {
            outages += sweep.outages;
            storms += sweep.points.len();
            for point in &sweep.points {
                committed_txns += point.stats.committed_txns;
                presumed_aborts += point.stats.presumed_aborts;
                sacrificed += point.stats.sacrificed;
                rebuilt += point.stats.rebuilt;
                rerouted_writes += point.stats.rerouted_writes;
                coordinator_shard_sacrifices += point.stats.coordinator_shard_sacrifices;
                reclimbs_verified += point.stats.reclimbs_verified;
            }
            full_decision_coverage &=
                sweep.decision_cuts_covered == domain_decision_points(3);
            full_rung_coverage &= sweep.crash_rungs_covered == 3;
        }

        PowerStormSoakReport {
            config: self.config,
            seeds: self.seeds.clone(),
            storms,
            outages,
            committed_txns,
            presumed_aborts,
            sacrificed,
            rebuilt,
            rerouted_writes,
            coordinator_shard_sacrifices,
            reclimbs_verified,
            full_decision_coverage,
            full_rung_coverage,
            survived: rebuilt == sacrificed && full_decision_coverage && full_rung_coverage,
            sweeps,
        }
    }
}

/// The aggregated scorecard of a [`PowerStormBench`] soak.
#[derive(Debug, Clone)]
pub struct PowerStormSoakReport {
    /// Heap configuration soaked.
    pub config: HeapConfig,
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// Individual storms run (sweep points across all seeds).
    pub storms: usize,
    /// Micro-outages fired in total.
    pub outages: usize,
    /// Cross-shard transactions committed — every one survived, checked
    /// cell-for-cell after every outage.
    pub committed_txns: usize,
    /// In-flight transactions resolved by presumed abort.
    pub presumed_aborts: usize,
    /// Shard-epochs the global triage sacrificed (typed, never silent).
    pub sacrificed: usize,
    /// Sacrificed shard-epochs rebuilt from checkpoint + routed replay.
    pub rebuilt: usize,
    /// Committed words re-applied from coordinator routing logs.
    pub rerouted_writes: u64,
    /// Outages that sacrificed the coordinator's own shard with
    /// transactions in doubt.
    pub coordinator_shard_sacrifices: usize,
    /// Interrupted recoveries whose re-climb matched bit-for-bit.
    pub reclimbs_verified: usize,
    /// Every sweep crashed every triage decision point.
    pub full_decision_coverage: bool,
    /// Every sweep landed outages on every recovery rung.
    pub full_rung_coverage: bool,
    /// The soak verdict: full coverage and every sacrifice rebuilt.
    pub survived: bool,
    /// The underlying sweeps, in seed order.
    pub sweeps: Vec<PowerStormReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_survives_with_full_coverage() {
        let report = PowerStormBench::quick(HeapConfig::FocUndo).run();
        assert!(report.survived);
        assert!(report.full_decision_coverage);
        assert!(report.full_rung_coverage);
        assert_eq!(report.storms, 6, "3 phases x 2 triage biases");
        assert!(report.outages >= 24 * report.storms);
        assert!(report.committed_txns > 0);
        assert!(report.presumed_aborts > 0);
        assert_eq!(report.rebuilt, report.sacrificed);
        assert!(report.rerouted_writes > 0);
        assert!(report.coordinator_shard_sacrifices > 0);
        assert!(report.reclimbs_verified > 0);
    }

    #[test]
    fn soak_scorecard_is_reproducible() {
        let bench = PowerStormBench::quick(HeapConfig::FocStm);
        let (a, b) = (bench.run(), bench.run());
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.rerouted_writes, b.rerouted_writes);
        for (x, y) in a.sweeps.iter().zip(&b.sweeps) {
            assert_eq!(x.points, y.points);
        }
    }
}
