//! A memcached-style key-value server: the application class the paper's
//! introduction is about (in-memory cache tiers that take hours to
//! re-warm after a correlated outage). Text-protocol commands are parsed
//! and executed against the persistent hash table, with per-operation
//! latency recorded for tail analysis.

use std::fmt;

use wsp_pheap::{HeapError, PersistentHeap};
use wsp_units::{LatencyHistogram, Nanos};

use crate::PmHashTable;

/// A parsed client command (memcached-like text protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get <key>`
    Get(u64),
    /// `set <key> <value>`
    Set(u64, u64),
    /// `delete <key>`
    Delete(u64),
    /// `incr <key> <delta>`
    Incr(u64, u64),
    /// `stats`
    Stats,
}

impl Command {
    /// Parses a protocol line.
    ///
    /// # Errors
    ///
    /// Returns a protocol error string for malformed input.
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        let mut parts = line.split_whitespace();
        let verb = parts.next().ok_or(ProtocolError::Empty)?;
        let mut arg = |name: &'static str| -> Result<u64, ProtocolError> {
            parts
                .next()
                .ok_or(ProtocolError::MissingArgument { name })?
                .parse()
                .map_err(|_| ProtocolError::BadNumber { name })
        };
        let cmd = match verb {
            "get" => Command::Get(arg("key")?),
            "set" => Command::Set(arg("key")?, arg("value")?),
            "delete" => Command::Delete(arg("key")?),
            "incr" => Command::Incr(arg("key")?, arg("delta")?),
            "stats" => Command::Stats,
            other => {
                return Err(ProtocolError::UnknownVerb {
                    verb: other.to_owned(),
                })
            }
        };
        if parts.next().is_some() {
            return Err(ProtocolError::TrailingInput);
        }
        Ok(cmd)
    }
}

/// Protocol-level errors (distinct from storage errors).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// Empty input line.
    Empty,
    /// Verb not recognised.
    UnknownVerb {
        /// The offending verb.
        verb: String,
    },
    /// A required argument was missing.
    MissingArgument {
        /// The missing argument's name.
        name: &'static str,
    },
    /// An argument was not a number.
    BadNumber {
        /// The argument's name.
        name: &'static str,
    },
    /// Extra tokens after a complete command.
    TrailingInput,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty command"),
            ProtocolError::UnknownVerb { verb } => write!(f, "unknown verb '{verb}'"),
            ProtocolError::MissingArgument { name } => {
                write!(f, "missing {name} argument")
            }
            ProtocolError::BadNumber { name } => write!(f, "{name} is not a number"),
            ProtocolError::TrailingInput => write!(f, "trailing input after command"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Value for a `get`/`incr`.
    Value(u64),
    /// Key absent.
    NotFound,
    /// Mutation applied.
    Stored,
    /// Key removed.
    Deleted,
    /// Server statistics.
    Stats {
        /// Live entries.
        items: u64,
        /// Commands served.
        commands: u64,
        /// p99 service latency.
        p99: Nanos,
    },
}

/// The server: persistent store + protocol + latency accounting.
///
/// # Examples
///
/// ```
/// use wsp_pheap::{HeapConfig, PersistentHeap};
/// use wsp_units::ByteSize;
/// use wsp_workloads::{KvServer, Response};
///
/// let mut heap = PersistentHeap::create(ByteSize::mib(1), HeapConfig::Fof);
/// let mut server = KvServer::create(&mut heap)?;
/// assert_eq!(server.serve_line(&mut heap, "set 7 700").unwrap(), Response::Stored);
/// assert_eq!(server.serve_line(&mut heap, "get 7").unwrap(), Response::Value(700));
/// # Ok::<(), wsp_pheap::HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KvServer {
    table: PmHashTable,
    latencies: LatencyHistogram,
    commands: u64,
}

impl KvServer {
    /// Creates a server over a fresh heap.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn create(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        Ok(KvServer {
            table: PmHashTable::create(heap, 4096)?,
            latencies: LatencyHistogram::new(),
            commands: 0,
        })
    }

    /// Re-attaches to a recovered heap. Latency statistics are volatile
    /// and restart from zero — exactly what a WSP resume preserves
    /// (they'd survive too) vs a back-end rebuild (they wouldn't); we
    /// model the conservative case.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn open(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        Ok(KvServer {
            table: PmHashTable::open(heap)?,
            latencies: LatencyHistogram::new(),
            commands: 0,
        })
    }

    /// Parses and serves one protocol line.
    ///
    /// # Errors
    ///
    /// Malformed lines return [`ServeError::Protocol`]; store failures
    /// return [`ServeError::Storage`].
    pub fn serve_line(
        &mut self,
        heap: &mut PersistentHeap,
        line: &str,
    ) -> Result<Response, ServeError> {
        let cmd = Command::parse(line).map_err(ServeError::Protocol)?;
        self.execute(heap, &cmd).map_err(ServeError::Storage)
    }

    /// Executes a parsed command.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn execute(
        &mut self,
        heap: &mut PersistentHeap,
        cmd: &Command,
    ) -> Result<Response, HeapError> {
        let start = heap.elapsed();
        let response = match *cmd {
            Command::Get(k) => match self.table.get(heap, k)? {
                Some(v) => Response::Value(v),
                None => Response::NotFound,
            },
            Command::Set(k, v) => {
                self.table.insert(heap, k, v)?;
                Response::Stored
            }
            Command::Delete(k) => match self.table.remove(heap, k)? {
                Some(_) => Response::Deleted,
                None => Response::NotFound,
            },
            Command::Incr(k, delta) => match self.table.get(heap, k)? {
                Some(v) => {
                    let next = v.wrapping_add(delta);
                    self.table.insert(heap, k, next)?;
                    Response::Value(next)
                }
                None => Response::NotFound,
            },
            Command::Stats => Response::Stats {
                items: self.table.len(heap)?,
                commands: self.commands,
                p99: self.latencies.percentile(99.0),
            },
        };
        self.commands += 1;
        self.latencies.record(heap.elapsed() - start);
        Ok(response)
    }

    /// Commands served since start/recovery.
    #[must_use]
    pub fn commands_served(&self) -> u64 {
        self.commands
    }

    /// The service-latency histogram.
    #[must_use]
    pub fn latencies(&self) -> &LatencyHistogram {
        &self.latencies
    }
}

/// Errors from [`KvServer::serve_line`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The line did not parse.
    Protocol(ProtocolError),
    /// The store failed.
    Storage(HeapError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl KvServer {
    /// The underlying table descriptor (for direct verification in
    /// tests and examples).
    #[must_use]
    pub fn table(&self) -> PmHashTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_pheap::HeapConfig;
    use wsp_units::ByteSize;

    fn setup() -> (PersistentHeap, KvServer) {
        let mut heap = PersistentHeap::create(ByteSize::mib(2), HeapConfig::FocUndo);
        let server = KvServer::create(&mut heap).unwrap();
        (heap, server)
    }

    #[test]
    fn protocol_round_trip() {
        let (mut heap, mut server) = setup();
        assert_eq!(
            server.serve_line(&mut heap, "set 1 100").unwrap(),
            Response::Stored
        );
        assert_eq!(
            server.serve_line(&mut heap, "get 1").unwrap(),
            Response::Value(100)
        );
        assert_eq!(
            server.serve_line(&mut heap, "incr 1 5").unwrap(),
            Response::Value(105)
        );
        assert_eq!(
            server.serve_line(&mut heap, "delete 1").unwrap(),
            Response::Deleted
        );
        assert_eq!(
            server.serve_line(&mut heap, "get 1").unwrap(),
            Response::NotFound
        );
    }

    #[test]
    fn malformed_lines_are_protocol_errors() {
        let (mut heap, mut server) = setup();
        for bad in ["", "frobnicate 1", "set 1", "get one", "get 1 2"] {
            match server.serve_line(&mut heap, bad) {
                Err(ServeError::Protocol(_)) => {}
                other => panic!("{bad:?} should be a protocol error, got {other:?}"),
            }
        }
        // Protocol errors never count as served commands.
        assert_eq!(server.commands_served(), 0);
    }

    #[test]
    fn stats_reports_items_and_latency() {
        let (mut heap, mut server) = setup();
        for k in 0..50 {
            server
                .execute(&mut heap, &Command::Set(k, k * 2))
                .unwrap();
        }
        match server.serve_line(&mut heap, "stats").unwrap() {
            Response::Stats {
                items,
                commands,
                p99,
            } => {
                assert_eq!(items, 50);
                assert_eq!(commands, 50);
                assert!(p99 > Nanos::ZERO);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn server_state_survives_crash_recovery() {
        let (mut heap, mut server) = setup();
        for k in 0..100 {
            server.execute(&mut heap, &Command::Set(k, k + 1)).unwrap();
        }
        let mut heap = PersistentHeap::recover(heap.crash(false)).unwrap();
        let mut server = KvServer::open(&mut heap).unwrap();
        assert_eq!(
            server.serve_line(&mut heap, "get 42").unwrap(),
            Response::Value(43)
        );
        match server.serve_line(&mut heap, "stats").unwrap() {
            Response::Stats { items, .. } => assert_eq!(items, 100),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn incr_on_missing_key_is_not_found() {
        let (mut heap, mut server) = setup();
        assert_eq!(
            server.serve_line(&mut heap, "incr 9 1").unwrap(),
            Response::NotFound
        );
    }
}
