//! An LDAP-like in-memory directory server backed by the persistent AVL
//! tree — the application of the paper's Table 1 experiment (OpenLDAP
//! with its Berkeley DB store replaced by an AVL tree in the persistent
//! heap).

use wsp_pheap::{HeapError, PersistentHeap, PmPtr};

use crate::PmAvlTree;

/// A directory entry: a distinguished name plus attribute pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Distinguished name, e.g. `cn=user042,ou=People,dc=example,dc=com`.
    pub dn: String,
    /// Attribute name/value pairs.
    pub attributes: Vec<(String, String)>,
}

impl DirEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(dn: impl Into<String>, attributes: Vec<(String, String)>) -> Self {
        DirEntry {
            dn: dn.into(),
            attributes,
        }
    }

    /// Serializes to the on-heap blob format (length-prefixed strings).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put(&mut out, &self.dn);
        out.extend_from_slice(&(self.attributes.len() as u32).to_le_bytes());
        for (k, v) in &self.attributes {
            put(&mut out, k);
            put(&mut out, v);
        }
        out
    }

    /// Deserializes from the on-heap blob format.
    fn decode(bytes: &[u8]) -> Option<Self> {
        fn take_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
            let len =
                u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
            *pos += 4;
            let s = std::str::from_utf8(bytes.get(*pos..*pos + len)?)
                .ok()?
                .to_owned();
            *pos += len;
            Some(s)
        }
        let mut pos = 0usize;
        let dn = take_str(bytes, &mut pos)?;
        let n = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let mut attributes = Vec::with_capacity(n);
        for _ in 0..n {
            let k = take_str(bytes, &mut pos)?;
            let v = take_str(bytes, &mut pos)?;
            attributes.push((k, v));
        }
        Some(DirEntry { dn, attributes })
    }
}

/// FNV-1a hash of a DN.
fn dn_hash(dn: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in dn.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The directory server: AVL tree keyed by DN hash (open addressing on
/// the key for the rare collision), values pointing to encoded entry
/// blobs in the heap.
#[derive(Debug, Clone, Copy)]
pub struct Directory {
    tree: PmAvlTree,
}

impl Directory {
    /// Creates an empty directory, publishing its index as the heap root.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn create(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        Ok(Directory {
            tree: PmAvlTree::create(heap)?,
        })
    }

    /// Re-opens a directory after recovery.
    ///
    /// # Errors
    ///
    /// [`HeapError::CorruptHeader`] if the heap has no root.
    pub fn open(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        Ok(Directory {
            tree: PmAvlTree::open(heap)?,
        })
    }

    /// Reads the entry blob behind `value_ptr` outside the index tx.
    fn read_entry(heap: &mut PersistentHeap, value: u64) -> Result<Option<DirEntry>, HeapError> {
        let Some(blob) = PmPtr::new(value) else {
            return Ok(None);
        };
        let mut tx = heap.begin();
        let len = tx.read_word(blob)?;
        let mut bytes = vec![0u8; len as usize];
        tx.read_bytes(blob.field(1), &mut bytes)?;
        tx.commit()?;
        Ok(DirEntry::decode(&bytes))
    }

    /// Adds an entry. Returns `false` (without modifying anything) if the
    /// DN already exists.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn add(&self, heap: &mut PersistentHeap, entry: &DirEntry) -> Result<bool, HeapError> {
        let mut key = dn_hash(&entry.dn);
        // Open addressing on hash collision with a *different* DN.
        loop {
            match self.tree.get(heap, key)? {
                None => break,
                Some(value) => {
                    if let Some(existing) = Self::read_entry(heap, value)? {
                        if existing.dn == entry.dn {
                            return Ok(false);
                        }
                    }
                    key = key.wrapping_add(1);
                }
            }
        }
        let encoded = entry.encode();
        let mut tx = heap.begin();
        let blob = tx.alloc(8 + encoded.len() as u64)?;
        tx.write_word(blob, encoded.len() as u64)?;
        tx.write_bytes(blob.field(1), &encoded)?;
        tx.commit()?;
        self.tree.insert(heap, key, blob.offset())?;
        Ok(true)
    }

    /// Searches for a DN.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn search(
        &self,
        heap: &mut PersistentHeap,
        dn: &str,
    ) -> Result<Option<DirEntry>, HeapError> {
        let mut key = dn_hash(dn);
        loop {
            match self.tree.get(heap, key)? {
                None => return Ok(None),
                Some(value) => {
                    if let Some(entry) = Self::read_entry(heap, value)? {
                        if entry.dn == dn {
                            return Ok(Some(entry));
                        }
                    }
                    key = key.wrapping_add(1);
                }
            }
        }
    }

    /// Deletes a DN; returns `true` if it existed.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn delete(&self, heap: &mut PersistentHeap, dn: &str) -> Result<bool, HeapError> {
        let mut key = dn_hash(dn);
        loop {
            match self.tree.get(heap, key)? {
                None => return Ok(false),
                Some(value) => {
                    if let Some(entry) = Self::read_entry(heap, value)? {
                        if entry.dn == dn {
                            self.tree.remove(heap, key)?;
                            let mut tx = heap.begin();
                            if let Some(blob) = PmPtr::new(value) {
                                tx.free(blob)?;
                            }
                            tx.commit()?;
                            return Ok(true);
                        }
                    }
                    key = key.wrapping_add(1);
                }
            }
        }
    }

    /// Number of entries.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn len(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        self.tree.len(heap)
    }

    /// True if the directory is empty.
    ///
    /// # Errors
    ///
    /// Propagates heap failures.
    pub fn is_empty(&self, heap: &mut PersistentHeap) -> Result<bool, HeapError> {
        self.tree.is_empty(heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_pheap::HeapConfig;
    use wsp_units::ByteSize;

    fn entry(n: u32) -> DirEntry {
        DirEntry::new(
            format!("cn=user{n:05},ou=People,dc=example,dc=com"),
            vec![
                ("objectClass".into(), "person".into()),
                ("sn".into(), format!("User {n}")),
                ("mail".into(), format!("user{n}@example.com")),
            ],
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let e = entry(42);
        assert_eq!(DirEntry::decode(&e.encode()), Some(e));
        assert_eq!(DirEntry::decode(&[1, 2, 3]), None);
    }

    #[test]
    fn add_search_delete() {
        let mut h = PersistentHeap::create(ByteSize::mib(4), HeapConfig::FocUndo);
        let dir = Directory::create(&mut h).unwrap();
        for n in 0..100 {
            assert!(dir.add(&mut h, &entry(n)).unwrap());
        }
        // Duplicate add is refused.
        assert!(!dir.add(&mut h, &entry(5)).unwrap());
        assert_eq!(dir.len(&mut h).unwrap(), 100);
        let found = dir
            .search(&mut h, "cn=user00042,ou=People,dc=example,dc=com")
            .unwrap()
            .expect("present");
        assert_eq!(found.attributes[2].1, "user42@example.com");
        assert!(dir.delete(&mut h, &found.dn).unwrap());
        assert!(!dir.delete(&mut h, &found.dn).unwrap());
        assert!(dir.search(&mut h, &found.dn).unwrap().is_none());
        assert_eq!(dir.len(&mut h).unwrap(), 99);
    }

    #[test]
    fn directory_survives_crash() {
        let mut h = PersistentHeap::create(ByteSize::mib(4), HeapConfig::FocStm);
        let dir = Directory::create(&mut h).unwrap();
        for n in 0..50 {
            dir.add(&mut h, &entry(n)).unwrap();
        }
        let mut h = PersistentHeap::recover(h.crash(false)).unwrap();
        let dir = Directory::open(&mut h).unwrap();
        assert_eq!(dir.len(&mut h).unwrap(), 50);
        let e = dir
            .search(&mut h, "cn=user00007,ou=People,dc=example,dc=com")
            .unwrap();
        assert!(e.is_some());
    }

    #[test]
    fn missing_dn_returns_none() {
        let mut h = PersistentHeap::create(ByteSize::mib(1), HeapConfig::Fof);
        let dir = Directory::create(&mut h).unwrap();
        assert!(dir.search(&mut h, "cn=nobody").unwrap().is_none());
        assert!(dir.is_empty(&mut h).unwrap());
    }
}
