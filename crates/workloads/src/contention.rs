//! A multi-client contention harness for the STM configurations: models
//! N logical clients sharing one heap, with concurrent commits injected
//! *mid-transaction*, and measures abort/retry behaviour — the
//! concurrency-control cost axis the paper's §3.2 discusses (STM "adds
//! additional overheads in the form of conflict detection at commit").

use wsp_det::{DetRng, Rng};
use wsp_pheap::{HeapConfig, HeapError, PersistentHeap, PmPtr};
use wsp_units::ByteSize;

/// Outcome of a contention run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionReport {
    /// Operations that ultimately committed.
    pub committed: u64,
    /// Aborts due to conflicts (each followed by a retry).
    pub aborts: u64,
    /// Operations that exhausted their retry budget.
    pub gave_up: u64,
    /// Final sum of all counters (for lost-update detection).
    pub final_sum: u64,
}

impl ContentionReport {
    /// Fraction of attempts that aborted.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborts + self.gave_up;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

/// The harness: an array of counters, a hot prefix, and a knob for how
/// often a "concurrent client" commits to a hot counter while this
/// client's transaction is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionHarness {
    /// Total counters.
    pub keys: u64,
    /// The contended prefix (all within one or two STM stripes).
    pub hot_keys: u64,
    /// Probability of a concurrent hot-stripe commit landing inside a
    /// transaction.
    pub interference: f64,
    /// Retries before an operation gives up.
    pub max_retries: u32,
}

impl ContentionHarness {
    /// A hot-spot setup: 1024 counters, 16 of them hot.
    #[must_use]
    pub fn hot_spot(interference: f64) -> Self {
        ContentionHarness {
            keys: 1024,
            hot_keys: 16,
            interference,
            max_retries: 8,
        }
    }

    /// Runs `ops` read-modify-write increments against an STM heap with
    /// injected concurrent commits; retries on conflict.
    ///
    /// # Errors
    ///
    /// Propagates non-conflict heap failures.
    ///
    /// # Panics
    ///
    /// Panics if `config` is not an STM configuration (the others have
    /// no conflicts to measure).
    pub fn run(
        &self,
        config: HeapConfig,
        ops: u64,
        seed: u64,
    ) -> Result<ContentionReport, HeapError> {
        assert!(config.uses_stm(), "contention requires an STM configuration");
        let mut heap = PersistentHeap::create(ByteSize::mib(8), config);
        let array = {
            let mut tx = heap.begin();
            let array = tx.alloc(self.keys * 8)?;
            for i in 0..self.keys {
                tx.write_word(array.field(i), 0)?;
            }
            tx.set_root(array)?;
            tx.commit()?;
            array
        };

        let mut rng = DetRng::seed_from_u64(seed);
        let mut report = ContentionReport {
            committed: 0,
            aborts: 0,
            gave_up: 0,
            final_sum: 0,
        };

        for _ in 0..ops {
            let key = if rng.gen_bool(0.5) {
                rng.gen_range(0..self.hot_keys)
            } else {
                rng.gen_range(self.hot_keys..self.keys)
            };
            let slot = array.field(key);
            let interfere = rng.gen_bool(self.interference);
            let hot = array.field(rng.gen_range(0..self.hot_keys)).offset();

            let mut done = false;
            for attempt in 0..=self.max_retries {
                let result = Self::increment(&mut heap, slot, (interfere && attempt == 0).then_some(hot));
                match result {
                    Ok(()) => {
                        report.committed += 1;
                        done = true;
                        break;
                    }
                    Err(HeapError::Conflict) => report.aborts += 1,
                    Err(other) => return Err(other),
                }
            }
            if !done {
                report.gave_up += 1;
            }
        }

        // Sum the counters: with retries, no increments are lost.
        let mut tx = heap.begin();
        for i in 0..self.keys {
            report.final_sum += tx.read_word(array.field(i))?;
        }
        tx.commit()?;
        Ok(report)
    }

    /// One read-modify-write transaction, with an optional concurrent
    /// commit landing between the read and the write.
    fn increment(
        heap: &mut PersistentHeap,
        slot: PmPtr,
        interfere_at: Option<u64>,
    ) -> Result<(), HeapError> {
        let mut tx = heap.begin();
        let old = tx.read_word(slot)?;
        if let Some(addr) = interfere_at {
            tx.interfere(addr);
        }
        tx.write_word(slot, old + 1)?;
        tx.commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_means_no_aborts() {
        let h = ContentionHarness::hot_spot(0.0);
        let report = h.run(HeapConfig::FofStm, 500, 1).unwrap();
        assert_eq!(report.aborts, 0);
        assert_eq!(report.committed, 500);
        assert_eq!(report.final_sum, 500, "every increment landed exactly once");
    }

    #[test]
    fn interference_aborts_hot_transactions_and_retries_recover() {
        let h = ContentionHarness::hot_spot(0.6);
        let report = h.run(HeapConfig::FocStm, 500, 2).unwrap();
        assert!(report.aborts > 50, "conflicts must occur: {report:?}");
        assert_eq!(report.gave_up, 0, "one retry suffices here");
        assert_eq!(report.committed, 500);
        assert_eq!(report.final_sum, 500, "aborted attempts left no trace");
    }

    #[test]
    fn abort_rate_scales_with_interference() {
        let low = ContentionHarness::hot_spot(0.1)
            .run(HeapConfig::FofStm, 400, 3)
            .unwrap();
        let high = ContentionHarness::hot_spot(0.9)
            .run(HeapConfig::FofStm, 400, 3)
            .unwrap();
        assert!(high.abort_rate() > low.abort_rate() + 0.1);
    }

    #[test]
    fn cold_keys_never_conflict() {
        // Interference hits hot stripes only; an all-cold workload would
        // need hot reads to conflict. Verify cold ops commit first try.
        let h = ContentionHarness {
            keys: 1024,
            hot_keys: 1,
            interference: 1.0,
            max_retries: 2,
        };
        let report = h.run(HeapConfig::FofStm, 300, 5).unwrap();
        // Hot-key ops (50% of traffic, all interfered) abort once each at
        // most; overall throughput survives.
        assert_eq!(report.committed, 300);
        assert_eq!(report.final_sum, 300);
    }

    #[test]
    #[should_panic(expected = "STM configuration")]
    fn non_stm_configs_rejected() {
        let _ = ContentionHarness::hot_spot(0.1).run(HeapConfig::Fof, 10, 1);
    }
}
