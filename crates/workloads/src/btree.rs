//! A persistent B-tree over the transactional heap — the style of
//! NVRAM-optimised index the paper's related work discusses (CDDS
//! B-Trees, §7), provided as an alternative to the AVL tree for
//! index-structure ablations.
//!
//! Fixed node layout (min degree 4, max 7 keys): one metadata word, 7
//! key words, then 7 value words (leaves) or 8 child pointers
//! (internal nodes) — 16 words = 128 bytes = exactly two cache lines,
//! which is the point: a node touch costs at most two line fills.

use wsp_pheap::{HeapError, PersistentHeap, PmPtr, Tx};

/// Minimum degree `t`: nodes hold `t-1 ..= 2t-1` keys (except the root).
const T: u64 = 4;
/// Maximum keys per node.
const MAX_KEYS: u64 = 2 * T - 1;
/// Node size in 8-byte words: meta + keys + max(values, children).
const NODE_WORDS: u64 = 1 + MAX_KEYS + (MAX_KEYS + 1);
const NODE_BYTES: u64 = NODE_WORDS * 8;

/// Field offsets within a node.
const F_META: u64 = 0;
const F_KEYS: u64 = 1;
/// Values (leaf) and children (internal) share the slot region.
const F_SLOTS: u64 = 1 + MAX_KEYS;

/// Descriptor: `[root_node, count]`.
const D_ROOT: u64 = 0;
const D_COUNT: u64 = 1;

fn pack_meta(is_leaf: bool, nkeys: u64) -> u64 {
    (nkeys << 1) | u64::from(is_leaf)
}

fn unpack_meta(meta: u64) -> (bool, u64) {
    (meta & 1 == 1, meta >> 1)
}

struct NodeRef(PmPtr);

impl NodeRef {
    fn meta(&self, tx: &mut Tx<'_>) -> Result<(bool, u64), HeapError> {
        Ok(unpack_meta(tx.read_word(self.0.field(F_META))?))
    }

    fn set_meta(&self, tx: &mut Tx<'_>, is_leaf: bool, nkeys: u64) -> Result<(), HeapError> {
        tx.write_word(self.0.field(F_META), pack_meta(is_leaf, nkeys))
    }

    fn key(&self, tx: &mut Tx<'_>, i: u64) -> Result<u64, HeapError> {
        tx.read_word(self.0.field(F_KEYS + i))
    }

    fn set_key(&self, tx: &mut Tx<'_>, i: u64, k: u64) -> Result<(), HeapError> {
        tx.write_word(self.0.field(F_KEYS + i), k)
    }

    /// Value slot `i` (leaves) / child slot `i` (internal nodes).
    fn slot(&self, tx: &mut Tx<'_>, i: u64) -> Result<u64, HeapError> {
        tx.read_word(self.0.field(F_SLOTS + i))
    }

    fn set_slot(&self, tx: &mut Tx<'_>, i: u64, v: u64) -> Result<(), HeapError> {
        tx.write_word(self.0.field(F_SLOTS + i), v)
    }

    fn child(&self, tx: &mut Tx<'_>, i: u64) -> Result<NodeRef, HeapError> {
        let raw = self.slot(tx, i)?;
        PmPtr::new(raw)
            .map(NodeRef)
            .ok_or(HeapError::InvalidPointer { offset: raw })
    }
}

fn alloc_node(tx: &mut Tx<'_>, is_leaf: bool) -> Result<NodeRef, HeapError> {
    let ptr = tx.alloc(NODE_BYTES)?;
    let node = NodeRef(ptr);
    node.set_meta(tx, is_leaf, 0)?;
    Ok(node)
}

/// A `u64 → u64` B-tree map stored in a persistent heap; each public
/// operation runs in its own transaction. The descriptor is published
/// as the heap root.
///
/// # Examples
///
/// ```
/// use wsp_pheap::{HeapConfig, PersistentHeap};
/// use wsp_units::ByteSize;
/// use wsp_workloads::PmBTree;
///
/// let mut heap = PersistentHeap::create(ByteSize::mib(1), HeapConfig::Fof);
/// let tree = PmBTree::create(&mut heap)?;
/// for k in 0..100 {
///     tree.insert(&mut heap, k, k * k)?;
/// }
/// assert_eq!(tree.get(&mut heap, 9)?, Some(81));
/// # Ok::<(), wsp_pheap::HeapError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PmBTree {
    desc: PmPtr,
}

impl PmBTree {
    /// Creates an empty tree and publishes it as the heap root.
    ///
    /// # Errors
    ///
    /// Propagates allocation or transaction failures.
    pub fn create(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        let mut tx = heap.begin();
        let desc = tx.alloc(16)?;
        let root = alloc_node(&mut tx, true)?;
        tx.write_word(desc.field(D_ROOT), root.0.offset())?;
        tx.write_word(desc.field(D_COUNT), 0)?;
        tx.set_root(desc)?;
        tx.commit()?;
        Ok(PmBTree { desc })
    }

    /// Re-opens the tree published as the heap root (after recovery).
    ///
    /// # Errors
    ///
    /// [`HeapError::CorruptHeader`] if the heap has no root.
    pub fn open(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        let desc = heap.root().ok_or(HeapError::CorruptHeader)?;
        Ok(PmBTree { desc })
    }

    fn root(&self, tx: &mut Tx<'_>) -> Result<NodeRef, HeapError> {
        let raw = tx.read_word(self.desc.field(D_ROOT))?;
        PmPtr::new(raw)
            .map(NodeRef)
            .ok_or(HeapError::CorruptHeader)
    }

    /// Looks a key up.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn get(&self, heap: &mut PersistentHeap, key: u64) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let mut node = self.root(&mut tx)?;
        loop {
            let (is_leaf, nkeys) = node.meta(&mut tx)?;
            // Linear scan: nodes are tiny and cache-resident.
            let mut i = 0;
            while i < nkeys && node.key(&mut tx, i)? < key {
                i += 1;
            }
            if is_leaf {
                let hit = i < nkeys && node.key(&mut tx, i)? == key;
                let v = if hit { Some(node.slot(&mut tx, i)?) } else { None };
                tx.commit()?;
                return Ok(v);
            }
            // Separator keys are copies whose live pair sits in the left
            // subtree, so `key <= key(i)` (including equality) descends
            // child `i`.
            node = node.child(&mut tx, i)?;
        }
    }

    /// Splits full child `ci` of `parent` (which must not be full).
    fn split_child(
        tx: &mut Tx<'_>,
        parent: &NodeRef,
        ci: u64,
    ) -> Result<(), HeapError> {
        let child = parent.child(tx, ci)?;
        let (child_leaf, _) = child.meta(tx)?;
        let right = alloc_node(tx, child_leaf)?;

        // Move the top T-1 keys (and slots) of `child` into `right`.
        for j in 0..T - 1 {
            let k = child.key(tx, j + T)?;
            right.set_key(tx, j, k)?;
            let v = child.slot(tx, j + T)?;
            right.set_slot(tx, j, v)?;
        }
        if !child_leaf {
            // Children: slots T ..= 2T-1 move over.
            let v = child.slot(tx, 2 * T - 1)?;
            right.set_slot(tx, T - 1, v)?;
        }
        right.set_meta(tx, child_leaf, T - 1)?;

        let median_key = child.key(tx, T - 1)?;
        let median_val = child.slot(tx, T - 1)?;
        child.set_meta(tx, child_leaf, if child_leaf { T } else { T - 1 })?;
        // Leaves keep the median (B+-tree style separation would copy it
        // up; we keep values only at leaves, so the median key/value pair
        // stays in the left leaf and the parent gets a copy of the key as
        // a separator).
        let _ = median_val;

        // Shift the parent's keys/children right to make room.
        let (_, pn) = parent.meta(tx)?;
        let mut j = pn;
        while j > ci {
            let k = parent.key(tx, j - 1)?;
            parent.set_key(tx, j, k)?;
            let c = parent.slot(tx, j)?;
            parent.set_slot(tx, j + 1, c)?;
            j -= 1;
        }
        parent.set_key(tx, ci, median_key)?;
        parent.set_slot(tx, ci + 1, right.0.offset())?;
        parent.set_meta(tx, false, pn + 1)?;
        Ok(())
    }

    /// Inserts or updates a key; returns the previous value, if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn insert(
        &self,
        heap: &mut PersistentHeap,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        // Grow the root first if it is full (single-pass descent).
        let root = self.root(&mut tx)?;
        let (_, nkeys) = root.meta(&mut tx)?;
        let mut node = if nkeys == MAX_KEYS {
            let new_root = alloc_node(&mut tx, false)?;
            new_root.set_slot(&mut tx, 0, root.0.offset())?;
            Self::split_child(&mut tx, &new_root, 0)?;
            tx.write_word(self.desc.field(D_ROOT), new_root.0.offset())?;
            new_root
        } else {
            root
        };

        let replaced = loop {
            let (is_leaf, nkeys) = node.meta(&mut tx)?;
            let mut i = 0;
            while i < nkeys && node.key(&mut tx, i)? < key {
                i += 1;
            }
            if is_leaf {
                if i < nkeys && node.key(&mut tx, i)? == key {
                    let old = node.slot(&mut tx, i)?;
                    node.set_slot(&mut tx, i, value)?;
                    break Some(old);
                }
                // Shift right and insert.
                let mut j = nkeys;
                while j > i {
                    let k = node.key(&mut tx, j - 1)?;
                    node.set_key(&mut tx, j, k)?;
                    let v = node.slot(&mut tx, j - 1)?;
                    node.set_slot(&mut tx, j, v)?;
                    j -= 1;
                }
                node.set_key(&mut tx, i, key)?;
                node.set_slot(&mut tx, i, value)?;
                node.set_meta(&mut tx, true, nkeys + 1)?;
                break None;
            }
            // Descend, splitting full children pre-emptively.
            let child = node.child(&mut tx, i)?;
            let (_, cn) = child.meta(&mut tx)?;
            if cn == MAX_KEYS {
                Self::split_child(&mut tx, &node, i)?;
                // The separator moved up; re-pick the side.
                if node.key(&mut tx, i)? < key {
                    i += 1;
                }
            }
            node = node.child(&mut tx, i)?;
        };

        if replaced.is_none() {
            let count = tx.read_word(self.desc.field(D_COUNT))?;
            tx.write_word(self.desc.field(D_COUNT), count + 1)?;
        }
        tx.commit()?;
        Ok(replaced)
    }

    /// Number of live entries.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn len(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        let mut tx = heap.begin();
        let n = tx.read_word(self.desc.field(D_COUNT))?;
        tx.commit()?;
        Ok(n)
    }

    /// True if the tree holds no entries.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn is_empty(&self, heap: &mut PersistentHeap) -> Result<bool, HeapError> {
        Ok(self.len(heap)? == 0)
    }

    /// All `(key, value)` pairs in key order.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn entries(&self, heap: &mut PersistentHeap) -> Result<Vec<(u64, u64)>, HeapError> {
        fn walk(
            tx: &mut Tx<'_>,
            node: &NodeRef,
            out: &mut Vec<(u64, u64)>,
        ) -> Result<(), HeapError> {
            let (is_leaf, nkeys) = node.meta(tx)?;
            if is_leaf {
                for i in 0..nkeys {
                    out.push((node.key(tx, i)?, node.slot(tx, i)?));
                }
                return Ok(());
            }
            for i in 0..nkeys {
                let child = node.child(tx, i)?;
                walk(tx, &child, out)?;
                // Separator keys are copies; the live pair is in a leaf.
            }
            let last = node.child(tx, nkeys)?;
            walk(tx, &last, out)
        }
        let mut tx = heap.begin();
        let root = self.root(&mut tx)?;
        let mut out = Vec::new();
        walk(&mut tx, &root, &mut out)?;
        tx.commit()?;
        Ok(out)
    }

    /// Tree depth (root = 1); test support for balance claims.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn depth(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        let mut tx = heap.begin();
        let mut node = self.root(&mut tx)?;
        let mut d = 1;
        loop {
            let (is_leaf, _) = node.meta(&mut tx)?;
            if is_leaf {
                break;
            }
            node = node.child(&mut tx, 0)?;
            d += 1;
        }
        tx.commit()?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wsp_pheap::HeapConfig;
    use wsp_units::ByteSize;

    fn heap(config: HeapConfig) -> PersistentHeap {
        PersistentHeap::create(ByteSize::mib(8), config)
    }

    #[test]
    fn sequential_inserts_stay_shallow() {
        let mut h = heap(HeapConfig::Fof);
        let t = PmBTree::create(&mut h).unwrap();
        for k in 0..2_000u64 {
            t.insert(&mut h, k, k).unwrap();
        }
        assert_eq!(t.len(&mut h).unwrap(), 2_000);
        // 2000 keys at >= T-1 = 3 keys per node: depth <= log_4(2000)+1 ~ 7.
        let depth = t.depth(&mut h).unwrap();
        assert!(depth <= 7, "depth {depth}");
        let entries = t.entries(&mut h).unwrap();
        assert_eq!(entries.len(), 2_000);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn random_inserts_match_model() {
        let mut h = heap(HeapConfig::FofUndo);
        let t = PmBTree::create(&mut h).unwrap();
        let mut model = BTreeMap::new();
        let mut state = 0xabcdefu64;
        for _ in 0..3_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 500;
            assert_eq!(
                t.insert(&mut h, key, state).unwrap(),
                model.insert(key, state),
                "insert {key}"
            );
        }
        for k in 0..500u64 {
            assert_eq!(t.get(&mut h, k).unwrap(), model.get(&k).copied(), "get {k}");
        }
        let entries = t.entries(&mut h).unwrap();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(entries, expect);
    }

    #[test]
    fn works_in_every_heap_config() {
        for config in HeapConfig::all() {
            let mut h = heap(config);
            let t = PmBTree::create(&mut h).unwrap();
            for k in (0..200u64).rev() {
                t.insert(&mut h, k, k + 1).unwrap();
            }
            for k in 0..200u64 {
                assert_eq!(t.get(&mut h, k).unwrap(), Some(k + 1), "{config}");
            }
        }
    }

    #[test]
    fn survives_crash_recovery() {
        let mut h = heap(HeapConfig::FocStm);
        let t = PmBTree::create(&mut h).unwrap();
        for k in 0..500u64 {
            t.insert(&mut h, k * 13 % 500, k).unwrap();
        }
        let mut h = PersistentHeap::recover(h.crash(false)).unwrap();
        let t = PmBTree::open(&mut h).unwrap();
        assert_eq!(t.len(&mut h).unwrap(), 500);
        let entries = t.entries(&mut h).unwrap();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn overwrite_returns_previous_value() {
        let mut h = heap(HeapConfig::Fof);
        let t = PmBTree::create(&mut h).unwrap();
        assert_eq!(t.insert(&mut h, 5, 50).unwrap(), None);
        assert_eq!(t.insert(&mut h, 5, 51).unwrap(), Some(50));
        assert_eq!(t.len(&mut h).unwrap(), 1);
    }

    #[test]
    fn node_layout_is_two_cache_lines() {
        assert_eq!(NODE_BYTES, 128);
    }
}
