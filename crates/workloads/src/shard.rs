//! A sharded, deterministic KV serving engine: [`KvServer`] hash-
//! partitioned across per-shard persistent heaps, driven by closed-loop
//! multi-client YCSB command mixes on `std::thread::scope` workers.
//!
//! The determinism recipe is the same one `wsp_core::faultsim` uses for
//! its crash-point sweeps: every per-shard (and per-client) PRNG is
//! split *serially* from the run seed before any worker starts, each
//! shard runs against its own heap under its own `wsp-obs` recorder,
//! and per-shard results — stats, latency histograms, traces, metrics —
//! are merged in shard order. The outcome is bitwise identical for any
//! `WSP_KV_SHARDS` worker count, including the fully serial path.
//!
//! Sharding is by key: shard `s` of `N` owns exactly the keys
//! `k * N + s`, so the same logical store partitions cleanly and each
//! shard's heap can seal durability epochs (group commit) without any
//! cross-shard coordination — the serving-path analogue of the paper's
//! per-core flush argument.

use wsp_det::{DetRng, Rng};
use wsp_obs as obs;
use wsp_pheap::lockfree::{
    payload, preload_hash, FlushPolicy, LfLayout, LfRegion, OpKind, ThreadMachine,
};
use wsp_pheap::{HeapConfig, HeapError, PersistentHeap};
use wsp_units::{ByteSize, LatencyHistogram, Nanos};

use crate::{Command, KvServer, YcsbMix, Zipfian};

/// Worker count for sharded KV runs.
///
/// `WSP_KV_SHARDS` overrides (set `1` to force the serial path);
/// otherwise the host's available parallelism is used. Results are
/// bitwise identical either way: per-shard PRNGs are split from the run
/// seed serially before any worker starts, and shard results are merged
/// in shard order.
#[must_use]
pub fn kv_worker_threads() -> usize {
    if let Ok(v) = std::env::var("WSP_KV_SHARDS") {
        return v.trim().parse::<usize>().map_or(1, |n| n.max(1));
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Distributes `items` round-robin over `threads` scoped workers and
/// returns results in the original item order (the `faultsim` sharding
/// recipe). Worker panics propagate.
fn run_on_workers<T, R, F>(items: Vec<T>, threads: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let total = items.len();
    let threads = threads.clamp(1, total.max(1));
    if threads <= 1 {
        return items.into_iter().map(work).collect();
    }
    let mut queues: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        queues[i % threads].push((i, item));
    }
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = queues
            .into_iter()
            .map(|queue| {
                let work = &work;
                s.spawn(move || {
                    queue
                        .into_iter()
                        .map(|(i, item)| (i, work(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            let results = handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            for (i, r) in results {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard produces a result"))
        .collect()
}

/// A sharded multi-client KV benchmark: the serving-path driver the
/// ROADMAP's "heavy traffic" north star asks for.
///
/// # Examples
///
/// ```
/// use wsp_pheap::HeapConfig;
/// use wsp_workloads::{ShardedKvBench, YcsbMix};
///
/// let report = ShardedKvBench::quick(2).run(HeapConfig::FocUndo, 42)?;
/// assert_eq!(report.shards.len(), 2);
/// assert!(report.aggregate_ops_per_sec > 0.0);
/// # Ok::<(), wsp_pheap::HeapError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedKvBench {
    /// Logical shards (per-shard heaps). Keys `k * shards + s` live on
    /// shard `s`.
    pub shards: usize,
    /// Closed-loop clients per shard, interleaved round-robin.
    pub clients_per_shard: usize,
    /// Commands each client issues during the measured phase.
    pub ops_per_client: u64,
    /// Records preloaded per shard before measurement.
    pub records_per_shard: u64,
    /// Heap region size per shard.
    pub region: ByteSize,
    /// Durability-epoch size per shard heap (1 = per-transaction).
    pub epoch_size: u64,
    /// YCSB command mix the clients issue.
    pub mix: YcsbMix,
    /// Zipfian skew for key selection.
    pub zipf_theta: f64,
    /// Concurrent client threads inside each shard for the lock-free
    /// serving path ([`ShardedKvBench::run_concurrent`]). The classic
    /// [`ShardedKvBench::run`] path ignores this and serializes
    /// `clients_per_shard` closed-loop clients through the shard heap.
    pub in_shard_threads: usize,
}

impl ShardedKvBench {
    /// Standard scale: 2 000 records and four clients per shard,
    /// 2 000 ops each, epoch size 32.
    #[must_use]
    pub fn standard(shards: usize) -> Self {
        ShardedKvBench {
            shards,
            clients_per_shard: 4,
            ops_per_client: 2_000,
            records_per_shard: 2_000,
            region: ByteSize::mib(16),
            epoch_size: 32,
            mix: YcsbMix::A,
            zipf_theta: 0.99,
            in_shard_threads: 1,
        }
    }

    /// Scaled down for tests and doc examples.
    #[must_use]
    pub fn quick(shards: usize) -> Self {
        ShardedKvBench {
            shards,
            clients_per_shard: 2,
            ops_per_client: 250,
            records_per_shard: 200,
            region: ByteSize::mib(4),
            epoch_size: 8,
            mix: YcsbMix::A,
            zipf_theta: 0.99,
            in_shard_threads: 1,
        }
    }

    /// Runs the benchmark with the ambient [`kv_worker_threads`] worker
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates heap failures from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `clients_per_shard` is zero.
    pub fn run(&self, config: HeapConfig, seed: u64) -> Result<ShardedKvReport, HeapError> {
        self.run_on(config, seed, kv_worker_threads())
    }

    /// Runs the benchmark on an explicit worker count. The report is
    /// bitwise identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// Propagates heap failures from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `clients_per_shard` is zero.
    pub fn run_on(
        &self,
        config: HeapConfig,
        seed: u64,
        threads: usize,
    ) -> Result<ShardedKvReport, HeapError> {
        self.run_inner(config, seed, threads, false)
    }

    /// Runs the lock-free concurrent serving path: inside every shard,
    /// [`ShardedKvBench::in_shard_threads`] client threads mutate one
    /// detectable open-addressed hash concurrently (YCSB on many cores
    /// inside one shard), with the ambient worker count across shards.
    ///
    /// Each in-shard thread pays simulated time only for the steps it
    /// executes, so the shard's measured phase is the *slowest thread's
    /// clock* — concurrency shortens the shard wall exactly as extra
    /// cores would, while CAS conflicts and helping charge the threads
    /// that incur them.
    ///
    /// # Errors
    ///
    /// Propagates heap failures (none arise on this path today; the
    /// signature matches [`ShardedKvBench::run`] for drop-in use).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `in_shard_threads` is zero.
    pub fn run_concurrent(&self, config: HeapConfig, seed: u64) -> Result<ShardedKvReport, HeapError> {
        self.run_concurrent_on(config, seed, kv_worker_threads())
    }

    /// [`ShardedKvBench::run_concurrent`] on an explicit cross-shard
    /// worker count. The report is bitwise identical for every
    /// `threads` value.
    ///
    /// # Errors
    ///
    /// Propagates heap failures from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `in_shard_threads` is zero.
    pub fn run_concurrent_on(
        &self,
        config: HeapConfig,
        seed: u64,
        threads: usize,
    ) -> Result<ShardedKvReport, HeapError> {
        assert!(self.in_shard_threads > 0, "at least one in-shard thread");
        self.run_inner(config, seed, threads, true)
    }

    fn run_inner(
        &self,
        config: HeapConfig,
        seed: u64,
        threads: usize,
        concurrent: bool,
    ) -> Result<ShardedKvReport, HeapError> {
        assert!(self.shards > 0, "at least one shard");
        assert!(self.clients_per_shard > 0, "at least one client per shard");

        // Serial pre-split: shard s draws its PRNG before any worker
        // exists, so the streams are independent of scheduling.
        let mut parent = DetRng::seed_from_u64(seed);
        let plans: Vec<(usize, DetRng)> =
            (0..self.shards).map(|s| (s, parent.split())).collect();

        let outcomes = run_on_workers(plans, threads, |(shard, rng)| {
            let (outcome, capture) = obs::capture(|| {
                if concurrent {
                    self.run_shard_concurrent(config, shard, rng)
                } else {
                    self.run_shard(config, shard, rng)
                }
            });
            (outcome, capture)
        });

        // Merge in shard order — the only order there is.
        let mut merged = obs::Capture::default();
        let mut latencies = LatencyHistogram::new();
        let mut shards = Vec::with_capacity(self.shards);
        let mut total_ops = 0u64;
        let mut wall = Nanos::ZERO;
        for (outcome, capture) in outcomes {
            let outcome = outcome?;
            merged.absorb(capture);
            obs::count(obs::Ctr::KvShardMerges);
            latencies.merge(&outcome.latencies);
            total_ops += outcome.ops;
            wall = wall.max(outcome.elapsed);
            shards.push(outcome);
        }
        let aggregate = total_ops as f64 / wall.as_secs_f64().max(1e-12);
        Ok(ShardedKvReport {
            config,
            mix: self.mix,
            epoch_size: self.epoch_size,
            total_ops,
            wall_time: wall,
            aggregate_ops_per_sec: aggregate,
            latencies,
            shards,
            trace: merged.trace,
            metrics: merged.metrics,
        })
    }

    /// One shard: own heap, own server, own clients — fully independent
    /// of every other shard.
    fn run_shard(
        &self,
        config: HeapConfig,
        shard: usize,
        mut rng: DetRng,
    ) -> Result<ShardOutcome, HeapError> {
        let stride = self.shards as u64;
        let shard_key = |k: u64| k * stride + shard as u64;

        let mut heap = PersistentHeap::create(self.region, config);
        let mut server = KvServer::create(&mut heap)?;
        heap.set_epoch_size(self.epoch_size);
        let table = server.table();
        for k in 0..self.records_per_shard {
            table.insert(&mut heap, shard_key(k), k)?;
        }
        heap.seal_epoch();

        // Closed-loop clients: each issues its next command only after
        // the previous one completed; the round-robin interleave is the
        // deterministic schedule. Client PRNGs are split serially in
        // client order.
        let mut clients: Vec<DetRng> =
            (0..self.clients_per_shard).map(|_| rng.split()).collect();
        let zipf = Zipfian::new(self.records_per_shard, self.zipf_theta);
        let mut next_fresh = self.records_per_shard;

        let t0 = heap.elapsed();
        for _ in 0..self.ops_per_client {
            for client in &mut clients {
                let key = shard_key(zipf.sample(client));
                let roll: f64 = client.gen();
                let cmd = match self.mix {
                    YcsbMix::A if roll < 0.5 => Command::Get(key),
                    YcsbMix::A => Command::Set(key, roll.to_bits()),
                    YcsbMix::B if roll < 0.95 => Command::Get(key),
                    YcsbMix::B => Command::Set(key, roll.to_bits()),
                    YcsbMix::C => Command::Get(key),
                    YcsbMix::D if roll < 0.95 => Command::Get(shard_key(next_fresh - 1)),
                    YcsbMix::D => {
                        let k = next_fresh;
                        next_fresh += 1;
                        Command::Set(shard_key(k), k)
                    }
                    YcsbMix::F if roll < 0.5 => Command::Get(key),
                    YcsbMix::F => Command::Incr(key, 1),
                };
                let before = heap.elapsed();
                server.execute(&mut heap, &cmd)?;
                obs::count(obs::Ctr::KvOps);
                obs::observe(obs::Hist::KvOp, heap.elapsed() - before);
            }
        }
        // The run's durability boundary: nothing is left buffered in an
        // open epoch, and the seal cost stays inside the measured phase.
        heap.seal_epoch();
        let elapsed = heap.elapsed() - t0;

        let ops = self.ops_per_client * self.clients_per_shard as u64;
        Ok(ShardOutcome {
            shard,
            ops,
            elapsed,
            commands: server.commands_served(),
            items: table.len(&mut heap)?,
            latencies: server.latencies().clone(),
        })
    }

    /// One shard of the concurrent path: `in_shard_threads` detectable
    /// hash clients racing on a single lock-free region.
    fn run_shard_concurrent(
        &self,
        config: HeapConfig,
        shard: usize,
        mut rng: DetRng,
    ) -> Result<ShardOutcome, HeapError> {
        let stride = self.shards as u64;
        let shard_key = |k: u64| k * stride + shard as u64;
        let policy = if config.flush_on_commit() {
            FlushPolicy::FlushOnCommit
        } else {
            FlushPolicy::FlushOnFail
        };
        let clients = self.in_shard_threads;
        // Mix D is the only insert-bearing mix; budget fresh keys for it.
        let fresh_budget = match self.mix {
            YcsbMix::D => self.ops_per_client * clients as u64,
            _ => 0,
        };
        let slots = ((self.records_per_shard + fresh_budget) * 2)
            .next_power_of_two()
            .max(16) as usize;
        // Inserts and updates each publish one fresh entry line; the
        // preload arena holds one line per preloaded record.
        let arena_lines = (self.ops_per_client as usize).max(self.records_per_shard as usize) + 1;
        let lay = LfLayout::new(clients, slots, arena_lines, policy);
        let mut region = LfRegion::create(lay);
        let pairs: Vec<(u64, u64)> =
            (0..self.records_per_shard).map(|k| (shard_key(k), k)).collect();
        preload_hash(&mut region, &pairs);

        // Client plans from serially split PRNGs (client order), then
        // the scheduler stream: the crash-sweep determinism recipe.
        let zipf = Zipfian::new(self.records_per_shard, self.zipf_theta);
        let mut machines: Vec<ThreadMachine> = (0..clients)
            .map(|c| {
                let mut crng = rng.split();
                let first_fresh = self.records_per_shard + c as u64;
                let mut fresh = first_fresh;
                let plan: Vec<OpKind> = (0..self.ops_per_client)
                    .map(|_| {
                        let key = shard_key(zipf.sample(&mut crng));
                        let roll: f64 = crng.gen();
                        match self.mix {
                            YcsbMix::A if roll < 0.5 => OpKind::Get(key),
                            YcsbMix::A => OpKind::Update(key, roll.to_bits()),
                            YcsbMix::B if roll < 0.95 => OpKind::Get(key),
                            YcsbMix::B => OpKind::Update(key, roll.to_bits()),
                            YcsbMix::C => OpKind::Get(key),
                            YcsbMix::D if roll < 0.95 => {
                                // Read the newest key this client wrote
                                // (or the newest preload before any).
                                let latest = if fresh > first_fresh {
                                    fresh - clients as u64
                                } else {
                                    self.records_per_shard - 1
                                };
                                OpKind::Get(shard_key(latest))
                            }
                            YcsbMix::D => {
                                let k = fresh;
                                fresh += clients as u64;
                                OpKind::Insert(shard_key(k), k)
                            }
                            // Incr is read-modify-write; the lock-free
                            // table models it as a value replacement.
                            YcsbMix::F if roll < 0.5 => OpKind::Get(key),
                            YcsbMix::F => OpKind::Update(key, roll.to_bits()),
                        }
                    })
                    .collect();
                ThreadMachine::new(lay, c as u8, plan)
            })
            .collect();
        let mut sched = rng.split();
        for m in &mut machines {
            m.prepare(&mut region);
        }

        // Uniform random scheduling over unfinished clients. Each
        // thread's clock accumulates only its own steps' simulated
        // time: threads run on their own cores, so the shard's wall is
        // the slowest thread's clock, not the sum.
        let mut clocks = vec![Nanos::ZERO; clients];
        let mut op_start = vec![Nanos::ZERO; clients];
        let mut returned = vec![0usize; clients];
        let mut latencies = LatencyHistogram::new();
        let mut commands = 0u64;
        loop {
            let live: Vec<usize> = (0..clients).filter(|&i| !machines[i].done()).collect();
            if live.is_empty() {
                break;
            }
            let i = live[sched.gen_range(0..live.len())];
            let before = region.elapsed();
            machines[i].step(&mut region);
            clocks[i] += region.elapsed() - before;
            while returned[i] < machines[i].results().len() {
                returned[i] += 1;
                let lat = clocks[i] - op_start[i];
                op_start[i] = clocks[i];
                latencies.record(lat);
                obs::observe(obs::Hist::LockfreeOp, lat);
                obs::count(obs::Ctr::LockfreeOps);
                commands += 1;
            }
        }
        let wall = clocks.iter().copied().max().unwrap_or(Nanos::ZERO);
        for m in &machines {
            obs::count_by(obs::Ctr::LockfreeCas, m.stats().cas_attempts);
            obs::count_by(obs::Ctr::LockfreeCasConflicts, m.stats().cas_conflicts);
            obs::count_by(obs::Ctr::LockfreeHelps, m.stats().helps);
        }
        let items = (0..lay.slots)
            .filter(|&idx| payload(region.read_word(lay.slot_addr(idx))) != 0)
            .count() as u64;

        Ok(ShardOutcome {
            shard,
            ops: self.ops_per_client * clients as u64,
            elapsed: wall,
            commands,
            items,
            latencies,
        })
    }
}

/// Per-shard results, merged in shard order into a [`ShardedKvReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Shard index (owns keys `k * shards + shard`).
    pub shard: usize,
    /// Measured commands this shard served.
    pub ops: u64,
    /// Simulated time of the shard's measured phase (including its
    /// final epoch seal).
    pub elapsed: Nanos,
    /// Total commands served (preload excluded; it bypasses the
    /// protocol layer).
    pub commands: u64,
    /// Live entries at the end of the run.
    pub items: u64,
    /// Per-command service-latency histogram.
    pub latencies: LatencyHistogram,
}

/// The merged result of one sharded KV run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedKvReport {
    /// Heap configuration every shard ran.
    pub config: HeapConfig,
    /// Command mix the clients issued.
    pub mix: YcsbMix,
    /// Durability-epoch size per shard heap.
    pub epoch_size: u64,
    /// Commands across all shards (measured phase).
    pub total_ops: u64,
    /// Simulated wall time: the slowest shard (shards serve in
    /// parallel).
    pub wall_time: Nanos,
    /// Aggregate simulated throughput: `total_ops / wall_time`.
    pub aggregate_ops_per_sec: f64,
    /// Latency histogram merged across shards in shard order.
    pub latencies: LatencyHistogram,
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Per-shard traces concatenated in shard order.
    pub trace: obs::Trace,
    /// Per-shard metrics merged in shard order.
    pub metrics: obs::MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_kv_matches_serial() {
        // The acceptance contract: merged stats, latency histograms,
        // and obs traces are identical for any worker count driving the
        // same seeded client mix.
        let bench = ShardedKvBench::quick(3);
        let serial = bench.run_on(HeapConfig::FocUndo, 42, 1).unwrap();
        for threads in [2usize, 4] {
            let parallel = bench.run_on(HeapConfig::FocUndo, 42, threads).unwrap();
            assert_eq!(parallel.total_ops, serial.total_ops, "{threads} workers");
            assert_eq!(parallel.wall_time, serial.wall_time, "{threads} workers");
            assert_eq!(parallel.shards, serial.shards, "{threads} workers");
            assert_eq!(parallel.latencies, serial.latencies, "{threads} workers");
            if let Err(report) =
                obs::diff_traces(&serial.trace, &parallel.trace, obs::DiffMode::Full)
            {
                panic!("{threads}-worker sharded KV trace diverges:\n{report}");
            }
            if let Some(diff) = serial.metrics.first_difference(&parallel.metrics) {
                panic!("{threads}-worker sharded KV metrics diverge: {diff}");
            }
        }
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let bench = ShardedKvBench::quick(2);
        let report = bench.run(HeapConfig::Fof, 7).unwrap();
        assert_eq!(report.shards.len(), 2);
        for (s, outcome) in report.shards.iter().enumerate() {
            assert_eq!(outcome.shard, s);
            assert!(outcome.items >= bench.records_per_shard, "shard {s}");
            assert_eq!(outcome.ops, bench.ops_per_client * bench.clients_per_shard as u64);
        }
        assert_eq!(
            report.total_ops,
            report.shards.iter().map(|s| s.ops).sum::<u64>()
        );
    }

    #[test]
    fn sharding_scales_aggregate_throughput() {
        // Same total client population, per-client work, and store size;
        // four shards serve it in parallel simulated time.
        let one = ShardedKvBench {
            clients_per_shard: 4,
            records_per_shard: 200,
            ..ShardedKvBench::quick(1)
        };
        let four = ShardedKvBench {
            clients_per_shard: 1,
            records_per_shard: 50,
            ..ShardedKvBench::quick(4)
        };
        let r1 = one.run(HeapConfig::FocUndo, 11).unwrap();
        let r4 = four.run(HeapConfig::FocUndo, 11).unwrap();
        assert_eq!(r1.total_ops, r4.total_ops);
        let scaling = r4.aggregate_ops_per_sec / r1.aggregate_ops_per_sec;
        assert!(scaling > 3.0, "4-shard scaling only {scaling:.2}x");
    }

    #[test]
    fn epoch_size_is_honored_per_shard() {
        let bench = ShardedKvBench {
            epoch_size: 8,
            ..ShardedKvBench::quick(2)
        };
        let report = bench.run(HeapConfig::FocUndo, 3).unwrap();
        let seals = report.metrics.counter(obs::Ctr::EpochSeals);
        assert!(seals > 0, "group commit must engage on FoC shards");
        // FoF shards never seal (epoch mode is a documented no-op).
        let fof = bench.run(HeapConfig::Fof, 3).unwrap();
        assert_eq!(fof.metrics.counter(obs::Ctr::EpochSeals), 0);
    }

    #[test]
    fn kv_worker_threads_is_at_least_one() {
        assert!(kv_worker_threads() >= 1);
    }

    #[test]
    fn every_mix_runs_sharded() {
        for mix in YcsbMix::all() {
            let bench = ShardedKvBench {
                mix,
                ops_per_client: 60,
                ..ShardedKvBench::quick(2)
            };
            let report = bench.run(HeapConfig::FocStm, 5).unwrap();
            assert!(report.aggregate_ops_per_sec > 0.0, "{}", mix.label());
        }
    }

    #[test]
    fn every_mix_runs_concurrent() {
        for mix in YcsbMix::all() {
            let bench = ShardedKvBench {
                mix,
                ops_per_client: 60,
                in_shard_threads: 3,
                ..ShardedKvBench::quick(2)
            };
            for config in [HeapConfig::FocUndo, HeapConfig::Fof] {
                let report = bench.run_concurrent(config, 5).unwrap();
                assert_eq!(report.total_ops, 2 * 3 * 60, "{}", mix.label());
                assert!(report.aggregate_ops_per_sec > 0.0, "{}", mix.label());
            }
        }
    }

    #[test]
    fn concurrent_run_is_deterministic_across_workers() {
        let bench = ShardedKvBench {
            in_shard_threads: 4,
            ops_per_client: 80,
            ..ShardedKvBench::quick(2)
        };
        let serial = bench.run_concurrent_on(HeapConfig::FocUndo, 9, 1).unwrap();
        let sharded = bench.run_concurrent_on(HeapConfig::FocUndo, 9, 4).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn in_shard_threads_scale_throughput() {
        // Same total op count; four in-shard clients split it and the
        // shard finishes on the slowest thread's clock.
        let one = ShardedKvBench {
            in_shard_threads: 1,
            ops_per_client: 400,
            ..ShardedKvBench::quick(1)
        };
        let four = ShardedKvBench {
            in_shard_threads: 4,
            ops_per_client: 100,
            ..ShardedKvBench::quick(1)
        };
        let r1 = one.run_concurrent(HeapConfig::FocUndo, 21).unwrap();
        let r4 = four.run_concurrent(HeapConfig::FocUndo, 21).unwrap();
        assert_eq!(r1.total_ops, r4.total_ops);
        let scaling = r4.aggregate_ops_per_sec / r1.aggregate_ops_per_sec;
        assert!(scaling > 1.8, "4-thread in-shard scaling only {scaling:.2}x");
    }

    #[test]
    fn concurrent_fof_beats_foc_under_contention() {
        let bench = ShardedKvBench {
            in_shard_threads: 4,
            ops_per_client: 150,
            zipf_theta: 0.99,
            mix: YcsbMix::A,
            ..ShardedKvBench::quick(1)
        };
        let foc = bench.run_concurrent(HeapConfig::FocUndo, 13).unwrap();
        let fof = bench.run_concurrent(HeapConfig::Fof, 13).unwrap();
        assert!(
            fof.aggregate_ops_per_sec > foc.aggregate_ops_per_sec,
            "fof {:.0} <= foc {:.0}",
            fof.aggregate_ops_per_sec,
            foc.aggregate_ops_per_sec
        );
    }
}
