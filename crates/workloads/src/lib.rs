//! Workloads for the WSP evaluation: persistent data structures built on
//! the `wsp-pheap` transactional API, the paper's two benchmarks, and
//! key/workload generators.
//!
//! * [`PmHashTable`] — the separate-chaining hash table of the Figure 5
//!   microbenchmark (100 k entries pre-populated, 1 M mixed operations).
//! * [`PmAvlTree`] — the AVL tree that replaces Berkeley DB as
//!   OpenLDAP's store in the paper's Table 1 experiment.
//! * [`Directory`] — an LDAP-like directory server over the AVL tree.
//! * [`HashBenchmark`] / [`LdapBenchmark`] — drivers that run those
//!   workloads against any heap configuration and report simulated
//!   time per operation / throughput.
//!
//! Because the data structures go through the transactional heap, the
//! same workload code runs under Mnemosyne-style flush-on-commit STM,
//! undo logging, or plain flush-on-fail — which is precisely the
//! comparison the paper makes.
//!
//! # Examples
//!
//! ```
//! use wsp_pheap::{HeapConfig, PersistentHeap};
//! use wsp_units::ByteSize;
//! use wsp_workloads::PmHashTable;
//!
//! let mut heap = PersistentHeap::create(ByteSize::mib(1), HeapConfig::FocUndo);
//! let table = PmHashTable::create(&mut heap, 64)?;
//! table.insert(&mut heap, 7, 700)?;
//! assert_eq!(table.get(&mut heap, 7)?, Some(700));
//!
//! // Crash without a flush-on-fail save: FoC recovers from its log.
//! let mut heap = PersistentHeap::recover(heap.crash(false))?;
//! let table = PmHashTable::open(&mut heap)?;
//! assert_eq!(table.get(&mut heap, 7)?, Some(700));
//! # Ok::<(), wsp_pheap::HeapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avl;
mod bench;
mod btree;
mod contention;
mod directory;
mod generators;
mod hashtable;
mod kvserver;
mod queue;
mod shard;
mod storm;
mod xshard;
mod ycsb;

pub use avl::PmAvlTree;
pub use bench::{BenchResult, HashBenchmark, LdapBenchmark, LdapResult};
pub use btree::PmBTree;
pub use contention::{ContentionHarness, ContentionReport};
pub use directory::{DirEntry, Directory};
pub use generators::{random_dn, KeyDistribution, Op, OpMix, Zipfian};
pub use hashtable::PmHashTable;
pub use kvserver::{Command, KvServer, ProtocolError, Response, ServeError};
pub use queue::PmQueue;
pub use shard::{kv_worker_threads, ShardOutcome, ShardedKvBench, ShardedKvReport};
pub use storm::{PowerStormBench, PowerStormSoakReport};
pub use xshard::{
    CrossShardKvBench, CrossShardKvReport, DegradedShard, Transfer, TransferOutcome,
};
pub use ycsb::{YcsbDriver, YcsbMix, YcsbResult};
