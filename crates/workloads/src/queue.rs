//! A persistent FIFO queue (ring buffer) over the transactional heap —
//! the message-queue/durable-log shape of workload, complementing the
//! map structures. A fixed ring of slots with head/tail indices; all
//! mutation transactional, so the queue recovers exactly like the maps.

use wsp_pheap::{HeapError, PersistentHeap, PmPtr};

/// Descriptor: `[capacity, head, tail, ring_ptr]` (head = next pop slot,
/// tail = next push slot; empty when head == tail; one slot kept free).
const D_CAP: u64 = 0;
const D_HEAD: u64 = 1;
const D_TAIL: u64 = 2;
const D_RING: u64 = 3;

/// A bounded `u64` FIFO stored in a persistent heap; each operation is
/// one transaction. The descriptor is published as the heap root.
///
/// # Examples
///
/// ```
/// use wsp_pheap::{HeapConfig, PersistentHeap};
/// use wsp_units::ByteSize;
/// use wsp_workloads::PmQueue;
///
/// let mut heap = PersistentHeap::create(ByteSize::kib(128), HeapConfig::FocUndo);
/// let q = PmQueue::create(&mut heap, 8)?;
/// q.push(&mut heap, 1)?;
/// q.push(&mut heap, 2)?;
/// assert_eq!(q.pop(&mut heap)?, Some(1));
///
/// // Crash: the committed pops/pushes survive.
/// let mut heap = PersistentHeap::recover(heap.crash(false))?;
/// let q = PmQueue::open(&mut heap)?;
/// assert_eq!(q.pop(&mut heap)?, Some(2));
/// assert_eq!(q.pop(&mut heap)?, None);
/// # Ok::<(), wsp_pheap::HeapError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PmQueue {
    desc: PmPtr,
}

impl PmQueue {
    /// Creates a queue holding up to `capacity` items and publishes it
    /// as the heap root.
    ///
    /// # Errors
    ///
    /// Propagates allocation/transaction failures.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn create(heap: &mut PersistentHeap, capacity: u64) -> Result<Self, HeapError> {
        assert!(capacity > 0, "queue capacity must be non-zero");
        let slots = capacity + 1; // one slot of slack distinguishes full from empty
        let mut tx = heap.begin();
        let desc = tx.alloc(32)?;
        let ring = tx.alloc(slots * 8)?;
        tx.write_word(desc.field(D_CAP), slots)?;
        tx.write_word(desc.field(D_HEAD), 0)?;
        tx.write_word(desc.field(D_TAIL), 0)?;
        tx.write_word(desc.field(D_RING), ring.offset())?;
        tx.set_root(desc)?;
        tx.commit()?;
        Ok(PmQueue { desc })
    }

    /// Re-opens the queue published as the heap root (after recovery).
    ///
    /// # Errors
    ///
    /// [`HeapError::CorruptHeader`] if the heap has no root.
    pub fn open(heap: &mut PersistentHeap) -> Result<Self, HeapError> {
        let desc = heap.root().ok_or(HeapError::CorruptHeader)?;
        Ok(PmQueue { desc })
    }

    /// Pushes a value; returns `false` (unchanged) when full.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn push(&self, heap: &mut PersistentHeap, value: u64) -> Result<bool, HeapError> {
        let mut tx = heap.begin();
        let slots = tx.read_word(self.desc.field(D_CAP))?;
        let head = tx.read_word(self.desc.field(D_HEAD))?;
        let tail = tx.read_word(self.desc.field(D_TAIL))?;
        if (tail + 1) % slots == head {
            tx.commit()?;
            return Ok(false);
        }
        let ring = PmPtr::new(tx.read_word(self.desc.field(D_RING))?)
            .ok_or(HeapError::CorruptHeader)?;
        tx.write_word(ring.field(tail), value)?;
        tx.write_word(self.desc.field(D_TAIL), (tail + 1) % slots)?;
        tx.commit()?;
        Ok(true)
    }

    /// Pops the oldest value, if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn pop(&self, heap: &mut PersistentHeap) -> Result<Option<u64>, HeapError> {
        let mut tx = heap.begin();
        let slots = tx.read_word(self.desc.field(D_CAP))?;
        let head = tx.read_word(self.desc.field(D_HEAD))?;
        let tail = tx.read_word(self.desc.field(D_TAIL))?;
        if head == tail {
            tx.commit()?;
            return Ok(None);
        }
        let ring = PmPtr::new(tx.read_word(self.desc.field(D_RING))?)
            .ok_or(HeapError::CorruptHeader)?;
        let value = tx.read_word(ring.field(head))?;
        tx.write_word(self.desc.field(D_HEAD), (head + 1) % slots)?;
        tx.commit()?;
        Ok(Some(value))
    }

    /// Items currently queued.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn len(&self, heap: &mut PersistentHeap) -> Result<u64, HeapError> {
        let mut tx = heap.begin();
        let slots = tx.read_word(self.desc.field(D_CAP))?;
        let head = tx.read_word(self.desc.field(D_HEAD))?;
        let tail = tx.read_word(self.desc.field(D_TAIL))?;
        tx.commit()?;
        Ok((tail + slots - head) % slots)
    }

    /// True when nothing is queued.
    ///
    /// # Errors
    ///
    /// Propagates transaction failures.
    pub fn is_empty(&self, heap: &mut PersistentHeap) -> Result<bool, HeapError> {
        Ok(self.len(heap)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_pheap::HeapConfig;
    use wsp_units::ByteSize;

    fn heap(config: HeapConfig) -> PersistentHeap {
        PersistentHeap::create(ByteSize::kib(256), config)
    }

    #[test]
    fn fifo_order_in_every_config() {
        for config in HeapConfig::all() {
            let mut h = heap(config);
            let q = PmQueue::create(&mut h, 16).unwrap();
            for v in 1..=10u64 {
                assert!(q.push(&mut h, v).unwrap());
            }
            for v in 1..=10u64 {
                assert_eq!(q.pop(&mut h).unwrap(), Some(v), "{config}");
            }
            assert_eq!(q.pop(&mut h).unwrap(), None);
        }
    }

    #[test]
    fn full_queue_refuses_pushes() {
        let mut h = heap(HeapConfig::Fof);
        let q = PmQueue::create(&mut h, 3).unwrap();
        assert!(q.push(&mut h, 1).unwrap());
        assert!(q.push(&mut h, 2).unwrap());
        assert!(q.push(&mut h, 3).unwrap());
        assert!(!q.push(&mut h, 4).unwrap(), "capacity 3 is full");
        assert_eq!(q.len(&mut h).unwrap(), 3);
        assert_eq!(q.pop(&mut h).unwrap(), Some(1));
        assert!(q.push(&mut h, 4).unwrap(), "space again after pop");
    }

    #[test]
    fn wraps_around_many_times() {
        let mut h = heap(HeapConfig::FofUndo);
        let q = PmQueue::create(&mut h, 4).unwrap();
        for round in 0..50u64 {
            for v in 0..3 {
                assert!(q.push(&mut h, round * 10 + v).unwrap());
            }
            for v in 0..3 {
                assert_eq!(q.pop(&mut h).unwrap(), Some(round * 10 + v));
            }
        }
        assert!(q.is_empty(&mut h).unwrap());
    }

    #[test]
    fn committed_operations_survive_crash() {
        let mut h = heap(HeapConfig::FocStm);
        let q = PmQueue::create(&mut h, 8).unwrap();
        for v in [10, 20, 30] {
            q.push(&mut h, v).unwrap();
        }
        q.pop(&mut h).unwrap(); // 10 leaves
        let mut h = PersistentHeap::recover(h.crash(false)).unwrap();
        let q = PmQueue::open(&mut h).unwrap();
        assert_eq!(q.len(&mut h).unwrap(), 2);
        assert_eq!(q.pop(&mut h).unwrap(), Some(20));
        assert_eq!(q.pop(&mut h).unwrap(), Some(30));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let mut h = heap(HeapConfig::Fof);
        let _ = PmQueue::create(&mut h, 0);
    }
}
