//! The machine: cores + caches + NVDIMM memory + devices + PSU, plus the
//! load model that determines the residual energy window.

use wsp_det::{DetRng, Rng};
use wsp_cache::{CpuProfile, FlushAnalysis};
use wsp_nvram::NvramPool;
use wsp_power::{PowerMonitor, Psu};
use wsp_units::{ByteSize, Nanos, Watts};

use crate::{Core, DeviceModel};

/// The two load levels of the paper's Figure 7 measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemLoad {
    /// CPU prime-number stress + disk stress running on all cores (the
    /// paper keeps the stress running even during the save, as a worst
    /// case).
    Busy,
    /// Nothing but the OS idle loop.
    Idle,
}

impl SystemLoad {
    /// Both load levels, busy first (Figure 7 order).
    #[must_use]
    pub fn both() -> [SystemLoad; 2] {
        [SystemLoad::Busy, SystemLoad::Idle]
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemLoad::Busy => "Busy",
            SystemLoad::Idle => "Idle",
        }
    }
}

/// A complete WSP-capable server.
#[derive(Debug, Clone)]
pub struct Machine {
    profile: CpuProfile,
    cores: Vec<Core>,
    devices: Vec<DeviceModel>,
    nvram: NvramPool,
    psu: Psu,
    monitor: PowerMonitor,
    busy_draw: Watts,
    idle_draw: Watts,
}

impl Machine {
    /// Builds a machine from parts.
    ///
    /// # Panics
    ///
    /// Panics if `busy_draw < idle_draw`.
    #[must_use]
    pub fn new(
        profile: CpuProfile,
        devices: Vec<DeviceModel>,
        nvram: NvramPool,
        psu: Psu,
        busy_draw: Watts,
        idle_draw: Watts,
    ) -> Self {
        assert!(busy_draw >= idle_draw, "busy draw below idle draw");
        let cores = (0..profile.total_cores()).map(Core::new).collect();
        Machine {
            profile,
            cores,
            devices,
            nvram,
            psu,
            monitor: PowerMonitor::netduino(),
            busy_draw,
            idle_draw,
        }
    }

    /// The paper's high-end testbed: 2-socket Intel C5528, 48 GB of
    /// NVDIMMs, 1050 W PSU, 350 W busy / 200 W idle.
    #[must_use]
    pub fn intel_testbed() -> Self {
        Machine::new(
            CpuProfile::intel_c5528(),
            vec![
                DeviceModel::gpu(Nanos::from_millis(3100)),
                DeviceModel::disk(),
                DeviceModel::nic(),
                DeviceModel::misc(Nanos::from_millis(500)),
            ],
            // 48 GB as 6 x 8 GiB NVDIMMs (kept sparse, so cheap).
            NvramPool::uniform(6, ByteSize::gib(8)),
            Psu::atx_1050w(),
            Watts::new(350.0),
            Watts::new(200.0),
        )
    }

    /// The paper's low-power testbed: AMD 4180, 8 GB, 400 W PSU, 120 W
    /// busy / 60 W idle.
    #[must_use]
    pub fn amd_testbed() -> Self {
        Machine::new(
            CpuProfile::amd_4180(),
            vec![
                DeviceModel::gpu(Nanos::from_millis(2500)),
                DeviceModel::disk(),
                DeviceModel::nic(),
                DeviceModel::misc(Nanos::from_millis(400)),
            ],
            NvramPool::uniform(2, ByteSize::gib(4)),
            Psu::atx_400w(),
            Watts::new(120.0),
            Watts::new(60.0),
        )
    }

    /// Replaces the PSU (for the Figure 7 sweep).
    #[must_use]
    pub fn with_psu(mut self, psu: Psu) -> Self {
        self.psu = psu;
        self
    }

    /// The CPU profile.
    #[must_use]
    pub fn profile(&self) -> &CpuProfile {
        &self.profile
    }

    /// A flush analysis for this machine's caches.
    #[must_use]
    pub fn flush_analysis(&self) -> FlushAnalysis {
        FlushAnalysis::new(self.profile.clone())
    }

    /// The cores.
    #[must_use]
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Mutable core access (the save/restore routines own the contexts).
    pub fn cores_mut(&mut self) -> &mut [Core] {
        &mut self.cores
    }

    /// The devices.
    #[must_use]
    pub fn devices(&self) -> &[DeviceModel] {
        &self.devices
    }

    /// Mutable device access.
    pub fn devices_mut(&mut self) -> &mut [DeviceModel] {
        &mut self.devices
    }

    /// The NVDIMM pool.
    #[must_use]
    pub fn nvram(&self) -> &NvramPool {
        &self.nvram
    }

    /// Mutable NVDIMM pool access.
    pub fn nvram_mut(&mut self) -> &mut NvramPool {
        &mut self.nvram
    }

    /// The PSU.
    #[must_use]
    pub fn psu(&self) -> &Psu {
        &self.psu
    }

    /// The power-fail monitor.
    #[must_use]
    pub fn monitor(&self) -> &PowerMonitor {
        &self.monitor
    }

    /// System power draw at `load`.
    #[must_use]
    pub fn power_draw(&self, load: SystemLoad) -> Watts {
        match load {
            SystemLoad::Busy => self.busy_draw,
            SystemLoad::Idle => self.idle_draw,
        }
    }

    /// The residual energy window this machine's PSU provides at `load`.
    #[must_use]
    pub fn residual_window(&self, load: SystemLoad) -> Nanos {
        self.psu.residual_window(self.power_draw(load))
    }

    /// Applies a load level to the devices: busy queues a realistic
    /// complement of in-flight I/O (seeded, reproducible), idle drains
    /// everything.
    pub fn apply_load(&mut self, load: SystemLoad, seed: u64) {
        let mut rng = DetRng::seed_from_u64(seed);
        for d in &mut self.devices {
            // Reset the queue to the load level.
            d.power_cycle();
            let _ = d.reinit();
            if load == SystemLoad::Busy {
                let (count, max_ms) = match d.kind {
                    crate::DeviceKind::Disk => (12, 25),
                    crate::DeviceKind::Nic => (24, 4),
                    crate::DeviceKind::Gpu => (2, 8),
                    crate::DeviceKind::Misc => (4, 2),
                };
                for _ in 0..count {
                    d.submit(Nanos::from_millis(rng.gen_range(1..=max_ms)));
                }
            }
        }
    }

    /// Models the system losing power: NVDIMMs drop (flash images
    /// survive if saved), and every device is power-cycled, cancelling
    /// its in-flight I/O.
    pub fn system_power_loss(&mut self) {
        self.nvram.power_loss();
        for d in &mut self.devices {
            d.power_cycle();
        }
    }

    /// Re-applies system power: NVDIMMs come up in self-refresh awaiting
    /// restore; devices are cold and uninitialised.
    pub fn system_power_on(&mut self) {
        self.nvram.power_on();
    }

    /// Total dirty-cache estimate for `load` (the save path flushes at
    /// most this much): busy dirties the whole cache, idle a sliver.
    #[must_use]
    pub fn dirty_estimate(&self, load: SystemLoad) -> ByteSize {
        match load {
            SystemLoad::Busy => self.profile.machine_cache(),
            SystemLoad::Idle => self.profile.machine_cache() / 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbeds_match_paper_shape() {
        let intel = Machine::intel_testbed();
        let amd = Machine::amd_testbed();
        assert_eq!(intel.cores().len(), 8);
        assert_eq!(amd.cores().len(), 6);
        assert_eq!(intel.nvram().total_capacity(), ByteSize::gib(48));
        assert_eq!(amd.nvram().total_capacity(), ByteSize::gib(8));
        // Fig 7: Intel 1050 W busy window ~33 ms; AMD 400 W busy ~346 ms.
        let iw = intel.residual_window(SystemLoad::Busy).as_millis_f64();
        let aw = amd.residual_window(SystemLoad::Busy).as_millis_f64();
        assert!((iw - 33.0).abs() < 2.0, "intel window {iw}");
        assert!((aw - 346.0).abs() < 18.0, "amd window {aw}");
    }

    #[test]
    fn busy_load_queues_io_idle_drains_it() {
        let mut m = Machine::intel_testbed();
        m.apply_load(SystemLoad::Busy, 7);
        let busy_io: usize = m.devices().iter().map(DeviceModel::inflight).sum();
        assert!(busy_io > 20);
        m.apply_load(SystemLoad::Idle, 7);
        let idle_io: usize = m.devices().iter().map(DeviceModel::inflight).sum();
        assert_eq!(idle_io, 0);
    }

    #[test]
    fn load_application_is_deterministic() {
        let mut a = Machine::amd_testbed();
        let mut b = Machine::amd_testbed();
        a.apply_load(SystemLoad::Busy, 42);
        b.apply_load(SystemLoad::Busy, 42);
        let ta: Nanos = a.devices().iter().map(DeviceModel::suspend_time).sum();
        let tb: Nanos = b.devices().iter().map(DeviceModel::suspend_time).sum();
        assert_eq!(ta, tb);
    }

    #[test]
    fn with_psu_swaps_the_window() {
        let m = Machine::intel_testbed().with_psu(Psu::atx_750w());
        let w = m.residual_window(SystemLoad::Busy).as_millis_f64();
        assert!((w - 10.0).abs() < 1.0, "750W busy window {w}");
    }

    #[test]
    #[should_panic(expected = "busy draw below idle")]
    fn inverted_draws_rejected() {
        let _ = Machine::new(
            CpuProfile::intel_d510(),
            Vec::new(),
            NvramPool::uniform(1, ByteSize::mib(64)),
            Psu::atx_400w(),
            Watts::new(10.0),
            Watts::new(20.0),
        );
    }
}
