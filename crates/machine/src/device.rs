//! Device models: the part of machine state that NVRAM does *not*
//! protect. After a restore, devices have been power-cycled; their
//! in-memory driver state is stale and their in-flight I/O is gone —
//! the central complication of the paper's §4 "Device restart".

use std::collections::VecDeque;

use wsp_units::Nanos;

/// Device categories with distinct suspend/restart behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Rotating or solid-state storage; drains queued writes slowly.
    Disk,
    /// Network interface; drains quickly but has driver timeouts.
    Nic,
    /// Graphics; huge fixed suspend timeouts (and irrelevant to servers,
    /// as the paper notes).
    Gpu,
    /// Everything else (USB, timers, legacy bridges), aggregated.
    Misc,
}

/// One outstanding I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Request id (for replay/retry accounting).
    pub id: u64,
    /// Time needed to drain this request to the device.
    pub drain_time: Nanos,
}

/// A device with explicit in-flight I/O and D-state transitions.
///
/// # Examples
///
/// ```
/// use wsp_machine::DeviceModel;
/// use wsp_units::Nanos;
///
/// let mut disk = DeviceModel::disk();
/// disk.submit(Nanos::from_millis(20));
/// let suspend = disk.suspend_time();
/// assert!(suspend > DeviceModel::disk().suspend_time());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceModel {
    /// Device name.
    pub name: String,
    /// Category.
    pub kind: DeviceKind,
    /// Fixed cost of the driver's D3 (sleep) transition: quiesce,
    /// save device context, firmware handshakes, driver timeouts.
    pub suspend_fixed: Nanos,
    /// Fixed cost of re-initialising the device from scratch on the
    /// restore path.
    pub reinit_time: Nanos,
    inflight: VecDeque<IoRequest>,
    next_io_id: u64,
    /// I/Os cancelled by the last power cycle (must be retried or failed
    /// by the restart strategy).
    cancelled: u64,
}

impl DeviceModel {
    /// Creates a device.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        kind: DeviceKind,
        suspend_fixed: Nanos,
        reinit_time: Nanos,
    ) -> Self {
        DeviceModel {
            name: name.into(),
            kind,
            suspend_fixed,
            reinit_time,
            inflight: VecDeque::new(),
            next_io_id: 0,
            cancelled: 0,
        }
    }

    /// A SATA disk: slow quiesce (cache flush handshake, spindle
    /// settling) and the paging-file problem the paper mentions.
    #[must_use]
    pub fn disk() -> Self {
        Self::new(
            "disk",
            DeviceKind::Disk,
            Nanos::from_millis(1500),
            Nanos::from_millis(150),
        )
    }

    /// A server NIC: moderate driver timeouts.
    #[must_use]
    pub fn nic() -> Self {
        Self::new(
            "nic",
            DeviceKind::Nic,
            Nanos::from_millis(1100),
            Nanos::from_millis(120),
        )
    }

    /// A GPU: the dominant contributor to the paper's measured device
    /// save time (Figure 9) — and unnecessary on a server.
    #[must_use]
    pub fn gpu(suspend: Nanos) -> Self {
        Self::new("gpu", DeviceKind::Gpu, suspend, Nanos::from_millis(300))
    }

    /// The aggregated long tail of platform devices.
    #[must_use]
    pub fn misc(suspend: Nanos) -> Self {
        Self::new("misc", DeviceKind::Misc, suspend, Nanos::from_millis(60))
    }

    /// Queues an I/O that will take `drain_time` to complete.
    pub fn submit(&mut self, drain_time: Nanos) {
        self.inflight.push_back(IoRequest {
            id: self.next_io_id,
            drain_time,
        });
        self.next_io_id += 1;
    }

    /// Outstanding request count.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Requests cancelled by the last power cycle.
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Time to put the device into D3: drain every outstanding I/O, then
    /// the fixed driver transition. This is what the ACPI-suspend
    /// strawman pays *on the save path*.
    #[must_use]
    pub fn suspend_time(&self) -> Nanos {
        let drain: Nanos = self.inflight.iter().map(|io| io.drain_time).sum();
        drain + self.suspend_fixed
    }

    /// Completes the suspend: the queue drains.
    pub fn suspend(&mut self) -> Nanos {
        let t = self.suspend_time();
        self.inflight.clear();
        t
    }

    /// Models loss of power: device context vanishes and outstanding
    /// I/Os are cancelled (to be retried or failed after restore).
    pub fn power_cycle(&mut self) {
        self.cancelled += self.inflight.len() as u64;
        self.inflight.clear();
    }

    /// Re-initialises the device on the restore path; returns the time
    /// taken and clears the cancelled-I/O backlog (the caller decides
    /// retry vs fail).
    pub fn reinit(&mut self) -> (Nanos, u64) {
        let cancelled = std::mem::take(&mut self.cancelled);
        (self.reinit_time, cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspend_time_includes_drain() {
        let mut d = DeviceModel::disk();
        let idle = d.suspend_time();
        d.submit(Nanos::from_millis(20));
        d.submit(Nanos::from_millis(30));
        assert_eq!(d.suspend_time(), idle + Nanos::from_millis(50));
        let t = d.suspend();
        assert_eq!(t, idle + Nanos::from_millis(50));
        assert_eq!(d.inflight(), 0);
    }

    #[test]
    fn power_cycle_cancels_io() {
        let mut d = DeviceModel::nic();
        d.submit(Nanos::from_millis(1));
        d.submit(Nanos::from_millis(1));
        d.power_cycle();
        assert_eq!(d.inflight(), 0);
        assert_eq!(d.cancelled(), 2);
        let (t, cancelled) = d.reinit();
        assert_eq!(t, d.reinit_time);
        assert_eq!(cancelled, 2);
        assert_eq!(d.cancelled(), 0);
    }

    #[test]
    fn gpu_dominates_suspend() {
        let gpu = DeviceModel::gpu(Nanos::from_millis(3000));
        assert!(gpu.suspend_time() > DeviceModel::disk().suspend_time());
        assert!(gpu.suspend_time() > DeviceModel::nic().suspend_time());
    }

    #[test]
    fn reinit_is_much_cheaper_than_suspend() {
        for d in [
            DeviceModel::disk(),
            DeviceModel::nic(),
            DeviceModel::gpu(Nanos::from_millis(3000)),
        ] {
            assert!(
                d.reinit_time * 5 < d.suspend_time(),
                "{}: restore-path reinit should be far cheaper",
                d.name
            );
        }
    }
}
