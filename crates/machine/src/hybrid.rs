//! Hybrid DRAM + SCM memory systems (paper §6): a small fast DRAM
//! alongside a larger, slower storage-class memory, with the placement
//! question the paper raises — "automatically mapping objects and pages
//! to either DRAM or SCM to maximize overall performance" — modelled as
//! an average-access-latency analysis under different policies.
//!
//! Persistence note (also from §6): WSP works on such systems by making
//! the DRAM side NVDIMM-backed; placement affects performance only,
//! never durability.

use wsp_units::{ByteSize, Nanos};

/// Where pages live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Everything in SCM; DRAM unused (worst case baseline).
    AllScm,
    /// Pages striped across both tiers proportionally to capacity.
    StaticInterleave,
    /// The hot set (by access frequency) pinned in DRAM, cold pages in
    /// SCM — what a reasonable migrating policy converges to.
    HotInDram,
}

impl PlacementPolicy {
    /// All policies, worst first.
    #[must_use]
    pub fn all() -> [PlacementPolicy; 3] {
        [
            PlacementPolicy::AllScm,
            PlacementPolicy::StaticInterleave,
            PlacementPolicy::HotInDram,
        ]
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::AllScm => "all-SCM",
            PlacementPolicy::StaticInterleave => "static interleave",
            PlacementPolicy::HotInDram => "hot-in-DRAM",
        }
    }
}

/// A two-tier memory system with a skewed access pattern.
///
/// The workload model is the standard hot/cold split: a `hot_fraction`
/// of the pages receives `hot_access_share` of the accesses.
///
/// # Examples
///
/// ```
/// use wsp_machine::{HybridMemory, PlacementPolicy};
/// use wsp_units::{ByteSize, Nanos};
///
/// let hybrid = HybridMemory::typical(ByteSize::gib(32), ByteSize::gib(256));
/// let smart = hybrid.average_latency(PlacementPolicy::HotInDram);
/// let naive = hybrid.average_latency(PlacementPolicy::AllScm);
/// assert!(smart < naive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridMemory {
    /// DRAM (NVDIMM) tier capacity.
    pub dram: ByteSize,
    /// SCM tier capacity.
    pub scm: ByteSize,
    /// DRAM access latency.
    pub dram_latency: Nanos,
    /// SCM read latency (PCM: ~2× DRAM).
    pub scm_read_latency: Nanos,
    /// SCM write latency (PCM: 10–100× DRAM writes).
    pub scm_write_latency: Nanos,
    /// Fraction of pages that are hot.
    pub hot_fraction: f64,
    /// Fraction of accesses that hit the hot pages.
    pub hot_access_share: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
}

impl HybridMemory {
    /// A typical configuration: PCM-style asymmetry (reads 2×, writes
    /// 40× DRAM), 10 % of pages taking 90 % of the accesses, 30 %
    /// writes.
    #[must_use]
    pub fn typical(dram: ByteSize, scm: ByteSize) -> Self {
        HybridMemory {
            dram,
            scm,
            dram_latency: Nanos::new(65),
            scm_read_latency: Nanos::new(130),
            scm_write_latency: Nanos::new(2600),
            hot_fraction: 0.10,
            hot_access_share: 0.90,
            write_fraction: 0.30,
        }
    }

    /// Total capacity across tiers.
    #[must_use]
    pub fn total(&self) -> ByteSize {
        self.dram + self.scm
    }

    fn scm_access(&self) -> f64 {
        let r = self.scm_read_latency.as_nanos() as f64;
        let w = self.scm_write_latency.as_nanos() as f64;
        r * (1.0 - self.write_fraction) + w * self.write_fraction
    }

    /// Fraction of *accesses* served by DRAM under `policy`.
    #[must_use]
    pub fn dram_hit_share(&self, policy: PlacementPolicy) -> f64 {
        let dram_page_share =
            self.dram.as_u64() as f64 / self.total().as_u64() as f64;
        match policy {
            PlacementPolicy::AllScm => 0.0,
            PlacementPolicy::StaticInterleave => dram_page_share,
            PlacementPolicy::HotInDram => {
                // The hot set fits in DRAM when hot_fraction of total
                // pages <= DRAM pages; otherwise a proportional slice of
                // the hot traffic lands in DRAM.
                let hot_pages = self.hot_fraction;
                if hot_pages <= dram_page_share {
                    // All hot traffic in DRAM, plus the leftover DRAM
                    // space holding some cold pages.
                    let cold_in_dram =
                        (dram_page_share - hot_pages) / (1.0 - hot_pages);
                    self.hot_access_share
                        + (1.0 - self.hot_access_share) * cold_in_dram
                } else {
                    self.hot_access_share * (dram_page_share / hot_pages)
                }
            }
        }
    }

    /// Expected access latency under `policy`.
    #[must_use]
    pub fn average_latency(&self, policy: PlacementPolicy) -> Nanos {
        let dram_share = self.dram_hit_share(policy);
        let ns = self.dram_latency.as_nanos() as f64 * dram_share
            + self.scm_access() * (1.0 - dram_share);
        Nanos::from_secs_f64(ns * 1e-9)
    }

    /// Speedup of the smart policy over the all-SCM baseline.
    #[must_use]
    pub fn placement_speedup(&self) -> f64 {
        self.average_latency(PlacementPolicy::AllScm).as_nanos() as f64
            / self
                .average_latency(PlacementPolicy::HotInDram)
                .as_nanos()
                .max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> HybridMemory {
        HybridMemory::typical(ByteSize::gib(32), ByteSize::gib(256))
    }

    #[test]
    fn policy_ordering_is_strict() {
        let h = typical();
        let all_scm = h.average_latency(PlacementPolicy::AllScm);
        let interleave = h.average_latency(PlacementPolicy::StaticInterleave);
        let hot = h.average_latency(PlacementPolicy::HotInDram);
        assert!(hot < interleave, "{hot} !< {interleave}");
        assert!(interleave < all_scm, "{interleave} !< {all_scm}");
    }

    #[test]
    fn hot_set_fitting_in_dram_captures_most_traffic() {
        let h = typical(); // hot 10% of 288 GiB = 28.8 GiB < 32 GiB DRAM
        let share = h.dram_hit_share(PlacementPolicy::HotInDram);
        assert!(share >= 0.90, "share {share}");
        assert!(h.placement_speedup() > 3.0);
    }

    #[test]
    fn oversized_hot_set_degrades_gracefully() {
        let mut h = HybridMemory::typical(ByteSize::gib(8), ByteSize::gib(256));
        h.hot_fraction = 0.5; // 132 GiB of hot pages, 8 GiB of DRAM
        let share = h.dram_hit_share(PlacementPolicy::HotInDram);
        assert!(share < 0.20, "share {share}");
        // Still beats interleave (hot pages preferred).
        assert!(
            h.average_latency(PlacementPolicy::HotInDram)
                <= h.average_latency(PlacementPolicy::StaticInterleave)
        );
    }

    #[test]
    fn write_heavy_workloads_suffer_more_on_scm() {
        let mut read_heavy = typical();
        read_heavy.write_fraction = 0.05;
        let mut write_heavy = typical();
        write_heavy.write_fraction = 0.60;
        assert!(
            write_heavy.average_latency(PlacementPolicy::AllScm)
                > read_heavy.average_latency(PlacementPolicy::AllScm) * 3
        );
    }

    #[test]
    fn shares_are_probabilities() {
        let h = typical();
        for policy in PlacementPolicy::all() {
            let s = h.dram_hit_share(policy);
            assert!((0.0..=1.0).contains(&s), "{}: {s}", policy.label());
        }
    }
}
