//! The whole-system simulator: processors with architectural contexts,
//! devices with in-flight I/O, NVDIMM main memory, and a power supply —
//! the machine the WSP runtime (in `wsp-core`) drives through the
//! save/restore protocol of the paper's Figure 4.
//!
//! Two testbed machines mirror the paper's evaluation platforms:
//!
//! * [`Machine::intel_testbed`] — dual-socket Intel C5528, 48 GB of
//!   NVDIMM memory, a 1050 W PSU, and the usual server device complement
//!   (GPU, disk, NIC, miscellany);
//! * [`Machine::amd_testbed`] — single-socket AMD 4180, 8 GB, 400 W PSU.
//!
//! # Examples
//!
//! ```
//! use wsp_machine::{Machine, SystemLoad};
//!
//! let machine = Machine::intel_testbed();
//! let busy = machine.power_draw(SystemLoad::Busy);
//! let idle = machine.power_draw(SystemLoad::Idle);
//! assert!(busy > idle);
//! assert_eq!(machine.cores().len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod device;
mod hybrid;
mod machine;

pub use context::{Core, CpuContext};
pub use device::{DeviceKind, DeviceModel, IoRequest};
pub use hybrid::{HybridMemory, PlacementPolicy};
pub use machine::{Machine, SystemLoad};
