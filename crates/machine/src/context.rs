//! Processor cores and their architectural contexts: the transient state
//! the flush-on-fail save routine must park in NVRAM.


/// One core's architectural register state (the x86-64 context the save
/// routine writes to memory in Figure 4 step 2).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CpuContext {
    /// General-purpose registers (rax..r15).
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Stack pointer.
    pub rsp: u64,
    /// Flags register.
    pub rflags: u64,
    /// Control register 3 (page-table root) — restoring it is what makes
    /// the resumed kernel see the same address spaces.
    pub cr3: u64,
}

impl CpuContext {
    /// Serialized size in bytes (the save routine reserves this much per
    /// core in the resume block).
    pub const SIZE: u64 = (16 + 4) * 8;

    /// Serializes to the on-NVRAM layout.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::SIZE as usize);
        for r in self.gpr {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for r in [self.rip, self.rsp, self.rflags, self.cr3] {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out
    }

    /// Deserializes from the on-NVRAM layout.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`CpuContext::SIZE`].
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= Self::SIZE as usize, "short context image");
        let word = |i: usize| -> u64 {
            u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("aligned"))
        };
        let mut gpr = [0u64; 16];
        for (i, r) in gpr.iter_mut().enumerate() {
            *r = word(i);
        }
        CpuContext {
            gpr,
            rip: word(16),
            rsp: word(17),
            rflags: word(18),
            cr3: word(19),
        }
    }
}

/// A processor core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Core {
    /// Core id (0 is the control processor in the save protocol).
    pub id: u32,
    /// Architectural state.
    pub context: CpuContext,
    /// True once the save routine has halted this core.
    pub halted: bool,
}

impl Core {
    /// Creates a running core with a synthetic but distinctive context,
    /// so save/restore round-trips have real bits to lose.
    #[must_use]
    pub fn new(id: u32) -> Self {
        let mut context = CpuContext::default();
        for (i, r) in context.gpr.iter_mut().enumerate() {
            *r = u64::from(id) << 32 | i as u64;
        }
        context.rip = 0xffff_8000_0000_0000 + u64::from(id) * 0x1000;
        context.rsp = 0xffff_c000_0000_0000 + u64::from(id) * 0x10000;
        context.rflags = 0x202;
        context.cr3 = 0x1000 + u64::from(id) * 0x1000;
        Core {
            id,
            context,
            halted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips_through_bytes() {
        let core = Core::new(3);
        let bytes = core.context.to_bytes();
        assert_eq!(bytes.len() as u64, CpuContext::SIZE);
        assert_eq!(CpuContext::from_bytes(&bytes), core.context);
    }

    #[test]
    fn cores_have_distinct_contexts() {
        assert_ne!(Core::new(0).context, Core::new(1).context);
    }

    #[test]
    #[should_panic(expected = "short context image")]
    fn short_image_rejected() {
        let _ = CpuContext::from_bytes(&[0u8; 8]);
    }
}
