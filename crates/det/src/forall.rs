//! The property-test runner: randomized cases, deterministic seeds,
//! choice-stream shrinking, and a pinned regression corpus.
//!
//! # Reproducibility contract
//!
//! * Every run derives all entropy from one base seed. The default is a
//!   fixed constant, so CI runs are identical across machines.
//! * `WSP_DET_SEED=<u64>` overrides the base seed; `WSP_DET_CASES=<n>`
//!   overrides the case count.
//! * A failure report contains the seed, the case index, the shrunk
//!   value, and the shrunk choice stream — paste the stream into
//!   [`Forall::regression`] to pin the exact case forever.
//!
//! # Examples
//!
//! ```should_panic
//! use wsp_det::{forall, gen};
//!
//! // Fails and shrinks to a minimal counterexample near 100.
//! forall(gen::vec_of(gen::in_range(0..1000u64), 0..20usize), |v| {
//!     assert!(v.iter().all(|&x| x < 100), "found {v:?}");
//! });
//! ```

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::gen::Gen;
use crate::rng::DetRng;
use crate::source::Source;

/// Default base seed ("WSPDET" + revision); see module docs.
pub const DEFAULT_SEED: u64 = 0x5753_5044_4554_0001;

/// Default number of randomized cases per property.
pub const DEFAULT_CASES: usize = 32;

/// Upper bound on property re-evaluations spent shrinking one failure.
const MAX_SHRINK_EVALS: usize = 2048;

thread_local! {
    /// True while the runner probes candidate cases: panics are expected
    /// there and must not spam stderr through the global panic hook.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().map(|v| {
        v.trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {v:?}"))
    })
}

/// A configured property over values of `T`. See the module docs.
pub struct Forall<T> {
    gen: Gen<T>,
    cases: usize,
    seed: u64,
    regressions: Vec<Vec<u64>>,
}

impl<T: Debug + 'static> Forall<T> {
    /// A property over values from `gen`, with default seed and case
    /// count (both overridable via environment, see module docs).
    #[must_use]
    pub fn new(gen: Gen<T>) -> Self {
        Forall {
            gen,
            cases: env_u64("WSP_DET_CASES").map_or(DEFAULT_CASES, |n| n as usize),
            seed: env_u64("WSP_DET_SEED").unwrap_or(DEFAULT_SEED),
            regressions: Vec::new(),
        }
    }

    /// Sets the randomized case count (`WSP_DET_CASES` still wins).
    #[must_use]
    pub fn cases(mut self, n: usize) -> Self {
        if env_u64("WSP_DET_CASES").is_none() {
            self.cases = n;
        }
        self
    }

    /// Sets the base seed (`WSP_DET_SEED` still wins).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        if env_u64("WSP_DET_SEED").is_none() {
            self.seed = seed;
        }
        self
    }

    /// Pins a previously-found failing choice stream: it re-runs before
    /// any randomized case, every time, like proptest's regression
    /// files — but checked into the test source itself.
    #[must_use]
    pub fn regression(mut self, choices: &[u64]) -> Self {
        self.regressions.push(choices.to_vec());
        self
    }

    /// Runs the property: regression corpus first, then `cases`
    /// randomized cases. On failure, shrinks to a minimal
    /// counterexample and panics with a reproducible report.
    ///
    /// # Panics
    ///
    /// Panics when the property fails for any generated value.
    pub fn check(self, prop: impl Fn(&T)) {
        install_quiet_hook();

        let try_case = |choices: &[u64]| -> Result<(), (T, String)> {
            let mut src = Source::replay(choices.to_vec());
            let value = self.gen.generate(&mut src);
            QUIET.with(|q| q.set(true));
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(&value)));
            QUIET.with(|q| q.set(false));
            outcome.map_err(|payload| (value, panic_message(payload.as_ref())))
        };

        for (i, choices) in self.regressions.iter().enumerate() {
            if let Err((value, message)) = try_case(choices) {
                // Regression cases are already minimal; fail directly.
                panic!(
                    "wsp-det: pinned regression case {i} failed\n  value: {value:?}\n  \
                     choices: {choices:?}\n  cause: {message}"
                );
            }
        }

        let mut rng = DetRng::seed_from_u64(self.seed);
        for case in 0..self.cases {
            // Record the stream with a fresh generation pass...
            let mut src = Source::fresh(rng.split());
            let _ = self.gen.generate(&mut src);
            let choices = src.into_recorded();
            // ...then evaluate through the replay path so failure and
            // shrinking see the identical value.
            if try_case(&choices).is_ok() {
                continue;
            }
            let shrunk = shrink(choices, |c| try_case(c).is_err());
            let (value, message) =
                try_case(&shrunk).expect_err("shrunk stream must still fail");
            panic!(
                "wsp-det: property failed (case {case}/{}, seed {})\n  \
                 minimal value: {value:?}\n  \
                 choices: {shrunk:?}\n  \
                 cause: {message}\n  \
                 reproduce: WSP_DET_SEED={} (or pin with .regression(&{shrunk:?}))",
                self.cases, self.seed, self.seed,
            );
        }
    }
}

/// One-line form: `forall(gen, prop)` with default configuration.
///
/// # Panics
///
/// Panics when the property fails for any generated value.
pub fn forall<T: Debug + 'static>(gen: Gen<T>, prop: impl Fn(&T)) {
    Forall::new(gen).check(prop);
}

/// Greedily minimises a failing choice stream. `fails` must be a pure
/// function of the stream. Two passes alternate until a fixpoint (or
/// the evaluation budget runs out): chunk deletion (shorter stream ⇒
/// structurally smaller value) and per-word minimisation toward zero
/// (zero words decode to the smallest in-range scalars).
fn shrink(mut current: Vec<u64>, fails: impl Fn(&[u64]) -> bool) -> Vec<u64> {
    let mut evals = 0usize;
    let budget = |evals: &mut usize| {
        *evals += 1;
        *evals <= MAX_SHRINK_EVALS
    };
    loop {
        let mut improved = false;

        // Pass 1: delete chunks, largest first.
        let mut chunk = current.len().max(1) / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= current.len() {
                let mut candidate = current.clone();
                candidate.drain(start..start + chunk);
                if !budget(&mut evals) {
                    return current;
                }
                if fails(&candidate) {
                    current = candidate;
                    improved = true;
                    // Same start now names the next chunk.
                } else {
                    start += chunk;
                }
            }
            chunk /= 2;
        }

        // Pass 2: minimise individual words toward zero (zero first,
        // then binary descent).
        for i in 0..current.len() {
            if current[i] == 0 {
                continue;
            }
            let original = current[i];
            current[i] = 0;
            if !budget(&mut evals) {
                current[i] = original;
                return current;
            }
            if fails(&current) {
                improved = true;
                continue;
            }
            current[i] = original;
            // Binary search the smallest failing value in (0, original].
            let mut lo = 0u64;
            let mut hi = original;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                current[i] = mid;
                if !budget(&mut evals) {
                    current[i] = hi;
                    return current;
                }
                if fails(&current) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if hi != original {
                improved = true;
            }
            current[i] = hi;
        }

        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_clean() {
        Forall::new(gen::vec_of(gen::in_range(0..50u64), 0..20usize))
            .cases(64)
            .check(|v| assert!(v.iter().all(|&x| x < 50)));
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        let caught = panic::catch_unwind(|| {
            Forall::new(gen::vec_of(gen::in_range(0..1000u64), 0..30usize))
                .seed(7)
                .cases(200)
                .check(|v| assert!(v.iter().all(|&x| x < 500), "big element"));
        })
        .expect_err("property must fail");
        let message = if let Some(s) = caught.downcast_ref::<String>() {
            s.clone()
        } else {
            panic!("expected String panic payload");
        };
        // The minimal counterexample is a single-element vector holding
        // exactly the boundary value 500.
        assert!(
            message.contains("minimal value: [500]"),
            "shrink fell short: {message}"
        );
    }

    #[test]
    fn failure_reports_are_deterministic() {
        let run = || {
            panic::catch_unwind(|| {
                Forall::new(gen::pair(gen::any::<u8>(), gen::any::<u8>()))
                    .seed(11)
                    .cases(100)
                    .check(|&(a, b)| assert!(u32::from(a) + u32::from(b) < 300));
            })
            .expect_err("must fail")
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload")
        };
        assert_eq!(run(), run(), "same seed, same report, byte for byte");
    }

    #[test]
    fn regression_cases_run_first_and_fail_loud() {
        let caught = panic::catch_unwind(|| {
            // u64::MAX decodes to the top of the range (9) under the
            // multiply-shift sampler.
            Forall::new(gen::in_range(0..10u64))
                .regression(&[u64::MAX])
                .cases(0)
                .check(|&v| assert!(v < 9, "v={v}"));
        })
        .expect_err("regression must fail");
        let message = caught.downcast_ref::<String>().cloned().unwrap();
        assert!(message.contains("pinned regression case 0"), "{message}");
    }

    #[test]
    fn different_seeds_explore_different_cases() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..5u64 {
            let first = Cell::new(None);
            Forall::new(gen::any::<u64>())
                .seed(seed)
                .cases(1)
                .check(|&v| {
                    if first.get().is_none() {
                        first.set(Some(v));
                    }
                });
            seen.insert(first.get().unwrap());
        }
        assert!(seen.len() >= 4, "seeds barely vary: {seen:?}");
    }

    #[test]
    fn shrink_handles_interdependent_draws() {
        // Value validity depends on earlier draws (length prefix); the
        // shrinker must still find a small failing stream.
        let caught = panic::catch_unwind(|| {
            Forall::new(gen::vec_of(
                gen::pair(gen::in_range(0..100u64), gen::any::<bool>()),
                0..40usize,
            ))
            .seed(3)
            .cases(300)
            .check(|v| assert!(!v.iter().any(|&(x, flag)| flag && x >= 90)));
        })
        .expect_err("must fail");
        let message = caught.downcast_ref::<String>().cloned().unwrap();
        assert!(
            message.contains("minimal value: [(90, true)]"),
            "shrink fell short: {message}"
        );
    }
}
