//! Seeded, splittable pseudo-random number generation.
//!
//! Two generators, both tiny, fast, and dependency-free:
//!
//! * [`SplitMix64`] — the 64-bit state seeder of Steele, Lea & Flood.
//!   Used to expand a single `u64` seed into larger state and to derive
//!   independent streams.
//! * [`DetRng`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!   generator behind every randomized simulation in the workspace.
//!
//! The [`Rng`] extension trait mirrors the subset of the `rand` crate
//! API the workspace uses (`gen`, `gen_range`, `gen_bool`,
//! `fill_bytes`), so call sites read the same while the streams stay
//! bit-reproducible across platforms and releases.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64: a tiny generator whose only job is seeding and stream
/// splitting. Passes BigCrush on its own, but [`DetRng`] is preferred
/// for bulk use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// 256 bits of state, period 2^256 − 1, and a `split` operation that
/// derives an independent stream — enough for per-shard, per-worker and
/// per-test generators that never correlate.
///
/// # Examples
///
/// ```
/// use wsp_det::{DetRng, Rng, RngCore};
///
/// let mut a = DetRng::seed_from_u64(42);
/// let mut b = DetRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let roll = a.gen_range(1..=6u64);
/// assert!((1..=6).contains(&roll));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Expands a 64-bit seed into full state via [`SplitMix64`], exactly
    /// as Vigna recommends. Identical seeds yield identical streams on
    /// every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        DetRng { s }
    }

    /// Derives a statistically independent generator, advancing `self`.
    /// Splitting then drawing from both streams never correlates them.
    #[must_use]
    pub fn split(&mut self) -> DetRng {
        // Re-expanding a drawn word through SplitMix64 decorrelates the
        // child from the parent's subsequent output.
        DetRng::seed_from_u64(self.next_u64())
    }
}

impl RngCore for DetRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Uniform in `[0, n)` by Lemire's multiply-shift rejection. The
/// rejection loop is capped so a degenerate source (the all-zeros
/// replay tail used while shrinking) cannot spin forever; the residual
/// bias after eight redraws is below 2⁻⁸ in the worst case and
/// immaterial for simulation and testing.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        for _ in 0..8 {
            if lo >= threshold {
                break;
            }
            x = rng.next_u64();
            m = u128::from(x) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type a range of which can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    // The full u64/i64 domain: every word is valid.
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let v: f64 = (f64::from(self.start)..f64::from(self.end)).sample_from(rng);
        v as f32
    }
}

/// Types drawable uniformly over their whole domain (the `rand` crate's
/// `Standard` distribution, for the types the workspace uses).
pub trait Sample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_int_impls {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

sample_int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Convenience methods every [`RngCore`] gets for free, mirroring the
/// `rand::Rng` surface the workspace uses.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain (floats: `[0, 1)`).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self) < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the canonical C code seeded
        // with splitmix64(1), verified against the published reference
        // implementation.
        let mut rng = DetRng::seed_from_u64(1);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = DetRng::seed_from_u64(1);
        let twice: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, twice, "stream must be reproducible");
        assert_ne!(got[0], got[1]);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Known-good vector for splitmix64 with seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut parent1 = DetRng::seed_from_u64(99);
        let mut parent2 = DetRng::seed_from_u64(99);
        let mut child1 = parent1.split();
        let mut child2 = parent2.split();
        for _ in 0..16 {
            assert_eq!(child1.next_u64(), child2.next_u64());
            assert_eq!(parent1.next_u64(), parent2.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(-0.03..0.03);
            assert!((-0.03..0.03).contains(&f));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = DetRng::seed_from_u64(11);
        // Must not panic or loop: the span overflows u64.
        let _ = rng.gen_range(0..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = DetRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "p=0.25 gave {heads}/10000");
    }

    #[test]
    fn unit_floats_stay_in_half_open_interval() {
        let mut rng = DetRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_tail() {
        let mut a = DetRng::seed_from_u64(21);
        let mut b = DetRng::seed_from_u64(21);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5u64);
    }
}
