//! Composable value generators for the property-test harness.
//!
//! A [`Gen<T>`] is a pure function from a choice [`Source`] to a `T`.
//! Combinators (`map`, [`one_of`], [`weighted`], [`vec_of`], tuple
//! zips) compose generators without any per-type shrinking logic:
//! shrinking happens on the underlying choice stream (see
//! [`crate::forall`]).

use std::rc::Rc;

use crate::rng::{Rng, Sample, SampleRange};
use crate::source::Source;

/// A generator of `T` values driven by a choice stream.
#[derive(Clone)]
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T: 'static> Gen<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Produces one value from `source`.
    pub fn generate(&self, source: &mut Source) -> T {
        (self.f)(source)
    }

    /// A generator applying `g` to every generated value.
    #[must_use]
    pub fn map<U: 'static>(self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| g((self.f)(src)))
    }
}

/// Always generates clones of `value`.
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Uniform over `T`'s whole domain (proptest's `any::<T>()`).
pub fn any<T: Sample + 'static>() -> Gen<T> {
    Gen::new(|src| src.gen::<T>())
}

/// Uniform over `range`.
pub fn in_range<T, S>(range: S) -> Gen<T>
where
    T: 'static,
    S: SampleRange<T> + Clone + 'static,
{
    Gen::new(move |src| src.gen_range(range.clone()))
}

/// Picks one of `choices` uniformly, then generates from it.
///
/// # Panics
///
/// Panics if `choices` is empty.
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of with no choices");
    Gen::new(move |src| {
        let i = src.gen_range(0..choices.len());
        choices[i].generate(src)
    })
}

/// Picks among `choices` with the given relative weights (proptest's
/// weighted `prop_oneof!`). Lower indices correspond to smaller choice
/// words, so shrinking drifts toward the first variant.
///
/// # Panics
///
/// Panics if `choices` is empty or all weights are zero.
pub fn weighted<T: 'static>(choices: Vec<(u32, Gen<T>)>) -> Gen<T> {
    let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "weighted with no weight");
    Gen::new(move |src| {
        let mut roll = src.gen_range(0..total);
        for (w, g) in &choices {
            if roll < u64::from(*w) {
                return g.generate(src);
            }
            roll -= u64::from(*w);
        }
        unreachable!("roll exceeds total weight")
    })
}

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `elem`.
pub fn vec_of<T: 'static>(elem: Gen<T>, len: impl SampleRange<usize> + Clone + 'static) -> Gen<Vec<T>> {
    Gen::new(move |src| {
        let n = src.gen_range(len.clone());
        (0..n).map(|_| elem.generate(src)).collect()
    })
}

/// Zips two generators into a tuple generator.
pub fn pair<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |src| (a.generate(src), b.generate(src)))
}

/// Zips three generators into a tuple generator.
pub fn triple<A: 'static, B: 'static, C: 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    Gen::new(move |src| (a.generate(src), b.generate(src), c.generate(src)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn run<T: 'static>(g: &Gen<T>, seed: u64) -> T {
        let mut src = Source::fresh(DetRng::seed_from_u64(seed));
        g.generate(&mut src)
    }

    #[test]
    fn map_composes() {
        let g = in_range(0..10u64).map(|v| v * 2);
        for seed in 0..50 {
            let v = run(&g, seed);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn vec_of_respects_length_range() {
        let g = vec_of(any::<u8>(), 1..8usize);
        for seed in 0..50 {
            let v = run(&g, seed);
            assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn weighted_hits_every_arm_and_respects_ratios() {
        let g = weighted(vec![(3, constant(0u8)), (1, constant(1u8))]);
        let mut counts = [0u32; 2];
        let mut src = Source::fresh(DetRng::seed_from_u64(4));
        for _ in 0..4000 {
            counts[g.generate(&mut src) as usize] += 1;
        }
        assert!(counts[0] > 2 * counts[1], "3:1 weighting skewed: {counts:?}");
        assert!(counts[1] > 0);
    }

    #[test]
    fn replay_regenerates_identical_value() {
        let g = vec_of(pair(any::<u8>(), in_range(0..1000u64)), 1..20usize);
        let mut src = Source::fresh(DetRng::seed_from_u64(77));
        let first = g.generate(&mut src);
        let mut rep = Source::replay(src.into_recorded());
        let second = g.generate(&mut rep);
        assert_eq!(first, second);
    }

    #[test]
    fn zero_stream_generates_minimal_value() {
        // The all-zeros stream is the "simplest" value by construction:
        // minimum length, minimum elements, first one_of variant.
        let g = vec_of(in_range(5..100u64), 1..10usize);
        let mut src = Source::replay(Vec::new());
        assert_eq!(g.generate(&mut src), vec![5]);
    }
}
