//! The choice stream: the recorded sequence of raw `u64` draws a
//! generator consumed while producing a value.
//!
//! Shrinking operates on this stream, Hypothesis-style: a failing case
//! is re-derived from ever-simpler streams (shorter, smaller words)
//! until no simpler stream still fails. Because generators are total
//! functions of the stream — draws past the end read as zero — every
//! mutation of the stream maps to *some* valid generated value, so
//! shrinking works through `map`, `one_of` and friends with no
//! per-generator shrink code.

use crate::rng::{DetRng, RngCore};

/// Where a [`Source`] gets words once the replay prefix is exhausted.
#[derive(Debug)]
enum Tail {
    /// Fresh entropy (generation mode).
    Fresh(DetRng),
    /// Zeros (replay/shrink mode: the value must be a pure function of
    /// the recorded stream).
    Zeros,
}

/// A recording/replaying word source handed to generators.
#[derive(Debug)]
pub struct Source {
    replay: Vec<u64>,
    pos: usize,
    tail: Tail,
    record: Vec<u64>,
}

impl Source {
    /// A generating source: draws come from `rng`, and are recorded.
    #[must_use]
    pub fn fresh(rng: DetRng) -> Self {
        Source {
            replay: Vec::new(),
            pos: 0,
            tail: Tail::Fresh(rng),
            record: Vec::new(),
        }
    }

    /// A replaying source: draws come from `choices`, then zeros.
    #[must_use]
    pub fn replay(choices: Vec<u64>) -> Self {
        Source {
            replay: choices,
            pos: 0,
            tail: Tail::Zeros,
            record: Vec::new(),
        }
    }

    /// Every word drawn so far, in order.
    #[must_use]
    pub fn recorded(&self) -> &[u64] {
        &self.record
    }

    /// Consumes the source, returning the recorded stream.
    #[must_use]
    pub fn into_recorded(self) -> Vec<u64> {
        self.record
    }
}

impl RngCore for Source {
    fn next_u64(&mut self) -> u64 {
        let word = if self.pos < self.replay.len() {
            let w = self.replay[self.pos];
            self.pos += 1;
            w
        } else {
            match &mut self.tail {
                Tail::Fresh(rng) => rng.next_u64(),
                Tail::Zeros => 0,
            }
        };
        self.record.push(word);
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn fresh_source_records_every_draw() {
        let mut src = Source::fresh(DetRng::seed_from_u64(1));
        let a = src.next_u64();
        let b = src.gen_range(0..100u64);
        assert_eq!(src.recorded().len(), 2);
        assert_eq!(src.recorded()[0], a);
        let _ = b;
    }

    #[test]
    fn replay_reproduces_then_zeroes() {
        let mut gen_src = Source::fresh(DetRng::seed_from_u64(9));
        let orig: Vec<u64> = (0..5).map(|_| gen_src.next_u64()).collect();
        let mut rep = Source::replay(gen_src.into_recorded());
        let replayed: Vec<u64> = (0..5).map(|_| rep.next_u64()).collect();
        assert_eq!(orig, replayed);
        assert_eq!(rep.next_u64(), 0, "past the prefix reads zero");
    }
}
