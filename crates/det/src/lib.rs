//! # wsp-det — hermetic deterministic-simulation substrate
//!
//! Everything randomized in the WSP reproduction flows through this
//! crate: a seeded, splittable PRNG ([`DetRng`], xoshiro256++ seeded by
//! SplitMix64) behind a [`Rng`] trait mirroring the `rand` API surface
//! the workspace uses, and a minimal shrinking property-test harness
//! ([`forall`]/[`Forall`]) replacing `proptest`. Zero dependencies, so
//! `cargo build`/`cargo test` never touch a registry — the build is
//! fully offline and every stream is bit-reproducible across platforms.
//!
//! # Randomness
//!
//! ```
//! use wsp_det::{DetRng, Rng};
//!
//! let mut rng = DetRng::seed_from_u64(42);
//! let lane = rng.gen_range(0..8u32);
//! let p = rng.gen_bool(0.5);
//! let worker_rng = rng.split(); // independent stream for a subtask
//! # let _ = (lane, p, worker_rng);
//! ```
//!
//! # Property tests
//!
//! ```
//! use wsp_det::{forall, gen};
//!
//! forall(gen::vec_of(gen::any::<u8>(), 0..16usize), |v| {
//!     let mut sorted = v.clone();
//!     sorted.sort_unstable();
//!     assert_eq!(sorted.len(), v.len());
//! });
//! ```
//!
//! Failures shrink to a minimal counterexample and report the seed and
//! choice stream; `WSP_DET_SEED` / `WSP_DET_CASES` override the base
//! seed and case count process-wide. See [`forall`] module docs for the
//! full reproducibility contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forall;
pub mod gen;
pub mod rng;
pub mod source;

pub use forall::{forall, Forall, DEFAULT_CASES, DEFAULT_SEED};
pub use gen::Gen;
pub use rng::{DetRng, Rng, RngCore, Sample, SampleRange, SplitMix64};
pub use source::Source;
