//! Fixed-slot metrics: counters, gauges and latency histograms.
//!
//! Every metric has a compile-time identifier, so the hot path is an
//! array increment — no hashing, no allocation, no string comparison.
//! Snapshots are mergeable (sharded sweep workers each accumulate their
//! own slab; the sweep merges them in deterministic point order) and
//! export to JSON.

use wsp_units::{LatencyHistogram, Nanos};

macro_rules! metric_ids {
    ($(#[$meta:meta])* $vis:vis enum $name:ident { $($(#[$vmeta:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        $vis enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// Every identifier, in slot order.
            $vis const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of slots.
            $vis const COUNT: usize = $name::ALL.len();

            /// Stable metric name used in JSON exports.
            #[must_use]
            $vis fn label(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }

            /// Slot index.
            #[must_use]
            $vis fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metric_ids! {
    /// Monotonic event counters across the save/restore/faultsim stack.
    pub enum Ctr {
        /// Figure-4 save steps executed.
        SaveSteps => "save.steps",
        /// Plain saves that completed inside the window.
        SavesCompleted => "save.completed",
        /// Plain saves truncated by an injected fault or the window.
        SavesInterrupted => "save.interrupted",
        /// Supervised saves ending `Complete`.
        SupervisedComplete => "supervisor.complete",
        /// Supervised saves ending `PartialPriority`.
        SupervisedPartial => "supervisor.partial",
        /// Supervised saves ending `Failed`.
        SupervisedFailed => "supervisor.failed",
        /// Glitch storms the debounce filter absorbed.
        GlitchesIgnored => "supervisor.glitches_ignored",
        /// Valid markers written.
        ValidMarkers => "supervisor.valid_markers",
        /// Partial markers written.
        PartialMarkers => "supervisor.partial_markers",
        /// NVDIMM save-command retries absorbed by backoff.
        NvdimmSaveRetries => "nvram.save_retries",
        /// NVDIMM save commands that exhausted their retry budget.
        NvdimmSaveFailures => "nvram.save_failures",
        /// NVDIMM modules armed (save command accepted).
        NvdimmModulesArmed => "nvram.modules_armed",
        /// Restore attempts started.
        RestoreAttempts => "restore.attempts",
        /// Restore refusals (typed `WspError` returns).
        RestoreRefusals => "restore.refusals",
        /// Recovery-ladder rungs attempted.
        RungAttempts => "ladder.rung_attempts",
        /// Ladder rungs that refused and passed the climb downward.
        RungRefusals => "ladder.rung_refusals",
        /// Power cycles taken by crashes during recovery.
        PowerCycles => "ladder.power_cycles",
        /// Ladder runs ending `Recovered`.
        LadderRecovered => "ladder.recovered",
        /// Ladder runs ending `Degraded`.
        LadderDegraded => "ladder.degraded",
        /// Cluster back-end rebuilds performed (bottom rung reached).
        ClusterRebuilds => "cluster.rebuilds",
        /// Heap transactions committed.
        TxCommits => "pheap.commits",
        /// Heap transactions aborted or rolled back.
        TxAborts => "pheap.aborts",
        /// Heap commits refused by STM validation.
        TxConflicts => "pheap.conflicts",
        /// Priority (stage-A) flushes run.
        PriorityFlushes => "pheap.priority_flushes",
        /// Committed data lines made durable by priority flushes.
        PriorityLinesFlushed => "pheap.priority_lines",
        /// `wbinvd` walks of the simulated hierarchy.
        WbinvdWalks => "cache.wbinvd_walks",
        /// Dirty lines written back by `wbinvd` walks.
        WbinvdLinesWritten => "cache.wbinvd_lines",
        /// Faults injected by the sweep engines.
        FaultsInjected => "faultsim.faults_injected",
        /// Durability epochs sealed by the group-commit mode.
        EpochSeals => "pheap.epoch_seals",
        /// Transactions absorbed into sealed epochs.
        EpochTxs => "pheap.epoch_txs",
        /// Duplicate dirty-line flushes coalesced away by epoch sealing.
        EpochLinesCoalesced => "pheap.epoch_coalesced_lines",
        /// KV server commands executed.
        KvOps => "kv.ops",
        /// KV shard result merges performed (one per shard, in shard order).
        KvShardMerges => "kv.shard_merges",
        /// Cross-shard 2PC phase-1 PREPARED records made durable.
        TxnPrepares => "txn.prepares",
        /// Coordinator decision markers made durable.
        TxnDecisions => "txn.decisions",
        /// Fenced group-decision records sealed (each covers one or
        /// more decided gtxids; the batching denominator is
        /// [`Hist::TxnDecisionsPerGroup`]).
        TxnDecisionGroups => "txn.decision_groups",
        /// Per-shard phase-2 commit markers made durable.
        TxnShardCommits => "txn.shard_commits",
        /// Cross-shard transactions aborted (coordinator-initiated or
        /// presumed on recovery).
        TxnAborts => "txn.aborts",
        /// In-doubt shard transactions resolved against the
        /// coordinator's decision log on recovery.
        TxnInDoubtResolved => "txn.indoubt_resolved",
        /// Persistence actions (log record + eventual flush) elided by
        /// the FliT per-word tracking table: the word already had a
        /// pending record, so the write updated it in place.
        FlushSkipped => "pheap.flush_skipped",
        /// Line flushes actually issued by seal/truncation walks — the
        /// denominator for FliT elision rates.
        FlushIssued => "pheap.flush_issued",
        /// Shared-power-domain triage passes: each one ranks every
        /// shard and carves the global window into staged budgets.
        DomainTriageRuns => "domain.triage_runs",
        /// Shards the domain triage sacrificed (no durable image; a
        /// typed refusal routed them to the cluster-rebuild rung).
        ShardsSacrificed => "domain.shards_sacrificed",
        /// Sequential micro-outages fired by the power-storm scenario
        /// family.
        StormOutages => "faultsim.storm_outages",
        /// Committed cross-shard writes re-applied to a rebuilt shard
        /// from the coordinator's routing log.
        TxnReroutedWrites => "txn.rerouted_writes",
        /// Lock-free structure operations completed (all kinds).
        LockfreeOps => "lockfree.ops",
        /// CAS attempts issued by lock-free operations (linearizing
        /// and help-note).
        LockfreeCas => "lockfree.cas_attempts",
        /// CAS attempts that lost a race and retried.
        LockfreeCasConflicts => "lockfree.cas_conflicts",
        /// Help notes recorded before overwriting another thread's
        /// tagged value.
        LockfreeHelps => "lockfree.helps",
        /// Post-crash detectability classifications performed.
        LockfreeRecoveries => "lockfree.recoveries",
        /// Detectability classifications refused with a typed error
        /// (torn descriptor / unresolvable operation).
        LockfreeRefusals => "lockfree.refusals",
    }
}

metric_ids! {
    /// Last-value gauges.
    pub enum Gauge {
        /// Committed-but-unflushed heap lines (stage-A working set).
        UnflushedLines => "pheap.unflushed_lines",
        /// The most recently budgeted residual window, in nanoseconds.
        ResidualWindow => "supervisor.residual_window_ns",
        /// Dirty bytes the last bulk-flush estimate covered.
        DirtyEstimate => "save.dirty_estimate_bytes",
        /// Shortfall of the shared domain window against the fleet's
        /// total full-save demand at the last triage, in nanoseconds
        /// (zero when every shard fit a complete save).
        WindowDeficit => "power.window_deficit",
    }
}

metric_ids! {
    /// Latency histograms (simulated time, recorded via
    /// [`LatencyHistogram`]).
    pub enum Hist {
        /// Per-step save-path times.
        SaveStep => "save.step_time",
        /// Total save-path times.
        SaveTotal => "save.total",
        /// Supervised-save wall clock (`used`).
        SupervisorUsed => "supervisor.used",
        /// Stage-A (priority flush) times.
        StageA => "supervisor.stage_a",
        /// Stage-B (bulk flush) times.
        StageB => "supervisor.stage_b",
        /// Restore-path totals.
        RestoreTotal => "restore.total",
        /// Terminal recovery times reported by the ladder.
        RecoveryTook => "ladder.took",
        /// Per-commit simulated heap time.
        TxCommit => "pheap.commit_time",
        /// `wbinvd` walk latencies.
        Wbinvd => "cache.wbinvd_time",
        /// Epoch-seal (group-commit flush + marker) latencies.
        EpochSeal => "pheap.epoch_seal_time",
        /// Per-command simulated KV service time.
        KvOp => "kv.op_time",
        /// End-to-end cross-shard 2PC commit latencies (prepare through
        /// last shard commit, simulated time).
        TxnCommit => "txn.commit_time",
        /// Foreground time an epoch seal actually cost after pipelining:
        /// seal execution minus the portion overlapped with the commits
        /// that ran since the batch was staged. Zero means the seal hid
        /// completely behind foreground work.
        SealStall => "pheap.seal_stall_time",
        /// Decided gtxids covered per sealed group-decision record.
        /// Counts, not times: recorded as `Nanos::new(count)` so the
        /// fixed-slot histogram machinery can track the distribution.
        TxnDecisionsPerGroup => "txn.decisions_per_group",
        /// Time a decided gtxid waited in the coordinator's buffer
        /// before its group record was sealed (simulated clock).
        TxnDecisionStall => "txn.decision_stall_time",
        /// Wall clock consumed by domain-supervised (multi-shard
        /// triage) saves.
        DomainUsed => "domain.used",
        /// Per-operation simulated time of lock-free structure ops.
        LockfreeOp => "lockfree.op_time",
    }
}

/// A mergeable point-in-time copy of every metric slot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub(crate) counters: Vec<u64>,
    pub(crate) gauges: Vec<i64>,
    pub(crate) hists: Vec<LatencyHistogram>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot.
    #[must_use]
    pub fn empty() -> Self {
        MetricsSnapshot {
            counters: vec![0; Ctr::COUNT],
            gauges: vec![0; Gauge::COUNT],
            hists: vec![LatencyHistogram::new(); Hist::COUNT],
        }
    }

    /// Value of one counter.
    #[must_use]
    pub fn counter(&self, id: Ctr) -> u64 {
        self.counters[id.index()]
    }

    /// Value of one gauge.
    #[must_use]
    pub fn gauge(&self, id: Gauge) -> i64 {
        self.gauges[id.index()]
    }

    /// One latency histogram.
    #[must_use]
    pub fn hist(&self, id: Hist) -> &LatencyHistogram {
        &self.hists[id.index()]
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().all(|h| h.count() == 0)
    }

    /// Merges `other` into `self` (counters add, gauges take the other's
    /// value when it was touched, histograms merge populations).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, &b) in self.gauges.iter_mut().zip(&other.gauges) {
            if b != 0 {
                *a = b;
            }
        }
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Exports every non-zero metric as one JSON object: counters and
    /// gauges by label, histograms as `{count, p50, p95, p99, max}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for &id in Ctr::ALL {
            let v = self.counter(id);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", id.label()));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for &id in Gauge::ALL {
            let v = self.gauge(id);
            if v == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{v}", id.label()));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for &id in Hist::ALL {
            let h = self.hist(id);
            if h.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                id.label(),
                h.count(),
                h.percentile(50.0).as_nanos(),
                h.percentile(95.0).as_nanos(),
                h.percentile(99.0).as_nanos(),
                h.max().as_nanos(),
            ));
        }
        out.push_str("}}");
        out
    }

    /// A readable first-difference report against `other`, or `None`
    /// when every slot matches. Used by the `parallel_*_matches_serial`
    /// contract tests to explain a sharding-order regression.
    #[must_use]
    pub fn first_difference(&self, other: &MetricsSnapshot) -> Option<String> {
        for &id in Ctr::ALL {
            if self.counter(id) != other.counter(id) {
                return Some(format!(
                    "counter {}: {} vs {}",
                    id.label(),
                    self.counter(id),
                    other.counter(id)
                ));
            }
        }
        for &id in Gauge::ALL {
            if self.gauge(id) != other.gauge(id) {
                return Some(format!(
                    "gauge {}: {} vs {}",
                    id.label(),
                    self.gauge(id),
                    other.gauge(id)
                ));
            }
        }
        for &id in Hist::ALL {
            if self.hist(id) != other.hist(id) {
                return Some(format!(
                    "histogram {}: count {} vs {}",
                    id.label(),
                    self.hist(id).count(),
                    other.hist(id).count()
                ));
            }
        }
        None
    }

    pub(crate) fn record(&mut self, id: Hist, value: Nanos) {
        self.hists[id.index()].record(value);
    }
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut seen: Vec<&str> = Vec::new();
        for &c in Ctr::ALL {
            assert!(!c.label().is_empty());
            assert!(!seen.contains(&c.label()), "{}", c.label());
            seen.push(c.label());
        }
        for &g in Gauge::ALL {
            assert!(!seen.contains(&g.label()), "{}", g.label());
            seen.push(g.label());
        }
        for &h in Hist::ALL {
            assert!(!seen.contains(&h.label()), "{}", h.label());
            seen.push(h.label());
        }
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsSnapshot::empty();
        let mut b = MetricsSnapshot::empty();
        a.counters[Ctr::TxCommits.index()] = 2;
        b.counters[Ctr::TxCommits.index()] = 3;
        b.gauges[Gauge::UnflushedLines.index()] = 7;
        a.record(Hist::TxCommit, Nanos::new(100));
        b.record(Hist::TxCommit, Nanos::new(200));
        a.merge(&b);
        assert_eq!(a.counter(Ctr::TxCommits), 5);
        assert_eq!(a.gauge(Gauge::UnflushedLines), 7);
        assert_eq!(a.hist(Hist::TxCommit).count(), 2);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        assert!(MetricsSnapshot::empty().is_empty());
        let mut m = MetricsSnapshot::empty();
        m.counters[0] = 1;
        assert!(!m.is_empty());
    }

    #[test]
    fn json_skips_zero_slots() {
        let mut m = MetricsSnapshot::empty();
        m.counters[Ctr::TxCommits.index()] = 4;
        m.record(Hist::SaveTotal, Nanos::new(1000));
        let json = m.to_json();
        assert!(json.contains("\"pheap.commits\":4"), "{json}");
        assert!(json.contains("\"save.total\""), "{json}");
        assert!(!json.contains("pheap.aborts"), "{json}");
    }

    #[test]
    fn first_difference_names_the_slot() {
        let mut a = MetricsSnapshot::empty();
        let b = MetricsSnapshot::empty();
        a.counters[Ctr::PowerCycles.index()] = 1;
        let d = a.first_difference(&b).unwrap();
        assert!(d.contains("ladder.power_cycles"), "{d}");
        assert!(MetricsSnapshot::empty()
            .first_difference(&MetricsSnapshot::empty())
            .is_none());
    }
}
