//! Hand-rolled JSON export and a strict parser for the trace schema.
//!
//! Each event serialises to one JSON object per line (JSONL):
//!
//! ```json
//! {"seq":0,"t":1200,"sub":"save","ev":"step","a":3,"b":0,"d":"FlushCaches"}
//! ```
//!
//! The parser is deliberately strict — it accepts exactly this shape
//! (all seven keys, in this order) and nothing else, which doubles as
//! the schema validator `scripts/verify.sh` runs. The crate has no
//! external dependencies, so both directions are written by hand.

use std::fmt::Write as _;

use wsp_units::Nanos;

use crate::event::Event;
use crate::trace::Trace;

/// An event deserialised from JSONL. Field meanings match [`Event`];
/// string fields are owned because parsed text cannot be `'static`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Trace sequence number.
    pub seq: u64,
    /// Simulation timestamp.
    pub t: Nanos,
    /// Emitting subsystem.
    pub sub: String,
    /// Event name.
    pub ev: String,
    /// First payload slot.
    pub a: i64,
    /// Second payload slot.
    pub b: i64,
    /// Detail string (may be empty).
    pub d: String,
}

impl ParsedEvent {
    /// Structural equality against a live event (ignores `seq` and `t`).
    #[must_use]
    pub fn same_shape(&self, e: &Event) -> bool {
        self.sub == e.subsystem
            && self.ev == e.name
            && self.a == e.a
            && self.b == e.b
            && self.d == e.detail
    }

    /// Full-content equality against a live event (ignores `seq` only;
    /// timestamps must match bitwise).
    #[must_use]
    pub fn same_content(&self, e: &Event) -> bool {
        self.t == e.t && self.same_shape(e)
    }

    /// Renders the parsed event like [`Event`]'s `Display`.
    #[must_use]
    pub fn display(&self) -> String {
        let mut s = format!(
            "#{} t={} {}.{} a={} b={}",
            self.seq, self.t, self.sub, self.ev, self.a, self.b
        );
        if !self.d.is_empty() {
            let _ = write!(s, " ({})", self.d);
        }
        s
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialises one event to its JSON line (no trailing newline).
#[must_use]
pub fn event_to_json(e: &Event) -> String {
    let mut out = String::with_capacity(64 + e.detail.len());
    let _ = write!(
        out,
        "{{\"seq\":{},\"t\":{},\"sub\":\"",
        e.seq,
        e.t.as_nanos()
    );
    escape_into(&mut out, e.subsystem);
    out.push_str("\",\"ev\":\"");
    escape_into(&mut out, e.name);
    let _ = write!(out, "\",\"a\":{},\"b\":{},\"d\":\"", e.a, e.b);
    escape_into(&mut out, &e.detail);
    out.push_str("\"}");
    out
}

/// Serialises a whole trace to JSONL (one event per line, trailing
/// newline after each).
#[must_use]
pub fn trace_to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for e in trace.events() {
        out.push_str(&event_to_json(e));
        out.push('\n');
    }
    out
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn expect(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!(
                "expected `{lit}` at byte {} (found `{}`)",
                self.pos,
                &self.s[self.pos..self.s.len().min(self.pos + 12)]
            ))
        }
    }

    fn integer(&mut self) -> Result<i64, String> {
        let start = self.pos;
        let bytes = self.s.as_bytes();
        if self.pos < bytes.len() && bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse::<i64>()
            .map_err(|e| format!("bad integer at byte {start}: {e}"))
    }

    fn unsigned(&mut self) -> Result<u64, String> {
        let v = self.integer()?;
        u64::try_from(v).map_err(|_| format!("expected unsigned value, got {v}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let mut chars = self.s[self.pos..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((j, 'u')) => {
                        let hex_start = self.pos + j + 1;
                        let hex = self
                            .s
                            .get(hex_start..hex_start + 4)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        // Skip the 4 hex digits.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
}

/// Parses and validates one JSONL trace line against the event schema.
///
/// Strict by design: the seven keys must all be present, in canonical
/// order, with the right types. Any deviation is an error naming the
/// offending position.
pub fn parse_event(line: &str) -> Result<ParsedEvent, String> {
    let mut c = Cursor {
        s: line.trim_end(),
        pos: 0,
    };
    c.expect("{\"seq\":")?;
    let seq = c.unsigned()?;
    c.expect(",\"t\":")?;
    let t = Nanos::new(c.unsigned()?);
    c.expect(",\"sub\":")?;
    let sub = c.string()?;
    c.expect(",\"ev\":")?;
    let ev = c.string()?;
    c.expect(",\"a\":")?;
    let a = c.integer()?;
    c.expect(",\"b\":")?;
    let b = c.integer()?;
    c.expect(",\"d\":")?;
    let d = c.string()?;
    c.expect("}")?;
    if c.pos != c.s.len() {
        return Err(format!("trailing data at byte {}", c.pos));
    }
    if sub.is_empty() || ev.is_empty() {
        return Err("`sub` and `ev` must be non-empty".into());
    }
    Ok(ParsedEvent {
        seq,
        t,
        sub,
        ev,
        a,
        b,
        d,
    })
}

/// Parses a whole JSONL document, reporting the first bad line by
/// number (1-based).
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_event(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::capture;
    use crate::{emit, emit_detail};

    #[test]
    fn roundtrip_preserves_every_field() {
        let ((), cap) = capture(|| {
            emit("save", "step", Nanos::new(1200), 3, 0);
            emit_detail(
                "ladder",
                "refusal",
                Nanos::new(99),
                -1,
                7,
                "torn \"image\"\n\\end".into(),
            );
        });
        let jsonl = trace_to_jsonl(&cap.trace);
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 2);
        for (p, e) in parsed.iter().zip(cap.trace.events()) {
            assert_eq!(p.seq, e.seq);
            assert!(p.same_content(e), "{} vs {}", p.display(), e);
        }
        assert_eq!(parsed[1].d, "torn \"image\"\n\\end");
    }

    #[test]
    fn parser_rejects_missing_and_reordered_keys() {
        assert!(parse_event("{\"seq\":0,\"t\":1,\"sub\":\"s\",\"ev\":\"e\",\"a\":0,\"b\":0}").is_err());
        assert!(parse_event("{\"t\":1,\"seq\":0,\"sub\":\"s\",\"ev\":\"e\",\"a\":0,\"b\":0,\"d\":\"\"}").is_err());
        assert!(parse_event("not json").is_err());
        let err = parse_jsonl("{\"seq\":0,\"t\":1,\"sub\":\"\",\"ev\":\"e\",\"a\":0,\"b\":0,\"d\":\"\"}\n")
            .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn parser_rejects_trailing_data_and_bad_types() {
        assert!(parse_event(
            "{\"seq\":0,\"t\":1,\"sub\":\"s\",\"ev\":\"e\",\"a\":0,\"b\":0,\"d\":\"\"}junk"
        )
        .is_err());
        assert!(parse_event(
            "{\"seq\":-4,\"t\":1,\"sub\":\"s\",\"ev\":\"e\",\"a\":0,\"b\":0,\"d\":\"\"}"
        )
        .is_err());
        assert!(parse_event(
            "{\"seq\":0,\"t\":1,\"sub\":\"s\",\"ev\":\"e\",\"a\":x,\"b\":0,\"d\":\"\"}"
        )
        .is_err());
    }

    #[test]
    fn unicode_escape_roundtrips() {
        let line = "{\"seq\":0,\"t\":1,\"sub\":\"s\",\"ev\":\"e\",\"a\":0,\"b\":0,\"d\":\"a\\u0001b\"}";
        let p = parse_event(line).unwrap();
        assert_eq!(p.d, "a\u{1}b");
    }
}
