//! Golden-trace checking with a `WSP_UPDATE_GOLDEN=1` regeneration
//! path.
//!
//! A golden file is the JSONL export of a scenario's trace, recorded
//! once and committed under `tests/golden/`. [`check_golden`] replays
//! the scenario, then either rewrites the file (update mode) or diffs
//! the live trace against the recorded one, failing with a readable
//! first-divergence report.

use std::path::Path;

use crate::diff::{diff_golden, DiffMode};
use crate::json::{parse_jsonl, trace_to_jsonl};
use crate::trace::Trace;

/// True when `WSP_UPDATE_GOLDEN=1` is set: golden files are rewritten
/// instead of checked.
#[must_use]
pub fn update_mode() -> bool {
    std::env::var("WSP_UPDATE_GOLDEN").map(|v| v == "1").unwrap_or(false)
}

/// Checks `live` against the golden file at `path`, or rewrites it in
/// update mode. Errors are readable reports, not raw asserts:
///
/// - missing golden → instructions to regenerate;
/// - unparseable golden → the schema violation, by line;
/// - mismatch → the first diverging event with context.
pub fn check_golden(path: &Path, live: &Trace, mode: DiffMode) -> Result<(), String> {
    if update_mode() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
        std::fs::write(path, trace_to_jsonl(live))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok(());
    }
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "golden file {} unreadable ({e}); run with WSP_UPDATE_GOLDEN=1 to record it",
            path.display()
        )
    })?;
    let golden = parse_jsonl(&text)
        .map_err(|e| format!("golden file {} is not schema-valid: {e}", path.display()))?;
    diff_golden(&golden, live, mode)
        .map_err(|report| format!("golden mismatch against {}:\n{report}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::capture;
    use crate::emit;
    use wsp_units::Nanos;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wsp-obs-golden-{name}-{}.jsonl", std::process::id()));
        p
    }

    #[test]
    fn missing_golden_names_the_regen_path() {
        let ((), cap) = capture(|| emit("t", "x", Nanos::new(1), 0, 0));
        let path = tmp("missing");
        let err = check_golden(&path, &cap.trace, DiffMode::Full).unwrap_err();
        assert!(err.contains("WSP_UPDATE_GOLDEN=1"), "{err}");
    }

    #[test]
    fn written_golden_round_trips() {
        let ((), cap) = capture(|| {
            emit("t", "x", Nanos::new(1), 4, 5);
            emit("t", "y", Nanos::new(2), 6, 7);
        });
        let path = tmp("roundtrip");
        std::fs::write(&path, trace_to_jsonl(&cap.trace)).unwrap();
        check_golden(&path, &cap.trace, DiffMode::Full).unwrap();

        let ((), other) = capture(|| {
            emit("t", "x", Nanos::new(1), 4, 5);
            emit("t", "y", Nanos::new(3), 6, 7);
        });
        let err = check_golden(&path, &other.trace, DiffMode::Full).unwrap_err();
        assert!(err.contains("diverge at event 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
