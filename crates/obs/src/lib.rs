//! Deterministic observability for the WSP reproduction: structured
//! trace events, fixed-slot metrics and golden-trace diffing.
//!
//! The paper's evaluation is about *seeing* what the system does inside
//! an outage window — per-step save timings, residual-window margins,
//! flush progress. This crate is the substrate that makes that visible
//! **and assertable**: every subsystem on the save/restore path emits
//! flat [`Event`]s stamped with the simulation clock (never the host
//! clock), so a fixed `WSP_DET_SEED` yields a bitwise-identical trace
//! that tests pin with golden files.
//!
//! - [`event`] — the one flat record type every subsystem emits.
//! - [`trace`] — ring-buffer recorder (thread-local), [`capture`] and
//!   deterministic trace merging for sharded sweeps.
//! - [`metrics`] — allocation-free counters/gauges plus latency
//!   histograms reusing [`wsp_units::LatencyHistogram`].
//! - [`json`] — JSONL export and the strict schema parser/validator.
//! - [`diff`] — full/structural diffing with readable first-divergence
//!   reports.
//! - [`golden`] — golden-file checking with `WSP_UPDATE_GOLDEN=1`
//!   regeneration.
//!
//! # Example
//!
//! ```
//! use wsp_obs as obs;
//! use wsp_units::Nanos;
//!
//! let ((), cap) = obs::capture(|| {
//!     obs::emit("save", "step", Nanos::new(1_200), 3, 0);
//!     obs::count(obs::Ctr::SaveSteps);
//!     obs::observe(obs::Hist::SaveStep, Nanos::new(1_200));
//! });
//! assert_eq!(cap.trace.len(), 1);
//! assert_eq!(cap.metrics.counter(obs::Ctr::SaveSteps), 1);
//! let jsonl = obs::json::trace_to_jsonl(&cap.trace);
//! assert!(obs::json::parse_jsonl(&jsonl).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod event;
pub mod golden;
pub mod json;
pub mod metrics;
pub mod trace;

pub use diff::{diff_events, diff_golden, diff_traces, DiffMode};
pub use event::Event;
pub use golden::{check_golden, update_mode};
pub use json::{event_to_json, parse_event, parse_jsonl, trace_to_jsonl, ParsedEvent};
pub use metrics::{Ctr, Gauge, Hist, MetricsSnapshot};
pub use trace::{
    capture, count, count_by, emit, emit_detail, gauge_set, is_enabled, observe, set_enabled,
    span, Capture, Span, Trace, DEFAULT_RING_CAP,
};
