//! Trace diffing with human-readable first-divergence reports.
//!
//! Two modes:
//!
//! - [`DiffMode::Full`] — every field except `seq` must match,
//!   timestamps included (bitwise). Golden-trace regression tests use
//!   this: with a fixed seed the stream must be identical.
//! - [`DiffMode::Structural`] — timestamps ignored; only the event
//!   shape (subsystem, name, payloads, detail) must match. Idempotence
//!   tests use this: a re-climb repeats the same steps at later clock
//!   readings.

use std::fmt::Write as _;

use crate::event::Event;
use crate::json::ParsedEvent;
use crate::trace::Trace;

/// How strictly two traces are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffMode {
    /// Timestamps compared bitwise (golden traces).
    Full,
    /// Timestamps ignored (idempotence / re-climb checks).
    Structural,
}

/// Number of matching events echoed before a divergence for context.
const CONTEXT: usize = 3;

fn context_lines(report: &mut String, shown: &[String], at: usize) {
    let from = at.saturating_sub(CONTEXT);
    if from > 0 {
        let _ = writeln!(report, "  ... {from} matching events ...");
    }
    for line in &shown[from..at] {
        let _ = writeln!(report, "  = {line}");
    }
}

fn render_diff(
    label_a: &str,
    label_b: &str,
    a: Vec<String>,
    b: Vec<String>,
    diverged: Option<usize>,
) -> Result<(), String> {
    match diverged {
        None if a.len() == b.len() => Ok(()),
        None => {
            let (longer, at) = if a.len() > b.len() {
                (label_a, b.len())
            } else {
                (label_b, a.len())
            };
            let mut report = format!(
                "trace length mismatch: {label_a} has {} events, {label_b} has {} — {longer} continues past event {at}:\n",
                a.len(),
                b.len()
            );
            context_lines(&mut report, if a.len() > b.len() { &a } else { &b }, at);
            let extra = if a.len() > b.len() { &a[at] } else { &b[at] };
            let _ = writeln!(report, "  + {extra}");
            Err(report)
        }
        Some(at) => {
            let mut report = format!("traces diverge at event {at}:\n");
            context_lines(&mut report, &a, at);
            let _ = writeln!(report, "  - {label_a}: {}", a[at]);
            let _ = writeln!(report, "  + {label_b}: {}", b[at]);
            Err(report)
        }
    }
}

/// Compares two live event streams; `Err` carries a readable report
/// naming the first diverging event.
pub fn diff_events(a: &[Event], b: &[Event], mode: DiffMode) -> Result<(), String> {
    let eq = |x: &Event, y: &Event| match mode {
        DiffMode::Full => x.same_content(y),
        DiffMode::Structural => x.same_shape(y),
    };
    let diverged = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| !eq(x, y));
    render_diff(
        "left",
        "right",
        a.iter().map(ToString::to_string).collect(),
        b.iter().map(ToString::to_string).collect(),
        diverged,
    )
}

/// Compares two whole traces (see [`diff_events`]).
pub fn diff_traces(a: &Trace, b: &Trace, mode: DiffMode) -> Result<(), String> {
    diff_events(a.events(), b.events(), mode)
}

/// Compares a recorded golden (parsed from JSONL) against a live trace.
pub fn diff_golden(golden: &[ParsedEvent], live: &Trace, mode: DiffMode) -> Result<(), String> {
    let eq = |g: &ParsedEvent, e: &Event| match mode {
        DiffMode::Full => g.same_content(e),
        DiffMode::Structural => g.same_shape(e),
    };
    let diverged = golden
        .iter()
        .zip(live.events())
        .position(|(g, e)| !eq(g, e));
    render_diff(
        "golden",
        "live",
        golden.iter().map(ParsedEvent::display).collect(),
        live.events().iter().map(ToString::to_string).collect(),
        diverged,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_units::Nanos;

    fn ev(t: u64, name: &'static str, a: i64) -> Event {
        Event {
            seq: 0,
            t: Nanos::new(t),
            subsystem: "s",
            name,
            a,
            b: 0,
            detail: String::new(),
        }
    }

    #[test]
    fn identical_traces_diff_clean() {
        let a = [ev(1, "x", 0), ev(2, "y", 1)];
        assert!(diff_events(&a, &a, DiffMode::Full).is_ok());
    }

    #[test]
    fn structural_mode_ignores_timestamps() {
        let a = [ev(1, "x", 0)];
        let b = [ev(900, "x", 0)];
        assert!(diff_events(&a, &b, DiffMode::Full).is_err());
        assert!(diff_events(&a, &b, DiffMode::Structural).is_ok());
    }

    #[test]
    fn report_names_first_divergence_with_context() {
        let a = [ev(1, "x", 0), ev(2, "y", 1), ev(3, "z", 2)];
        let b = [ev(1, "x", 0), ev(2, "y", 1), ev(3, "z", 99)];
        let report = diff_events(&a, &b, DiffMode::Full).unwrap_err();
        assert!(report.contains("diverge at event 2"), "{report}");
        assert!(report.contains("= "), "context shown: {report}");
        assert!(report.contains("a=99"), "{report}");
    }

    #[test]
    fn length_mismatch_is_reported() {
        let a = [ev(1, "x", 0), ev(2, "y", 1)];
        let b = [ev(1, "x", 0)];
        let report = diff_events(&a, &b, DiffMode::Full).unwrap_err();
        assert!(report.contains("length mismatch"), "{report}");
        assert!(report.contains("2 events"), "{report}");
    }
}
