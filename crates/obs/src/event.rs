//! The structured trace event: the one record type every subsystem
//! emits.

use std::fmt;

use wsp_units::Nanos;

/// One structured trace event.
///
/// Events are deliberately flat and fixed-shape: a simulation timestamp,
/// a static subsystem/name pair, two integer payload slots and an
/// optional detail string. Everything is deterministic — timestamps come
/// from the simulation clock, never the host — so a fixed seed yields a
/// bitwise-identical event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the trace (assigned by the recorder; reassigned when
    /// traces are merged so merged streams stay gapless).
    pub seq: u64,
    /// Simulation timestamp (local to the emitting routine's clock).
    pub t: Nanos,
    /// Emitting subsystem (`"save"`, `"ladder"`, `"nvram"`, ...).
    pub subsystem: &'static str,
    /// Event name within the subsystem (`"step"`, `"refusal"`, ...).
    pub name: &'static str,
    /// First integer payload slot (meaning depends on the event).
    pub a: i64,
    /// Second integer payload slot.
    pub b: i64,
    /// Optional human-readable detail (empty when absent). Must be
    /// deterministic: derived from simulation state only.
    pub detail: String,
}

impl Event {
    /// True when two events carry the same structural content —
    /// everything except `seq` and the timestamp. The structural diff
    /// mode uses this for idempotence checks (re-climbs repeat the same
    /// steps at later timestamps).
    #[must_use]
    pub fn same_shape(&self, other: &Event) -> bool {
        self.subsystem == other.subsystem
            && self.name == other.name
            && self.a == other.a
            && self.b == other.b
            && self.detail == other.detail
    }

    /// True when two events are identical up to `seq` (timestamps
    /// included). The golden-trace diff uses this: merged traces
    /// renumber `seq`, but every timestamp must still match bitwise.
    #[must_use]
    pub fn same_content(&self, other: &Event) -> bool {
        self.t == other.t && self.same_shape(other)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={} {}.{} a={} b={}",
            self.seq, self.t, self.subsystem, self.name, self.a, self.b
        )?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t: u64, name: &'static str) -> Event {
        Event {
            seq,
            t: Nanos::new(t),
            subsystem: "test",
            name,
            a: 1,
            b: 2,
            detail: String::new(),
        }
    }

    #[test]
    fn shape_ignores_seq_and_time() {
        assert!(ev(0, 10, "x").same_shape(&ev(5, 99, "x")));
        assert!(!ev(0, 10, "x").same_shape(&ev(0, 10, "y")));
    }

    #[test]
    fn content_includes_time_but_not_seq() {
        assert!(ev(0, 10, "x").same_content(&ev(5, 10, "x")));
        assert!(!ev(0, 10, "x").same_content(&ev(0, 11, "x")));
    }

    #[test]
    fn display_is_readable() {
        let mut e = ev(3, 42, "step");
        e.detail = "flush".into();
        let s = e.to_string();
        assert!(s.contains("test.step") && s.contains("flush"), "{s}");
    }
}
