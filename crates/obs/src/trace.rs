//! Trace storage and the thread-local recorder.
//!
//! Each OS thread owns one recorder. Sharded sweeps run every crash
//! point wholly on one worker thread, so wrapping a point in
//! [`capture`] yields that point's complete event stream; the sweep
//! then merges per-point captures in crash-point order, which makes the
//! merged trace independent of `WSP_FAULTSIM_THREADS`.

use std::cell::RefCell;
use std::collections::VecDeque;

use wsp_units::Nanos;

use crate::event::Event;
use crate::metrics::{Ctr, Gauge, Hist, MetricsSnapshot};

/// Default ring-buffer capacity: large enough for any single scenario
/// in the test suite, small enough to bound memory in long soaks.
pub const DEFAULT_RING_CAP: usize = 65_536;

/// A bounded, ordered stream of [`Event`]s.
///
/// When the ring capacity is exceeded the *oldest* events are dropped
/// (the tail of a save/crash scenario is the interesting part) and
/// [`Trace::dropped`] counts them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<Event>,
    dropped: u64,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped by the ring buffer (0 in every healthy scenario).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends `other` to `self`, renumbering `seq` so the merged
    /// stream stays gapless. Timestamps are left untouched — they are
    /// local to each emitting routine's clock.
    pub fn append(&mut self, other: Trace) {
        self.dropped += other.dropped;
        for mut e in other.events {
            e.seq = self.events.len() as u64;
            self.events.push(e);
        }
    }

    /// Builds a trace directly from events, renumbering `seq`.
    #[must_use]
    pub fn from_events(events: Vec<Event>) -> Self {
        let mut t = Trace::new();
        for mut e in events {
            e.seq = t.events.len() as u64;
            t.events.push(e);
        }
        t
    }
}

/// Everything one [`capture`] observed: the event stream plus the
/// metrics accumulated while the closure ran.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Capture {
    /// The ordered event stream.
    pub trace: Trace,
    /// Counters, gauges and histograms recorded during the capture.
    pub metrics: MetricsSnapshot,
}

impl Capture {
    /// Merges another capture into this one (events append in call
    /// order, metrics merge slot-wise).
    pub fn absorb(&mut self, other: Capture) {
        self.trace.append(other.trace);
        self.metrics.merge(&other.metrics);
    }
}

struct State {
    enabled: bool,
    next_seq: u64,
    cap: usize,
    events: VecDeque<Event>,
    dropped: u64,
    metrics: MetricsSnapshot,
}

impl State {
    fn fresh() -> Self {
        State {
            enabled: true,
            next_seq: 0,
            cap: DEFAULT_RING_CAP,
            events: VecDeque::new(),
            dropped: 0,
            metrics: MetricsSnapshot::empty(),
        }
    }

    fn drain(&mut self) -> Capture {
        let trace = Trace::from_events(self.events.drain(..).collect());
        let mut trace = trace;
        trace.dropped = self.dropped;
        let metrics = std::mem::take(&mut self.metrics);
        self.dropped = 0;
        self.next_seq = 0;
        Capture { trace, metrics }
    }
}

thread_local! {
    static RECORDER: RefCell<State> = RefCell::new(State::fresh());
}

/// Emits one structured event into this thread's recorder.
///
/// `t` is a simulation timestamp local to the emitting routine's clock;
/// `a`/`b` are event-specific integer payloads.
pub fn emit(subsystem: &'static str, name: &'static str, t: Nanos, a: i64, b: i64) {
    emit_detail(subsystem, name, t, a, b, String::new());
}

/// Like [`emit`], with a deterministic human-readable detail string.
pub fn emit_detail(
    subsystem: &'static str,
    name: &'static str,
    t: Nanos,
    a: i64,
    b: i64,
    detail: String,
) {
    RECORDER.with(|r| {
        let mut s = r.borrow_mut();
        if !s.enabled {
            return;
        }
        if s.events.len() >= s.cap {
            s.events.pop_front();
            s.dropped += 1;
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.events.push_back(Event {
            seq,
            t,
            subsystem,
            name,
            a,
            b,
            detail,
        });
    });
}

/// Increments a counter by one. Allocation-free.
#[inline]
pub fn count(id: Ctr) {
    count_by(id, 1);
}

/// Increments a counter by `n`. Allocation-free.
#[inline]
pub fn count_by(id: Ctr, n: u64) {
    RECORDER.with(|r| {
        let mut s = r.borrow_mut();
        if s.enabled {
            s.metrics.counters[id.index()] += n;
        }
    });
}

/// Sets a gauge to `v`. Allocation-free.
#[inline]
pub fn gauge_set(id: Gauge, v: i64) {
    RECORDER.with(|r| {
        let mut s = r.borrow_mut();
        if s.enabled {
            s.metrics.gauges[id.index()] = v;
        }
    });
}

/// Records one latency sample. Allocation-free.
#[inline]
pub fn observe(id: Hist, value: Nanos) {
    RECORDER.with(|r| {
        let mut s = r.borrow_mut();
        if s.enabled {
            s.metrics.record(id, value);
        }
    });
}

/// Enables or disables this thread's recorder (enabled by default).
/// While disabled, every emit/count/observe is a cheap no-op.
pub fn set_enabled(enabled: bool) {
    RECORDER.with(|r| r.borrow_mut().enabled = enabled);
}

/// Whether this thread's recorder is currently enabled.
#[must_use]
pub fn is_enabled() -> bool {
    RECORDER.with(|r| r.borrow().enabled)
}

/// Runs `f` against a fresh recorder and returns its result together
/// with everything it emitted.
///
/// The ambient recorder state is swapped out for the duration and
/// restored afterwards, so captures nest cleanly: an inner capture's
/// events do **not** leak into the outer one.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Capture) {
    let saved = RECORDER.with(|r| std::mem::replace(&mut *r.borrow_mut(), State::fresh()));
    let out = f();
    let cap = RECORDER.with(|r| {
        let mut inner = std::mem::replace(&mut *r.borrow_mut(), saved);
        inner.drain()
    });
    (out, cap)
}

/// A typed span: construct at the start of an operation, [`Span::end`]
/// it with the clock's later reading to emit one duration event (and
/// optionally feed a histogram).
#[derive(Debug)]
pub struct Span {
    subsystem: &'static str,
    name: &'static str,
    start: Nanos,
    hist: Option<Hist>,
}

/// Opens a span at simulation time `start`.
#[must_use]
pub fn span(subsystem: &'static str, name: &'static str, start: Nanos) -> Span {
    Span {
        subsystem,
        name,
        start,
        hist: None,
    }
}

impl Span {
    /// Also records the span duration into `id` when the span ends.
    #[must_use]
    pub fn with_hist(mut self, id: Hist) -> Span {
        self.hist = Some(id);
        self
    }

    /// Closes the span at simulation time `now`, emitting one event
    /// whose `a` is the duration in nanoseconds and `b` the start time.
    pub fn end(self, now: Nanos) {
        let took = now - self.start;
        emit(
            self.subsystem,
            self.name,
            now,
            took.as_nanos() as i64,
            self.start.as_nanos() as i64,
        );
        if let Some(id) = self.hist {
            observe(id, took);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_events_and_metrics() {
        let ((), cap) = capture(|| {
            emit("t", "one", Nanos::new(10), 1, 0);
            count(Ctr::TxCommits);
            observe(Hist::TxCommit, Nanos::new(50));
            emit("t", "two", Nanos::new(20), 2, 0);
        });
        assert_eq!(cap.trace.len(), 2);
        assert_eq!(cap.trace.events()[0].name, "one");
        assert_eq!(cap.trace.events()[1].seq, 1);
        assert_eq!(cap.metrics.counter(Ctr::TxCommits), 1);
        assert_eq!(cap.metrics.hist(Hist::TxCommit).count(), 1);
    }

    #[test]
    fn captures_nest_without_leaking() {
        let ((), outer) = capture(|| {
            emit("t", "outer", Nanos::new(1), 0, 0);
            let ((), inner) = capture(|| emit("t", "inner", Nanos::new(2), 0, 0));
            assert_eq!(inner.trace.len(), 1);
            assert_eq!(inner.trace.events()[0].name, "inner");
            emit("t", "outer2", Nanos::new(3), 0, 0);
        });
        let names: Vec<_> = outer.trace.events().iter().map(|e| e.name).collect();
        assert_eq!(names, ["outer", "outer2"]);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let ((), cap) = capture(|| {
            set_enabled(false);
            emit("t", "hidden", Nanos::new(1), 0, 0);
            count(Ctr::TxCommits);
            set_enabled(true);
        });
        assert!(cap.trace.is_empty());
        assert!(cap.metrics.is_empty());
    }

    #[test]
    fn append_renumbers_seq() {
        let ((), a) = capture(|| emit("t", "a", Nanos::new(1), 0, 0));
        let ((), b) = capture(|| emit("t", "b", Nanos::new(2), 0, 0));
        let mut merged = a.trace;
        merged.append(b.trace);
        assert_eq!(merged.events()[1].seq, 1);
        assert_eq!(merged.events()[1].name, "b");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ((), cap) = capture(|| {
            RECORDER.with(|r| r.borrow_mut().cap = 4);
            for i in 0..6 {
                emit("t", "e", Nanos::new(i), i as i64, 0);
            }
        });
        assert_eq!(cap.trace.len(), 4);
        assert_eq!(cap.trace.dropped(), 2);
        assert_eq!(cap.trace.events()[0].a, 2, "oldest dropped first");
    }

    #[test]
    fn span_emits_duration_and_histogram() {
        let ((), cap) = capture(|| {
            let sp = span("t", "op", Nanos::new(100)).with_hist(Hist::SaveTotal);
            sp.end(Nanos::new(250));
        });
        let e = &cap.trace.events()[0];
        assert_eq!(e.a, 150);
        assert_eq!(e.b, 100);
        assert_eq!(cap.metrics.hist(Hist::SaveTotal).count(), 1);
    }
}
