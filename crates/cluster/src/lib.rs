//! Datacenter-scale recovery economics: the paper's motivation (§1–2)
//! and its §6 "Distributed applications" / "Long outages" discussion,
//! as a quantitative model.
//!
//! Main-memory fleets recover from a shared storage back end. After a
//! *correlated* failure (rack power outage, UPS fault) tens to hundreds
//! of servers re-read terabytes through that back end at once — a
//! **recovery storm** (the paper's example: 256 GB at 0.5 GB/s is over
//! eight minutes *per server*, even alone). Whole-system persistence
//! replaces that with a local NVDIMM restore plus a catch-up of only the
//! updates missed during the outage.
//!
//! # Examples
//!
//! ```
//! use wsp_cluster::{ClusterSpec, OutageScenario};
//! use wsp_units::Nanos;
//!
//! let cluster = ClusterSpec::memcache_tier(100);
//! let outage = OutageScenario::rack_power(Nanos::from_secs(30), 100);
//! let report = cluster.recovery_report(&outage);
//! assert!(report.speedup() > 10.0, "WSP recovery is orders faster");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpointing;
mod recovery;
mod replication;
mod timeline;

pub use checkpointing::{CheckpointPlan, CheckpointPolicy};
pub use recovery::{ClusterSpec, OutageScenario, StormReport};
pub use replication::{RecoveryDecision, ReplicaGroup};
pub use timeline::{AvailabilityReport, FleetTimeline, PowerEvent};
