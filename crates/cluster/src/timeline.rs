//! A discrete-event availability simulation: a year in the life of a
//! main-memory fleet, with independent and correlated power events, under
//! back-end-only recovery vs WSP local recovery. This quantifies the
//! paper's opening story (the 2010 Facebook outage: 2.5 hours of
//! unavailability while cache servers refreshed from the back end).

use wsp_det::{DetRng, Rng};
use wsp_units::Nanos;

use crate::ClusterSpec;

/// One power event in the simulated year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEvent {
    /// When the event starts (since simulation start).
    pub at: Nanos,
    /// How long power stays off.
    pub outage: Nanos,
    /// How many servers it takes down together.
    pub servers: usize,
}

/// Fleet availability results for one recovery discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityReport {
    /// Total server-downtime accumulated over the horizon.
    pub server_downtime: Nanos,
    /// Availability as a fraction of total server-time (1.0 = perfect).
    pub availability: f64,
    /// The single worst event's recovery time.
    pub worst_event_recovery: Nanos,
}

/// Event generator + evaluator over a time horizon.
///
/// # Examples
///
/// ```
/// use wsp_cluster::{ClusterSpec, FleetTimeline};
///
/// let cluster = ClusterSpec::memcache_tier(100);
/// let timeline = FleetTimeline::typical_year(7);
/// let (backend, wsp) = timeline.compare(&cluster);
/// assert!(wsp.availability > backend.availability);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTimeline {
    /// Simulation horizon.
    pub horizon: Nanos,
    /// The events, in time order.
    pub events: Vec<PowerEvent>,
}

impl FleetTimeline {
    /// A typical year: a handful of single-server PSU failures, a couple
    /// of rack-level events, and one datacenter-wide outage — seeded and
    /// reproducible.
    #[must_use]
    pub fn typical_year(seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let year = Nanos::from_secs(365 * 24 * 3600);
        let mut events = Vec::new();
        // ~8 single-server PSU/UPS faults.
        for _ in 0..8 {
            events.push(PowerEvent {
                at: year * rng.gen_range(0.0..1.0),
                outage: Nanos::from_secs(rng.gen_range(20..120)),
                servers: 1,
            });
        }
        // 2 rack events (~20 servers).
        for _ in 0..2 {
            events.push(PowerEvent {
                at: year * rng.gen_range(0.0..1.0),
                outage: Nanos::from_secs(rng.gen_range(60..600)),
                servers: 20,
            });
        }
        // 1 datacenter-wide event (everything).
        events.push(PowerEvent {
            at: year * rng.gen_range(0.0..1.0),
            outage: Nanos::from_secs(rng.gen_range(300..1800)),
            servers: usize::MAX, // clamped to fleet size at evaluation
        });
        events.sort_by_key(|e| e.at);
        FleetTimeline {
            horizon: year,
            events,
        }
    }

    /// Evaluates the timeline under one recovery discipline.
    fn evaluate(&self, cluster: &ClusterSpec, wsp: bool) -> AvailabilityReport {
        let mut downtime = Nanos::ZERO;
        let mut worst = Nanos::ZERO;
        for e in &self.events {
            let failed = e.servers.min(cluster.servers);
            let recovery = if wsp {
                cluster.wsp_recovery_time(failed, e.outage)
            } else {
                cluster.backend_recovery_time(failed)
            };
            worst = worst.max(recovery);
            // Each failed server is down for the outage plus its
            // recovery.
            downtime += (e.outage + recovery) * failed as u64;
        }
        let total_server_time =
            self.horizon.as_secs_f64() * cluster.servers as f64;
        AvailabilityReport {
            server_downtime: downtime,
            availability: 1.0 - downtime.as_secs_f64() / total_server_time,
            worst_event_recovery: worst,
        }
    }

    /// Evaluates both disciplines: `(backend_only, wsp)`.
    #[must_use]
    pub fn compare(&self, cluster: &ClusterSpec) -> (AvailabilityReport, AvailabilityReport) {
        (self.evaluate(cluster, false), self.evaluate(cluster, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wsp_buys_at_least_a_nine() {
        // A single simulated year is dominated by one datacenter-wide
        // event whose random duration swings the ratio 3x-16x, so
        // aggregate downtime over many seeded years: in expectation WSP
        // cuts unavailability well past 5x (the paper's motivating
        // Facebook outage was 2.5h of back-end refresh vs seconds of
        // local restore, Section 1).
        let cluster = ClusterSpec::memcache_tier(100);
        let mut backend_down = Nanos::ZERO;
        let mut wsp_down = Nanos::ZERO;
        for seed in 0..20 {
            let (backend, wsp) = FleetTimeline::typical_year(seed).compare(&cluster);
            assert!(wsp.availability > backend.availability, "seed {seed}");
            backend_down += backend.server_downtime;
            wsp_down += wsp.server_downtime;
        }
        let ratio = backend_down.as_secs_f64() / wsp_down.as_secs_f64();
        assert!(
            ratio > 5.0,
            "aggregate unavailability should shrink by >5x, got {ratio:.2}x"
        );
    }

    #[test]
    fn datacenter_event_dominates_backend_downtime() {
        let cluster = ClusterSpec::memcache_tier(100);
        let timeline = FleetTimeline::typical_year(1);
        let (backend, _) = timeline.compare(&cluster);
        // Storm recovery of 100 servers takes > a day of wall time.
        assert!(backend.worst_event_recovery.as_secs_f64() > 24.0 * 3600.0);
    }

    #[test]
    fn timelines_are_reproducible() {
        assert_eq!(FleetTimeline::typical_year(5), FleetTimeline::typical_year(5));
        assert_ne!(
            FleetTimeline::typical_year(5).events,
            FleetTimeline::typical_year(6).events
        );
    }

    #[test]
    fn events_sorted_and_within_horizon() {
        let t = FleetTimeline::typical_year(9);
        assert!(t.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(t.events.iter().all(|e| e.at <= t.horizon));
        assert_eq!(t.events.len(), 11);
    }
}
