//! State-machine replication and the "long outages" trade-off (paper
//! §6): after a replica fails, should the group re-replicate immediately
//! or wait for the failed node's NVRAM-backed recovery?

use wsp_units::{Bandwidth, ByteSize, Nanos};

/// What the group decided to do about a failed replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryDecision {
    /// Wait for the failed node to come back with its NVRAM state and
    /// catch up; estimated completion time attached.
    WaitForNvramRecovery {
        /// Expected time until full redundancy is restored.
        eta: Nanos,
    },
    /// Start building a fresh replica elsewhere immediately.
    ReReplicate {
        /// Expected time until full redundancy is restored.
        eta: Nanos,
    },
}

impl RecoveryDecision {
    /// The expected time to restored redundancy, either way.
    #[must_use]
    pub fn eta(&self) -> Nanos {
        match self {
            RecoveryDecision::WaitForNvramRecovery { eta }
            | RecoveryDecision::ReReplicate { eta } => *eta,
        }
    }
}

/// A replication group holding one partition of state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaGroup {
    /// Live replicas remaining (service stays available while > 0).
    pub live_replicas: u32,
    /// State held by the partition.
    pub state: ByteSize,
    /// Network bandwidth available for building a fresh replica.
    pub transfer_bandwidth: Bandwidth,
    /// Update traffic the partition absorbs (bytes/sec) — what a
    /// returning node must catch up on.
    pub update_bandwidth: Bandwidth,
    /// The failed node's local NVRAM restore time.
    pub nvdimm_restore: Nanos,
}

impl ReplicaGroup {
    /// A typical sharded KV partition: 64 GB state, 3 replicas, 1 GiB/s
    /// replication network, 20 MiB/s update traffic.
    #[must_use]
    pub fn typical() -> Self {
        ReplicaGroup {
            live_replicas: 2, // one of three just failed
            state: ByteSize::gib(64),
            transfer_bandwidth: Bandwidth::gib_per_sec(1.0),
            update_bandwidth: Bandwidth::mib_per_sec(20.0),
            nvdimm_restore: Nanos::from_secs(7),
        }
    }

    /// Time to build a fresh replica from a live one.
    #[must_use]
    pub fn re_replication_time(&self) -> Nanos {
        self.transfer_bandwidth.transfer_time(self.state)
    }

    /// Time for the failed node to return with NVRAM state after
    /// `outage` and catch up on missed updates.
    #[must_use]
    pub fn nvram_return_time(&self, outage: Nanos) -> Nanos {
        let down = outage + self.nvdimm_restore;
        let missed = self.update_bandwidth.bytes_in(down);
        outage + self.nvdimm_restore + self.transfer_bandwidth.transfer_time(missed)
    }

    /// The outage duration at which re-replication becomes the faster
    /// path to restored redundancy.
    #[must_use]
    pub fn break_even_outage(&self) -> Nanos {
        // Solve nvram_return_time(t) == re_replication_time() for t.
        // nvram_return(t) = t + r + (t + r) * u/b  where r = restore,
        // u = update bw, b = transfer bw.
        let r = self.nvdimm_restore.as_secs_f64();
        let u = self.update_bandwidth.as_bytes_per_sec();
        let b = self.transfer_bandwidth.as_bytes_per_sec();
        let full = self.re_replication_time().as_secs_f64();
        let t = (full - r * (1.0 + u / b)) / (1.0 + u / b);
        Nanos::from_secs_f64(t.max(0.0))
    }

    /// Picks the faster path for an outage expected to last
    /// `expected_outage`.
    #[must_use]
    pub fn decide(&self, expected_outage: Nanos) -> RecoveryDecision {
        let wait = self.nvram_return_time(expected_outage);
        let rebuild = self.re_replication_time();
        if wait <= rebuild {
            RecoveryDecision::WaitForNvramRecovery { eta: wait }
        } else {
            RecoveryDecision::ReReplicate { eta: rebuild }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_outages_favour_waiting() {
        let group = ReplicaGroup::typical();
        let decision = group.decide(Nanos::from_secs(20));
        assert!(matches!(
            decision,
            RecoveryDecision::WaitForNvramRecovery { .. }
        ));
        assert!(decision.eta() < group.re_replication_time());
    }

    #[test]
    fn long_outages_favour_re_replication() {
        let group = ReplicaGroup::typical();
        let decision = group.decide(Nanos::from_secs(3600));
        assert!(matches!(decision, RecoveryDecision::ReReplicate { .. }));
    }

    #[test]
    fn break_even_separates_the_regimes() {
        let group = ReplicaGroup::typical();
        let be = group.break_even_outage();
        assert!(be > Nanos::ZERO);
        let just_under = group.decide(be.saturating_sub(Nanos::from_secs(1)));
        let just_over = group.decide(be + Nanos::from_secs(1));
        assert!(matches!(
            just_under,
            RecoveryDecision::WaitForNvramRecovery { .. }
        ));
        assert!(matches!(just_over, RecoveryDecision::ReReplicate { .. }));
    }

    #[test]
    fn catch_up_grows_with_outage() {
        let group = ReplicaGroup::typical();
        let a = group.nvram_return_time(Nanos::from_secs(10));
        let b = group.nvram_return_time(Nanos::from_secs(100));
        assert!(b > a + Nanos::from_secs(90), "catch-up adds on top");
    }
}
