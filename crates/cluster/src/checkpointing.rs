//! Checkpoint-interval policy: how often should a server checkpoint its
//! heap to the back end?
//!
//! With WSP, checkpoints only matter for failures NVRAM cannot cover
//! (§3.1: software errors, whole-server loss, saves that miss the
//! window), so the effective failure rate — and with it the optimal
//! checkpoint frequency — drops dramatically. This module computes
//! Young's classic first-order optimum `τ* = √(2·C·M)` (checkpoint cost
//! `C`, mean time between unrecoverable failures `M`) and the resulting
//! overhead, with and without WSP.

use wsp_units::Nanos;

/// Inputs for the checkpoint-interval analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Time to take and ship one checkpoint.
    pub checkpoint_cost: Nanos,
    /// Mean time between failures of *any* kind.
    pub mtbf_all: Nanos,
    /// Fraction of failures that NVRAM/WSP recovers locally (power
    /// events with a completed save).
    pub wsp_coverage: f64,
}

/// The analysis output for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPlan {
    /// Mean time between failures the checkpoints must cover.
    pub effective_mtbf: Nanos,
    /// Young's optimal checkpoint interval.
    pub interval: Nanos,
    /// Steady-state fraction of runtime spent checkpointing plus
    /// expected rework (first-order approximation).
    pub overhead: f64,
}

impl CheckpointPolicy {
    /// Creates a policy description.
    ///
    /// # Panics
    ///
    /// Panics unless `wsp_coverage` is in `[0, 1]` and the other inputs
    /// are positive.
    #[must_use]
    pub fn new(checkpoint_cost: Nanos, mtbf_all: Nanos, wsp_coverage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&wsp_coverage),
            "coverage must be a fraction"
        );
        assert!(checkpoint_cost > Nanos::ZERO, "checkpoint cost must be positive");
        assert!(mtbf_all > Nanos::ZERO, "MTBF must be positive");
        CheckpointPolicy {
            checkpoint_cost,
            mtbf_all,
            wsp_coverage,
        }
    }

    /// Plans with the given WSP coverage applied: only the failures WSP
    /// cannot absorb drive the checkpoint cadence.
    #[must_use]
    pub fn plan(&self) -> CheckpointPlan {
        let miss = (1.0 - self.wsp_coverage).max(1e-9);
        let effective_mtbf = Nanos::from_secs_f64(self.mtbf_all.as_secs_f64() / miss);
        let c = self.checkpoint_cost.as_secs_f64();
        let m = effective_mtbf.as_secs_f64();
        // Young's approximation: tau* = sqrt(2 C M).
        let tau = (2.0 * c * m).sqrt();
        // First-order overhead: C/tau (checkpointing) + tau/(2M) (rework).
        let overhead = c / tau + tau / (2.0 * m);
        CheckpointPlan {
            effective_mtbf,
            interval: Nanos::from_secs_f64(tau),
            overhead,
        }
    }

    /// The same plan with WSP disabled (all failures hit the back end).
    #[must_use]
    pub fn plan_without_wsp(&self) -> CheckpointPlan {
        CheckpointPolicy {
            wsp_coverage: 0.0,
            ..*self
        }
        .plan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> CheckpointPolicy {
        // 256 GB at 300 MiB/s ~ 15 min checkpoints; one failure a week;
        // WSP absorbs 90% of them.
        CheckpointPolicy::new(
            Nanos::from_secs(15 * 60),
            Nanos::from_secs(7 * 24 * 3600),
            0.90,
        )
    }

    #[test]
    fn wsp_stretches_the_interval_by_sqrt_of_coverage() {
        let p = policy();
        let with = p.plan();
        let without = p.plan_without_wsp();
        let ratio = with.interval.as_secs_f64() / without.interval.as_secs_f64();
        // 10x effective MTBF -> sqrt(10) ~ 3.16x longer intervals.
        assert!((ratio - 10f64.sqrt()).abs() < 0.01, "ratio {ratio}");
        assert!(with.overhead < without.overhead);
    }

    #[test]
    fn youngs_formula_matches_hand_math() {
        // C = 100 s, M = 20_000 s -> tau = sqrt(2*100*20000) = 2000 s.
        let p = CheckpointPolicy::new(Nanos::from_secs(100), Nanos::from_secs(20_000), 0.0);
        let plan = p.plan();
        assert!((plan.interval.as_secs_f64() - 2_000.0).abs() < 1.0);
        // Overhead: 100/2000 + 2000/40000 = 0.05 + 0.05 = 0.10.
        assert!((plan.overhead - 0.10).abs() < 1e-6);
    }

    #[test]
    fn full_coverage_nearly_eliminates_checkpointing() {
        let p = CheckpointPolicy::new(
            Nanos::from_secs(600),
            Nanos::from_secs(24 * 3600),
            0.999,
        );
        let plan = p.plan();
        assert!(plan.interval.as_secs_f64() > 3.0 * 24.0 * 3600.0, "days apart");
        assert!(plan.overhead < 0.01);
    }

    #[test]
    #[should_panic(expected = "coverage must be a fraction")]
    fn bad_coverage_rejected() {
        let _ = CheckpointPolicy::new(Nanos::from_secs(1), Nanos::from_secs(1), 1.5);
    }
}
