//! Recovery storms: back-end recovery vs WSP local recovery for a fleet
//! of main-memory servers.

use wsp_obs as obs;
use wsp_units::{Bandwidth, ByteSize, Nanos};

/// A fleet of main-memory servers sharing one storage back end.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Servers in the fleet.
    pub servers: usize,
    /// In-memory state per server.
    pub memory_per_server: ByteSize,
    /// Aggregate back-end read bandwidth, shared by all recovering
    /// servers.
    pub backend_bandwidth: Bandwidth,
    /// Update traffic absorbed per server during normal operation
    /// (bytes/sec of fresh state a recovering node must catch up on).
    pub update_bandwidth_per_server: Bandwidth,
    /// Log-replay slowdown: reconstructing state from checkpoint + log
    /// is this many times slower than a raw stream (deserialization,
    /// index rebuild).
    pub replay_overhead: f64,
    /// Per-server NVDIMM restore time (parallel across modules and
    /// across servers).
    pub nvdimm_restore: Nanos,
}

impl ClusterSpec {
    /// A memcache-style tier: `servers` × 256 GB of state, a 0.5 GB/s
    /// effective back-end stream per the paper's §2 example (shared), 2×
    /// replay overhead, ~50 MB/s of update traffic per server, 7 s
    /// NVDIMM restores.
    #[must_use]
    pub fn memcache_tier(servers: usize) -> Self {
        ClusterSpec {
            servers,
            memory_per_server: ByteSize::gib(256),
            backend_bandwidth: Bandwidth::gib_per_sec(0.5),
            update_bandwidth_per_server: Bandwidth::mib_per_sec(50.0),
            replay_overhead: 2.0,
            nvdimm_restore: Nanos::from_secs(7),
        }
    }

    /// Back-end recovery time for `failed` servers recovering
    /// concurrently: each reads its full state through its share of the
    /// back end, with replay overhead.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is zero or exceeds the fleet.
    #[must_use]
    pub fn backend_recovery_time(&self, failed: usize) -> Nanos {
        assert!(failed >= 1 && failed <= self.servers, "bad failure count");
        let share = self.backend_bandwidth.shared_by(failed);
        let stream = share.transfer_time(self.memory_per_server);
        stream * self.replay_overhead
    }

    /// WSP recovery time for `failed` servers after an outage of
    /// `outage`: local NVDIMM restore (fully parallel) plus catching up
    /// the updates missed while down, fetched through the shared back
    /// end.
    #[must_use]
    pub fn wsp_recovery_time(&self, failed: usize, outage: Nanos) -> Nanos {
        assert!(failed >= 1 && failed <= self.servers, "bad failure count");
        let down = outage + self.nvdimm_restore;
        let missed = self.update_bandwidth_per_server.bytes_in(down);
        let share = self.backend_bandwidth.shared_by(failed);
        let catch_up = share.transfer_time(missed) * self.replay_overhead;
        self.nvdimm_restore + catch_up
    }

    /// Full report for a scenario.
    #[must_use]
    pub fn recovery_report(&self, scenario: &OutageScenario) -> StormReport {
        let backend_time = self.backend_recovery_time(scenario.failed);
        let wsp_time = self.wsp_recovery_time(scenario.failed, scenario.outage);
        obs::emit(
            "cluster",
            "recovery_storm",
            wsp_time,
            scenario.failed as i64,
            backend_time.as_nanos() as i64,
        );
        StormReport {
            failed: scenario.failed,
            outage: scenario.outage,
            per_server_state: self.memory_per_server,
            backend_time,
            wsp_time,
        }
    }
}

/// A correlated-failure scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageScenario {
    /// How long power stayed off.
    pub outage: Nanos,
    /// How many servers failed together.
    pub failed: usize,
}

impl OutageScenario {
    /// A rack/UPS power event taking `failed` servers down for `outage`.
    #[must_use]
    pub fn rack_power(outage: Nanos, failed: usize) -> Self {
        OutageScenario { outage, failed }
    }
}

/// Comparison of the two recovery paths for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormReport {
    /// Servers recovering concurrently.
    pub failed: usize,
    /// Outage duration.
    pub outage: Nanos,
    /// State per server.
    pub per_server_state: ByteSize,
    /// Time for every server to finish back-end recovery.
    pub backend_time: Nanos,
    /// Time for every server to finish WSP local recovery + catch-up.
    pub wsp_time: Nanos,
}

impl StormReport {
    /// How much faster WSP recovery completes.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.backend_time.as_secs_f64() / self.wsp_time.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2: "Reading 256 GB at 0.5 GB/s ... will take more than 8 min,
    /// even if all the storage resources were dedicated to that single
    /// recovering machine."
    #[test]
    fn paper_single_server_example() {
        let mut cluster = ClusterSpec::memcache_tier(1);
        cluster.replay_overhead = 1.0; // raw stream, as in the example
        let t = cluster.backend_recovery_time(1);
        assert!(t.as_secs_f64() > 8.0 * 60.0, "{t}");
    }

    #[test]
    fn storms_scale_linearly_with_failed_servers() {
        let cluster = ClusterSpec::memcache_tier(100);
        let one = cluster.backend_recovery_time(1);
        let hundred = cluster.backend_recovery_time(100);
        let ratio = hundred.as_secs_f64() / one.as_secs_f64();
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
        // A 100-server storm takes around a day — the Facebook-outage
        // regime the paper opens with.
        assert!(hundred.as_secs_f64() > 3600.0 * 10.0);
    }

    #[test]
    fn wsp_recovery_is_orders_of_magnitude_faster() {
        let cluster = ClusterSpec::memcache_tier(100);
        let scenario = OutageScenario::rack_power(Nanos::from_secs(30), 100);
        let report = cluster.recovery_report(&scenario);
        assert!(report.wsp_time < report.backend_time);
        assert!(report.speedup() > 50.0, "speedup {}", report.speedup());
    }

    #[test]
    fn longer_outages_erode_the_wsp_advantage() {
        let cluster = ClusterSpec::memcache_tier(50);
        let short = cluster.wsp_recovery_time(50, Nanos::from_secs(10));
        let long = cluster.wsp_recovery_time(50, Nanos::from_secs(3600));
        assert!(long > short);
        // But even an hour-long outage beats full re-reads.
        assert!(long < cluster.backend_recovery_time(50));
    }

    #[test]
    #[should_panic(expected = "bad failure count")]
    fn zero_failures_rejected() {
        let _ = ClusterSpec::memcache_tier(10).backend_recovery_time(0);
    }
}
