//! The power-fail monitor: the microcontroller that watches the ATX
//! `PWR_OK` line and interrupts the host (paper §4, "Power monitor").

use wsp_units::{Nanos, Watts};

use crate::Psu;

/// A power-failure notification as seen by the host processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailEvent {
    /// Time from `PWR_OK` dropping to the host interrupt firing
    /// (microcontroller polling + serial line).
    pub interrupt_latency: Nanos,
    /// Residual energy window measured from `PWR_OK` dropping.
    pub total_window: Nanos,
    /// Window remaining once the host starts executing its save routine
    /// (`total_window − interrupt_latency`, saturating).
    pub usable_window: Nanos,
}

/// One sampled transition of the ATX `PWR_OK` line, as recorded by the
/// monitor's input-capture unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwrOkSample {
    /// Timestamp of the transition.
    pub at: Nanos,
    /// Line level from this instant until the next sample (the final
    /// sample's level persists).
    pub ok: bool,
}

impl PwrOkSample {
    /// Convenience constructor.
    #[must_use]
    pub fn new(at: Nanos, ok: bool) -> Self {
        PwrOkSample { at, ok }
    }
}

/// The debounced classification of a `PWR_OK` trace (paper §5.2: the
/// detector only declares input-power failure once the line has stayed
/// low for a full debounce interval, so sub-threshold glitches never
/// trigger a spurious whole-system save).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwrOkVerdict {
    /// Every low excursion recovered before the debounce interval
    /// elapsed: no save is initiated.
    Glitch {
        /// Number of sub-threshold dips observed.
        dips: u32,
        /// Duration of the longest dip.
        longest_dip: Nanos,
    },
    /// The line stayed low for the full debounce interval.
    PowerFail {
        /// When the detector committed to the failure (start of the
        /// qualifying low interval plus the debounce time).
        detected_at: Nanos,
        /// Sub-threshold dips seen *before* the qualifying drop.
        dips_before: u32,
    },
}

/// Typed errors from the monitor's trace classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MonitorError {
    /// Samples were not in non-decreasing timestamp order.
    NonMonotonicTrace {
        /// Index of the out-of-order sample.
        index: usize,
    },
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::NonMonotonicTrace { index } => {
                write!(f, "PWR_OK trace is non-monotonic at sample {index}")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

/// The NetDuino-style microcontroller of the prototype: watches
/// `PWR_OK`, raises a host interrupt over a serial line, and relays
/// save/restore commands to the NVDIMMs over I2C.
///
/// # Examples
///
/// ```
/// use wsp_power::{PowerMonitor, Psu};
/// use wsp_units::Watts;
///
/// let monitor = PowerMonitor::netduino();
/// let event = monitor.power_fail(&Psu::atx_1050w(), Watts::new(350.0));
/// assert!(event.usable_window < event.total_window);
/// assert!(event.usable_window.as_millis() >= 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerMonitor {
    /// `PWR_OK` edge → host interrupt latency.
    pub interrupt_latency: Nanos,
    /// Host command → NVDIMM command latency (serial + I2C relay).
    pub i2c_command_latency: Nanos,
    /// How long `PWR_OK` must stay low before the monitor declares an
    /// input-power failure (paper §5.2's 250 µs detector).
    pub debounce: Nanos,
}

impl PowerMonitor {
    /// The paper's §5.2 debounce interval: 250 µs.
    pub const DEFAULT_DEBOUNCE: Nanos = Nanos::from_micros(250);

    /// The prototype's NetDuino microcontroller: ~100 µs to interrupt the
    /// host, ~200 µs to relay an I2C command to the NVDIMMs.
    #[must_use]
    pub fn netduino() -> Self {
        PowerMonitor {
            interrupt_latency: Nanos::from_micros(100),
            i2c_command_latency: Nanos::from_micros(200),
            debounce: Self::DEFAULT_DEBOUNCE,
        }
    }

    /// Creates a monitor with explicit latencies and the default
    /// 250 µs debounce.
    #[must_use]
    pub fn new(interrupt_latency: Nanos, i2c_command_latency: Nanos) -> Self {
        PowerMonitor {
            interrupt_latency,
            i2c_command_latency,
            debounce: Self::DEFAULT_DEBOUNCE,
        }
    }

    /// Replaces the debounce interval.
    #[must_use]
    pub fn with_debounce(mut self, debounce: Nanos) -> Self {
        self.debounce = debounce;
        self
    }

    /// Classifies a `PWR_OK` transition trace: dips shorter than the
    /// debounce interval are glitches; the first low interval that lasts
    /// the full interval (including a trailing low that never recovers)
    /// is a power failure, detected `debounce` after the line dropped.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::NonMonotonicTrace`] if sample timestamps
    /// decrease.
    pub fn classify_pwr_ok(&self, samples: &[PwrOkSample]) -> Result<PwrOkVerdict, MonitorError> {
        let mut dips: u32 = 0;
        let mut longest_dip = Nanos::ZERO;
        let mut low_since: Option<Nanos> = None;
        let mut last_at = Nanos::ZERO;
        for (index, sample) in samples.iter().enumerate() {
            if index > 0 && sample.at < last_at {
                return Err(MonitorError::NonMonotonicTrace { index });
            }
            last_at = sample.at;
            match (low_since, sample.ok) {
                (None, false) => low_since = Some(sample.at),
                (Some(since), true) => {
                    let dur = sample.at.saturating_sub(since);
                    if dur >= self.debounce {
                        return Ok(PwrOkVerdict::PowerFail {
                            detected_at: since + self.debounce,
                            dips_before: dips,
                        });
                    }
                    dips += 1;
                    longest_dip = longest_dip.max(dur);
                    low_since = None;
                }
                _ => {}
            }
        }
        // A trailing low level persists, so it always outlasts the
        // debounce interval eventually.
        if let Some(since) = low_since {
            return Ok(PwrOkVerdict::PowerFail {
                detected_at: since + self.debounce,
                dips_before: dips,
            });
        }
        Ok(PwrOkVerdict::Glitch { dips, longest_dip })
    }

    /// Models an input-power failure: computes the PSU's residual window
    /// at the current `load` and the slice of it the host can actually
    /// use after interrupt delivery.
    #[must_use]
    pub fn power_fail(&self, psu: &Psu, load: Watts) -> PowerFailEvent {
        let total = psu.residual_window(load);
        PowerFailEvent {
            interrupt_latency: self.interrupt_latency,
            total_window: total,
            usable_window: total.saturating_sub(self.interrupt_latency),
        }
    }
}

impl Default for PowerMonitor {
    fn default() -> Self {
        Self::netduino()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_window_subtracts_interrupt_latency() {
        let m = PowerMonitor::new(Nanos::from_millis(1), Nanos::ZERO);
        let e = m.power_fail(&Psu::atx_1050w(), Watts::new(350.0));
        assert_eq!(e.total_window - e.usable_window, Nanos::from_millis(1));
    }

    #[test]
    fn tight_window_saturates_to_zero() {
        let m = PowerMonitor::new(Nanos::from_secs(1), Nanos::ZERO);
        let e = m.power_fail(&Psu::atx_750w(), Watts::new(350.0));
        assert_eq!(e.usable_window, Nanos::ZERO);
    }

    #[test]
    fn default_is_netduino() {
        assert_eq!(PowerMonitor::default(), PowerMonitor::netduino());
    }

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn sub_threshold_dips_are_glitches() {
        let m = PowerMonitor::netduino();
        let trace = [
            PwrOkSample::new(us(0), true),
            PwrOkSample::new(us(10), false),
            PwrOkSample::new(us(60), true), // 50 µs dip
            PwrOkSample::new(us(100), false),
            PwrOkSample::new(us(300), true), // 200 µs dip
        ];
        assert_eq!(
            m.classify_pwr_ok(&trace),
            Ok(PwrOkVerdict::Glitch {
                dips: 2,
                longest_dip: us(200),
            })
        );
    }

    #[test]
    fn sustained_low_is_power_fail_after_debounce() {
        let m = PowerMonitor::netduino();
        let trace = [
            PwrOkSample::new(us(0), true),
            PwrOkSample::new(us(40), false),
            PwrOkSample::new(us(90), true), // glitch
            PwrOkSample::new(us(500), false),
            PwrOkSample::new(us(900), true), // 400 µs ≥ 250 µs debounce
        ];
        assert_eq!(
            m.classify_pwr_ok(&trace),
            Ok(PwrOkVerdict::PowerFail {
                detected_at: us(750),
                dips_before: 1,
            })
        );
    }

    #[test]
    fn trailing_low_is_power_fail() {
        let m = PowerMonitor::netduino();
        let trace = [
            PwrOkSample::new(us(0), true),
            PwrOkSample::new(us(100), false),
        ];
        assert_eq!(
            m.classify_pwr_ok(&trace),
            Ok(PwrOkVerdict::PowerFail {
                detected_at: us(350),
                dips_before: 0,
            })
        );
    }

    #[test]
    fn exactly_debounce_long_dip_fails() {
        let m = PowerMonitor::netduino();
        let trace = [
            PwrOkSample::new(us(0), false),
            PwrOkSample::new(us(250), true),
        ];
        assert!(matches!(
            m.classify_pwr_ok(&trace),
            Ok(PwrOkVerdict::PowerFail { .. })
        ));
    }

    #[test]
    fn non_monotonic_trace_is_typed_error() {
        let m = PowerMonitor::netduino();
        let trace = [
            PwrOkSample::new(us(100), false),
            PwrOkSample::new(us(50), true),
        ];
        assert_eq!(
            m.classify_pwr_ok(&trace),
            Err(MonitorError::NonMonotonicTrace { index: 1 })
        );
    }

    #[test]
    fn empty_trace_is_clean() {
        let m = PowerMonitor::netduino();
        assert_eq!(
            m.classify_pwr_ok(&[]),
            Ok(PwrOkVerdict::Glitch {
                dips: 0,
                longest_dip: Nanos::ZERO,
            })
        );
    }
}
