//! The power-fail monitor: the microcontroller that watches the ATX
//! `PWR_OK` line and interrupts the host (paper §4, "Power monitor").

use wsp_units::{Nanos, Watts};

use crate::Psu;

/// A power-failure notification as seen by the host processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailEvent {
    /// Time from `PWR_OK` dropping to the host interrupt firing
    /// (microcontroller polling + serial line).
    pub interrupt_latency: Nanos,
    /// Residual energy window measured from `PWR_OK` dropping.
    pub total_window: Nanos,
    /// Window remaining once the host starts executing its save routine
    /// (`total_window − interrupt_latency`, saturating).
    pub usable_window: Nanos,
}

/// The NetDuino-style microcontroller of the prototype: watches
/// `PWR_OK`, raises a host interrupt over a serial line, and relays
/// save/restore commands to the NVDIMMs over I2C.
///
/// # Examples
///
/// ```
/// use wsp_power::{PowerMonitor, Psu};
/// use wsp_units::Watts;
///
/// let monitor = PowerMonitor::netduino();
/// let event = monitor.power_fail(&Psu::atx_1050w(), Watts::new(350.0));
/// assert!(event.usable_window < event.total_window);
/// assert!(event.usable_window.as_millis() >= 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerMonitor {
    /// `PWR_OK` edge → host interrupt latency.
    pub interrupt_latency: Nanos,
    /// Host command → NVDIMM command latency (serial + I2C relay).
    pub i2c_command_latency: Nanos,
}

impl PowerMonitor {
    /// The prototype's NetDuino microcontroller: ~100 µs to interrupt the
    /// host, ~200 µs to relay an I2C command to the NVDIMMs.
    #[must_use]
    pub fn netduino() -> Self {
        PowerMonitor {
            interrupt_latency: Nanos::from_micros(100),
            i2c_command_latency: Nanos::from_micros(200),
        }
    }

    /// Creates a monitor with explicit latencies.
    #[must_use]
    pub fn new(interrupt_latency: Nanos, i2c_command_latency: Nanos) -> Self {
        PowerMonitor {
            interrupt_latency,
            i2c_command_latency,
        }
    }

    /// Models an input-power failure: computes the PSU's residual window
    /// at the current `load` and the slice of it the host can actually
    /// use after interrupt delivery.
    #[must_use]
    pub fn power_fail(&self, psu: &Psu, load: Watts) -> PowerFailEvent {
        let total = psu.residual_window(load);
        PowerFailEvent {
            interrupt_latency: self.interrupt_latency,
            total_window: total,
            usable_window: total.saturating_sub(self.interrupt_latency),
        }
    }
}

impl Default for PowerMonitor {
    fn default() -> Self {
        Self::netduino()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_window_subtracts_interrupt_latency() {
        let m = PowerMonitor::new(Nanos::from_millis(1), Nanos::ZERO);
        let e = m.power_fail(&Psu::atx_1050w(), Watts::new(350.0));
        assert_eq!(e.total_window - e.usable_window, Nanos::from_millis(1));
    }

    #[test]
    fn tight_window_saturates_to_zero() {
        let m = PowerMonitor::new(Nanos::from_secs(1), Nanos::ZERO);
        let e = m.power_fail(&Psu::atx_750w(), Watts::new(350.0));
        assert_eq!(e.usable_window, Nanos::ZERO);
    }

    #[test]
    fn default_is_netduino() {
        assert_eq!(PowerMonitor::default(), PowerMonitor::netduino());
    }
}
