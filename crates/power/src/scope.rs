//! A sampling-oscilloscope model: reproduces the paper's residual-window
//! measurement procedure (Figure 6) — monitor `PWR_OK` and the DC rails
//! at 100 kHz and report the first 250 µs interval in which any rail sits
//! below 95 % of nominal.

use wsp_units::{Nanos, Watts};

use crate::psu::{Psu, REGULATION_FLOOR};

/// One oscilloscope sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeSample {
    /// Time relative to the `PWR_OK` falling edge (negative = before the
    /// failure).
    pub offset_ns: i64,
    /// `PWR_OK` logic level.
    pub pwr_ok: bool,
    /// Measured rail voltages, in the PSU's rail order (12 V, 5 V, 3.3 V).
    pub rails: Vec<f64>,
}

/// A captured trace plus the capture's metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeTrace {
    /// Samples in time order.
    pub samples: Vec<ScopeSample>,
    /// Sampling interval.
    pub sample_interval: Nanos,
    /// Nominal rail voltages.
    pub nominals: Vec<f64>,
}

impl ScopeTrace {
    /// Applies the paper's detector: the measured window is the time from
    /// the `PWR_OK` drop (offset 0) to the start of the first 250 µs
    /// interval throughout which some rail stays below 95 % of nominal.
    /// Returns `None` if no rail ever drops within the capture.
    #[must_use]
    pub fn measured_window(&self) -> Option<Nanos> {
        let detect_samples =
            (250_000 / self.sample_interval.as_nanos().max(1)).max(1) as usize;
        let floors: Vec<f64> = self.nominals.iter().map(|v| v * REGULATION_FLOOR).collect();
        let post: Vec<&ScopeSample> =
            self.samples.iter().filter(|s| s.offset_ns >= 0).collect();
        for (rail, floor) in floors.iter().enumerate() {
            let mut run = 0usize;
            for (i, s) in post.iter().enumerate() {
                if s.rails[rail] < *floor {
                    run += 1;
                    if run >= detect_samples {
                        let start = post[i + 1 - run];
                        return Some(Nanos::new(start.offset_ns as u64));
                    }
                } else {
                    run = 0;
                }
            }
        }
        None
    }
}

/// The measurement instrument: sample rate and capture length.
///
/// # Examples
///
/// ```
/// use wsp_power::{Oscilloscope, Psu};
/// use wsp_units::{Nanos, Watts};
///
/// let scope = Oscilloscope::at_100khz();
/// let trace = scope.capture(&Psu::atx_1050w(), Watts::new(350.0), Nanos::from_millis(100));
/// let window = trace.measured_window().expect("rails drop within 100 ms");
/// assert!((window.as_millis_f64() - 33.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oscilloscope {
    /// Interval between samples.
    pub sample_interval: Nanos,
    /// Pre-trigger capture length (before the `PWR_OK` drop).
    pub pre_trigger: Nanos,
}

impl Oscilloscope {
    /// The paper's configuration: 100 kHz sampling, 20 ms of pre-trigger.
    #[must_use]
    pub fn at_100khz() -> Self {
        Oscilloscope {
            sample_interval: Nanos::from_micros(10),
            pre_trigger: Nanos::from_millis(20),
        }
    }

    /// Captures `duration` of post-failure samples of `psu` discharging
    /// into `load`, with measurement ripple and noise overlaid so the
    /// detector has something realistic to chew on. The noise is
    /// deterministic (a fixed-seed xorshift), so traces are reproducible.
    #[must_use]
    pub fn capture(&self, psu: &Psu, load: Watts, duration: Nanos) -> ScopeTrace {
        let nominals: Vec<f64> = psu.rails.iter().map(|r| r.nominal.get()).collect();
        let step = self.sample_interval.as_nanos().max(1);
        let mut samples = Vec::new();
        let mut noise_state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut noise = move || {
            // xorshift64*; scaled to ±1.
            noise_state ^= noise_state >> 12;
            noise_state ^= noise_state << 25;
            noise_state ^= noise_state >> 27;
            let v = noise_state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            (v >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };

        let pre = self.pre_trigger.as_nanos() as i64;
        let mut t = -pre;
        let end = duration.as_nanos() as i64;
        while t <= end {
            let v12 = if t < 0 {
                psu.rails[0].nominal
            } else {
                psu.rail_voltage_at(load, Nanos::new(t as u64))
            };
            let floor12 = psu.rails[0].floor();
            let rails: Vec<f64> = nominals
                .iter()
                .enumerate()
                .map(|(i, nominal)| {
                    // Secondary rails are regulated off the 12 V bus: they
                    // hold nominal until the bus leaves regulation, then
                    // collapse proportionally.
                    let base = if i == 0 {
                        v12.get()
                    } else if v12 >= floor12 {
                        *nominal
                    } else {
                        nominal * (v12.get() / floor12.get()).max(0.0)
                    };
                    // 120 Hz rectifier ripple + white measurement noise.
                    let ripple = 0.004 * nominal * (t as f64 * 2.0 * std::f64::consts::PI * 120.0 / 1e9).sin();
                    base + ripple + 0.002 * nominal * noise()
                })
                .collect();
            samples.push(ScopeSample {
                offset_ns: t,
                pwr_ok: t < 0,
                rails,
            });
            t += step as i64;
        }
        ScopeTrace {
            samples,
            sample_interval: Nanos::new(step),
            nominals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_intel_1050w_busy_window_is_33ms() {
        let scope = Oscilloscope::at_100khz();
        let trace = scope.capture(&Psu::atx_1050w(), Watts::new(350.0), Nanos::from_millis(120));
        let w = trace.measured_window().expect("window detected");
        assert!((w.as_millis_f64() - 33.0).abs() < 2.0, "measured {w}");
    }

    #[test]
    fn detector_ignores_sub_250us_glitches() {
        // A trace that dips below the floor for 100 us then recovers.
        let nominals = vec![12.0];
        let step = Nanos::from_micros(10);
        let mut samples = Vec::new();
        for i in 0..1000i64 {
            let t = i * 10_000;
            let v = if (200_000..300_000).contains(&t) { 11.0 } else { 12.0 };
            samples.push(ScopeSample {
                offset_ns: t,
                pwr_ok: false,
                rails: vec![v],
            });
        }
        let trace = ScopeTrace {
            samples,
            sample_interval: step,
            nominals,
        };
        // 100 us dip: 10 samples < 25 required.
        assert_eq!(trace.measured_window(), None);
    }

    #[test]
    fn detector_finds_sustained_drop_start() {
        let nominals = vec![12.0];
        let step = Nanos::from_micros(10);
        let samples = (0..2000i64)
            .map(|i| {
                let t = i * 10_000;
                ScopeSample {
                    offset_ns: t,
                    pwr_ok: false,
                    rails: vec![if t >= 5_000_000 { 11.0 } else { 12.0 }],
                }
            })
            .collect();
        let trace = ScopeTrace {
            samples,
            sample_interval: step,
            nominals,
        };
        assert_eq!(trace.measured_window(), Some(Nanos::from_millis(5)));
    }

    #[test]
    fn capture_includes_pre_trigger_with_pwr_ok_high() {
        let scope = Oscilloscope::at_100khz();
        let trace = scope.capture(&Psu::atx_400w(), Watts::new(120.0), Nanos::from_millis(1));
        let pre: Vec<_> = trace.samples.iter().filter(|s| s.offset_ns < 0).collect();
        assert!(!pre.is_empty());
        assert!(pre.iter().all(|s| s.pwr_ok));
        assert!(trace.samples.iter().filter(|s| s.offset_ns >= 0).all(|s| !s.pwr_ok));
    }

    #[test]
    fn traces_are_deterministic() {
        let scope = Oscilloscope::at_100khz();
        let a = scope.capture(&Psu::atx_525w(), Watts::new(120.0), Nanos::from_millis(30));
        let b = scope.capture(&Psu::atx_525w(), Watts::new(120.0), Nanos::from_millis(30));
        assert_eq!(a, b);
    }

    #[test]
    fn secondary_rails_collapse_after_primary() {
        let scope = Oscilloscope::at_100khz();
        let trace = scope.capture(&Psu::atx_750w(), Watts::new(350.0), Nanos::from_millis(60));
        let last = trace.samples.last().unwrap();
        // Long after the 10 ms window everything has sagged.
        assert!(last.rails[0] < 11.4);
        assert!(last.rails[1] < 5.0 * 0.95 + 0.1);
        assert!(last.rails[2] < 3.3 * 0.95 + 0.1);
    }
}
