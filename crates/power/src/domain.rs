//! The shared NVDIMM power domain: one PSU plus one ultracapacitor
//! reserve backing *every* shard's flush window.
//!
//! The paper treats each machine's residual-energy window as private and
//! sufficient; real NVDIMM deployments share a power domain, so a
//! brown-out is a fight over one pool of joules. [`PowerDomain`] models
//! that pool and the vNV-Heap-style per-shard reservation accounting the
//! domain supervisor uses to carve the **global** residual window into
//! staged flush budgets. Between outages the reserve recharges with a
//! harvesting-style partial top-up (`replenish`), the regime of the
//! energy-harvesting literature: dozens of micro-outages in sequence,
//! none of which leaves time for a full recharge.
//!
//! # Examples
//!
//! ```
//! use wsp_power::{PowerDomain, Psu, Ultracapacitor};
//! use wsp_units::{Farads, Nanos, Volts, Watts};
//!
//! let reserve = Ultracapacitor::new(Farads::new(2.0), Volts::new(12.0), Volts::new(6.0));
//! let mut domain = PowerDomain::new(Psu::atx_750w(), reserve, Watts::new(300.0), 3);
//! let window = domain.global_window();
//! assert!(window > Nanos::ZERO);
//! // Shard 0 reserves half the window; shard 1 cannot take the rest + 1.
//! assert!(domain.reserve_for(0, window / 2));
//! assert!(!domain.reserve_for(1, window));
//! domain.release(0);
//! ```

use wsp_units::{Joules, Nanos, Watts};

use crate::{Psu, Ultracapacitor};

/// One shard's reservation against the shared window: how much of the
/// global residual budget it currently owns (vNV-Heap ownership-style
/// accounting — a shard may only spend window time it reserved first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardScope {
    /// Shard index inside the domain.
    pub shard: usize,
    /// Time-slice of the shared window currently reserved.
    pub reserved: Nanos,
}

/// A shared power domain: one PSU's hold-up plus one ultracapacitor
/// reserve, divided among `shards` persistent heaps by explicit
/// reservation.
#[derive(Debug, Clone)]
pub struct PowerDomain {
    psu: Psu,
    reserve: Ultracapacitor,
    draw: Watts,
    scopes: Vec<ShardScope>,
}

impl PowerDomain {
    /// A domain of `shards` scopes over `psu` + `reserve`, drawing a
    /// constant `draw` during a save.
    #[must_use]
    pub fn new(psu: Psu, reserve: Ultracapacitor, draw: Watts, shards: usize) -> Self {
        PowerDomain {
            psu,
            reserve,
            draw,
            scopes: (0..shards)
                .map(|shard| ShardScope {
                    shard,
                    reserved: Nanos::ZERO,
                })
                .collect(),
        }
    }

    /// Number of shard scopes in the domain.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.scopes.len()
    }

    /// The constant save-time power draw the windows are computed at.
    #[must_use]
    pub fn draw(&self) -> Watts {
        self.draw
    }

    /// The **global** residual-energy window: the PSU's hold-up at the
    /// domain draw plus however long the shared reserve can carry the
    /// same draw. Every shard's flush budget comes out of this one
    /// number — there is no per-shard ultracap to fall back on.
    #[must_use]
    pub fn global_window(&self) -> Nanos {
        self.psu
            .residual_window(self.draw)
            .saturating_add(self.reserve.supply_time(self.draw))
    }

    /// Sum of all outstanding shard reservations.
    #[must_use]
    pub fn reserved_total(&self) -> Nanos {
        self.scopes
            .iter()
            .fold(Nanos::ZERO, |acc, s| acc.saturating_add(s.reserved))
    }

    /// Window time no shard has claimed yet.
    #[must_use]
    pub fn unreserved(&self) -> Nanos {
        self.global_window().saturating_sub(self.reserved_total())
    }

    /// Reserves `need` more of the shared window for `shard`. Refuses
    /// (returns `false`, reserving nothing) when the unreserved
    /// remainder cannot cover it — the caller must sacrifice or shrink.
    pub fn reserve_for(&mut self, shard: usize, need: Nanos) -> bool {
        if need > self.unreserved() {
            return false;
        }
        self.scopes[shard].reserved = self.scopes[shard].reserved.saturating_add(need);
        true
    }

    /// Releases `shard`'s reservation, returning what it held.
    pub fn release(&mut self, shard: usize) -> Nanos {
        std::mem::replace(&mut self.scopes[shard].reserved, Nanos::ZERO)
    }

    /// Releases every shard's reservation (end of a triage pass).
    pub fn release_all(&mut self) {
        for scope in &mut self.scopes {
            scope.reserved = Nanos::ZERO;
        }
    }

    /// The scope record for `shard`.
    #[must_use]
    pub fn scope(&self, shard: usize) -> ShardScope {
        self.scopes[shard]
    }

    /// Drains the shared reserve for an outage of `duration`: the PSU
    /// rides through its own hold-up, everything longer comes out of
    /// the reserve. Returns `false` if the reserve sagged below its
    /// usable floor before the interval ended.
    pub fn drain_outage(&mut self, duration: Nanos) -> bool {
        let from_reserve = duration.saturating_sub(self.psu.residual_window(self.draw));
        if from_reserve == Nanos::ZERO {
            return true;
        }
        self.reserve.discharge(self.draw, from_reserve)
    }

    /// Harvesting-style replenish between outages: `charge` watts for
    /// `duration` deposited into the reserve, capped at full. Returns
    /// `true` when the reserve reached full charge (recording an aging
    /// cycle); a partial top-up — the common case inside a storm —
    /// records none.
    pub fn replenish(&mut self, charge: Watts, duration: Nanos) -> bool {
        self.reserve.recharge_partial(charge * duration)
    }

    /// Deposits raw energy into the reserve (see
    /// [`Ultracapacitor::recharge_partial`]).
    pub fn replenish_energy(&mut self, energy: Joules) -> bool {
        self.reserve.recharge_partial(energy)
    }

    /// The shared reserve cell.
    #[must_use]
    pub fn reserve_cell(&self) -> &Ultracapacitor {
        &self.reserve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_units::{Farads, Volts};

    fn domain() -> PowerDomain {
        let reserve =
            Ultracapacitor::new(Farads::new(2.0), Volts::new(12.0), Volts::new(6.0));
        PowerDomain::new(Psu::atx_750w(), reserve, Watts::new(300.0), 3)
    }

    #[test]
    fn global_window_exceeds_psu_alone() {
        let d = domain();
        let psu_only = Psu::atx_750w().residual_window(Watts::new(300.0));
        assert!(d.global_window() > psu_only, "the reserve must add time");
    }

    #[test]
    fn reservations_are_conserved_and_refused_past_the_window() {
        let mut d = domain();
        let window = d.global_window();
        assert!(d.reserve_for(0, window / 2));
        assert!(d.reserve_for(1, window / 4));
        assert_eq!(d.reserved_total(), window / 2 + window / 4);
        // The remaining quarter cannot cover half.
        assert!(!d.reserve_for(2, window / 2));
        assert_eq!(
            d.scope(2).reserved,
            Nanos::ZERO,
            "a refused reservation takes nothing"
        );
        assert_eq!(d.release(0), window / 2);
        assert!(d.reserve_for(2, window / 2));
        d.release_all();
        assert_eq!(d.reserved_total(), Nanos::ZERO);
        assert_eq!(d.unreserved(), d.global_window());
    }

    #[test]
    fn drain_shrinks_the_window_and_replenish_restores_it() {
        let mut d = domain();
        let before = d.global_window();
        // An outage longer than the PSU hold-up bites into the reserve.
        let hold_up = Psu::atx_750w().residual_window(Watts::new(300.0));
        assert!(d.drain_outage(hold_up.saturating_add(Nanos::from_millis(2))));
        let after = d.global_window();
        assert!(after < before, "drain must shrink the global window");
        // A short dip inside the hold-up costs the reserve nothing.
        let mid = d.global_window();
        assert!(d.drain_outage(Nanos::from_micros(10)));
        assert_eq!(d.global_window(), mid);
        // Partial replenish grows the window without an aging cycle.
        let cycles = d.reserve_cell().cycles();
        assert!(!d.replenish(Watts::new(5.0), Nanos::from_millis(1)));
        assert!(d.global_window() > after);
        assert_eq!(d.reserve_cell().cycles(), cycles);
        // A long charge reaches full and records the cycle; the window
        // comes back to (almost) new, minus one cycle of Figure 1 fade.
        assert!(d.replenish(Watts::new(200.0), Nanos::from_secs(10)));
        assert_eq!(d.reserve_cell().cycles(), cycles + 1);
        let back = d.global_window();
        assert!(back > after && back <= before, "{back} vs {before}");
        assert!(before.as_nanos() - back.as_nanos() < before.as_nanos() / 100);
    }
}
