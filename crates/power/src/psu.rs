//! ATX power supply model: output rails, `PWR_OK`, and the residual
//! energy window.

use std::fmt;

use wsp_units::{Farads, Nanos, Volts, Watts};

/// Fraction of nominal rail voltage below which the paper's measurement
/// procedure declares the output "dropped" (any 250 µs interval under 95 %
/// of nominal).
pub const REGULATION_FLOOR: f64 = 0.95;

/// One DC output rail.
#[derive(Debug, Clone, PartialEq)]
pub struct Rail {
    /// Rail name ("12V", "5V", "3.3V").
    pub name: String,
    /// Nominal output voltage.
    pub nominal: Volts,
}

impl Rail {
    /// Creates a rail.
    #[must_use]
    pub fn new(name: impl Into<String>, nominal: Volts) -> Self {
        Rail {
            name: name.into(),
            nominal,
        }
    }

    /// The voltage below which this rail is out of regulation.
    #[must_use]
    pub fn floor(&self) -> Volts {
        self.nominal * REGULATION_FLOOR
    }
}

/// An ATX power supply with an empirically calibrated residual energy
/// window.
///
/// # Model
///
/// After input power fails the PSU drops `PWR_OK` and its outputs coast on
/// stored energy. We model the store as an *effective output capacitance*
/// on the 12 V bus that is an affine function of load power,
/// `C(P) = a + b·P`: real supplies differ wildly here (the paper's 750 W
/// and 1050 W units show load-independent windows, the 525 W unit loses
/// most of its window under load, and the 400 W unit barely cares), and an
/// affine `C(P)` is the simplest form that reproduces every measured pair
/// in Figure 7. The window is then the constant-power discharge time from
/// nominal down to the 95 % regulation floor:
///
/// `t(P) = C(P) · (V₀² − (0.95·V₀)²) / (2P)`
///
/// Calibration constructors ([`Psu::atx_400w`] … [`Psu::atx_1050w`]) feed
/// the paper's measured (load, window) pairs to
/// [`Psu::from_measurements`], which solves for `a` and `b`.
///
/// # Examples
///
/// ```
/// use wsp_power::Psu;
/// use wsp_units::{Nanos, Watts};
///
/// // The paper's 525 W unit: 22 ms busy, 71 ms idle.
/// let psu = Psu::atx_525w();
/// let busy = psu.residual_window(Watts::new(120.0));
/// assert!((busy.as_millis_f64() - 22.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Psu {
    /// Model name.
    pub name: String,
    /// Rated output power.
    pub rated: Watts,
    /// Output rails; the first is the primary (12 V) bus that the
    /// capacitance model discharges.
    pub rails: Vec<Rail>,
    /// Constant term of the effective capacitance (farads).
    cap_base: f64,
    /// Load-proportional term of the effective capacitance (farads per
    /// watt; may be negative for supplies that regulate worse under
    /// load).
    cap_per_watt: f64,
}

impl Psu {
    /// Builds a PSU whose effective capacitance is constant (`C(P) = c`).
    #[must_use]
    pub fn from_capacitance(name: impl Into<String>, rated: Watts, c: Farads) -> Self {
        Psu {
            name: name.into(),
            rated,
            rails: Self::default_rails(),
            cap_base: c.get(),
            cap_per_watt: 0.0,
        }
    }

    /// Builds a PSU calibrated to two measured (load, window) points, as
    /// taken from an oscilloscope trace. Solves `C(P) = a + b·P` so that
    /// [`Psu::residual_window`] reproduces both measurements exactly.
    ///
    /// # Panics
    ///
    /// Panics if the two loads are equal or non-positive.
    #[must_use]
    pub fn from_measurements(
        name: impl Into<String>,
        rated: Watts,
        busy: (Watts, Nanos),
        idle: (Watts, Nanos),
    ) -> Self {
        let (p1, t1) = busy;
        let (p2, t2) = idle;
        assert!(p1.get() > 0.0 && p2.get() > 0.0, "loads must be positive");
        assert!(
            (p1.get() - p2.get()).abs() > f64::EPSILON,
            "calibration loads must differ"
        );
        let k = Self::discharge_constant();
        // t = C(P)·k/P  =>  C(P) = t·P/k; two points give the affine fit.
        let c1 = t1.as_secs_f64() * p1.get() / k;
        let c2 = t2.as_secs_f64() * p2.get() / k;
        let b = (c1 - c2) / (p1.get() - p2.get());
        let a = c1 - b * p1.get();
        Psu {
            name: name.into(),
            rated,
            rails: Self::default_rails(),
            cap_base: a,
            cap_per_watt: b,
        }
    }

    fn default_rails() -> Vec<Rail> {
        vec![
            Rail::new("12V", Volts::new(12.0)),
            Rail::new("5V", Volts::new(5.0)),
            Rail::new("3.3V", Volts::new(3.3)),
        ]
    }

    /// `(V₀² − (0.95 V₀)²) / 2` for the 12 V bus: joules released per
    /// farad while sagging from nominal to the regulation floor.
    fn discharge_constant() -> f64 {
        let v0 = 12.0f64;
        let vf = v0 * REGULATION_FLOOR;
        (v0 * v0 - vf * vf) / 2.0
    }

    /// Effective output capacitance at load `p`, clamped to be
    /// non-negative.
    #[must_use]
    pub fn effective_capacitance(&self, p: Watts) -> Farads {
        Farads::new((self.cap_base + self.cap_per_watt * p.get()).max(0.0))
    }

    /// The residual energy window at load `p`: time from `PWR_OK`
    /// dropping until the first rail leaves regulation. A non-positive
    /// load never drains the store ([`Nanos::MAX`]).
    #[must_use]
    pub fn residual_window(&self, p: Watts) -> Nanos {
        if p.get() <= 0.0 {
            return Nanos::MAX;
        }
        let c = self.effective_capacitance(p);
        Nanos::from_secs_f64(c.get() * Self::discharge_constant() / p.get())
    }

    /// Voltage on the primary (12 V) rail at time `t` after `PWR_OK`
    /// drops, under constant load `p`: `√(V₀² − 2·P·t/C)`, floored at
    /// zero.
    #[must_use]
    pub fn rail_voltage_at(&self, p: Watts, t: Nanos) -> Volts {
        let v0 = self.rails[0].nominal;
        if p.get() <= 0.0 {
            return v0;
        }
        let c = self.effective_capacitance(p);
        c.voltage_after(v0, p * t)
    }

    /// The paper's 400 W unit on the AMD testbed: 346 ms busy, 392 ms
    /// idle — the roomiest window measured.
    #[must_use]
    pub fn atx_400w() -> Self {
        Self::from_measurements(
            "ATX 400W",
            Watts::new(400.0),
            (Watts::new(120.0), Nanos::from_millis(346)),
            (Watts::new(60.0), Nanos::from_millis(392)),
        )
    }

    /// The paper's 525 W unit on the AMD testbed: 22 ms busy, 71 ms idle
    /// — strongly load-sensitive.
    #[must_use]
    pub fn atx_525w() -> Self {
        Self::from_measurements(
            "ATX 525W",
            Watts::new(525.0),
            (Watts::new(120.0), Nanos::from_millis(22)),
            (Watts::new(60.0), Nanos::from_millis(71)),
        )
    }

    /// The paper's 750 W unit on the Intel testbed: 10 ms busy and idle —
    /// the tightest window measured.
    #[must_use]
    pub fn atx_750w() -> Self {
        Self::from_measurements(
            "ATX 750W",
            Watts::new(750.0),
            (Watts::new(350.0), Nanos::from_millis(10)),
            (Watts::new(200.0), Nanos::from_millis(10)),
        )
    }

    /// The paper's 1050 W unit on the Intel testbed: 33 ms busy and idle.
    #[must_use]
    pub fn atx_1050w() -> Self {
        Self::from_measurements(
            "ATX 1050W",
            Watts::new(1050.0),
            (Watts::new(350.0), Nanos::from_millis(33)),
            (Watts::new(200.0), Nanos::from_millis(33)),
        )
    }

    /// All four PSUs of Figure 7, in the paper's order.
    #[must_use]
    pub fn paper_psus() -> Vec<Psu> {
        vec![
            Self::atx_400w(),
            Self::atx_525w(),
            Self::atx_750w(),
            Self::atx_1050w(),
        ]
    }
}

impl fmt::Display for Psu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} rated)", self.name, self.rated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Nanos {
        Nanos::from_millis(n)
    }

    /// Figure 7 calibration: every (PSU, load) pair must land on the
    /// paper's measured window within 5%.
    #[test]
    fn fig7_calibration() {
        let cases: &[(Psu, f64, f64)] = &[
            (Psu::atx_400w(), 346.0, 392.0),
            (Psu::atx_525w(), 22.0, 71.0),
            (Psu::atx_750w(), 10.0, 10.0),
            (Psu::atx_1050w(), 33.0, 33.0),
        ];
        for (psu, busy_ms, idle_ms) in cases {
            let (p_busy, p_idle) = if psu.rated.get() >= 700.0 {
                (Watts::new(350.0), Watts::new(200.0))
            } else {
                (Watts::new(120.0), Watts::new(60.0))
            };
            let b = psu.residual_window(p_busy).as_millis_f64();
            let i = psu.residual_window(p_idle).as_millis_f64();
            assert!((b - busy_ms).abs() / busy_ms < 0.05, "{}: busy {b} vs {busy_ms}", psu.name);
            assert!((i - idle_ms).abs() / idle_ms < 0.05, "{}: idle {i} vs {idle_ms}", psu.name);
        }
    }

    #[test]
    fn zero_load_window_is_unbounded() {
        assert_eq!(Psu::atx_750w().residual_window(Watts::ZERO), Nanos::MAX);
    }

    #[test]
    fn rail_voltage_decays_monotonically() {
        let psu = Psu::atx_1050w();
        let p = Watts::new(350.0);
        let mut last = Volts::new(13.0);
        for t_ms in [0u64, 5, 10, 20, 33, 50, 100] {
            let v = psu.rail_voltage_at(p, ms(t_ms));
            assert!(v < last || v == Volts::ZERO, "voltage must not rise");
            last = v;
        }
        // At the window boundary the rail is exactly at the floor.
        let at_window = psu.rail_voltage_at(p, psu.residual_window(p));
        assert!((at_window.get() - 12.0 * REGULATION_FLOOR).abs() < 0.01);
    }

    #[test]
    fn capacitance_clamped_non_negative() {
        // The 525 W unit has a negative load coefficient; at absurd loads
        // the effective capacitance must clamp to zero, not go negative.
        let psu = Psu::atx_525w();
        let c = psu.effective_capacitance(Watts::new(100_000.0));
        assert!(c.get() >= 0.0);
        assert_eq!(psu.residual_window(Watts::new(100_000.0)), Nanos::ZERO);
    }

    #[test]
    fn from_capacitance_matches_hand_math() {
        // 1 F from 12 V to 11.4 V releases 7.02 J; at 70.2 W that is 100 ms.
        let psu = Psu::from_capacitance("test", Watts::new(100.0), Farads::new(1.0));
        let w = psu.residual_window(Watts::new(70.2));
        assert!((w.as_millis_f64() - 100.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "calibration loads must differ")]
    fn equal_calibration_loads_rejected() {
        let _ = Psu::from_measurements(
            "bad",
            Watts::new(100.0),
            (Watts::new(50.0), ms(10)),
            (Watts::new(50.0), ms(20)),
        );
    }

    #[test]
    fn rails_have_floors() {
        let psu = Psu::atx_400w();
        assert_eq!(psu.rails.len(), 3);
        let floor = psu.rails[0].floor();
        assert!((floor.get() - 11.4).abs() < 1e-9);
    }
}
