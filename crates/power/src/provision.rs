//! Supercapacitor provisioning: sizing and pricing the extra capacitance
//! that guarantees a safe flush-on-fail window (paper §5.4 and §6,
//! "NVRAM failures").

use wsp_units::{Farads, Joules, Nanos, Volts, Watts};

use crate::psu::REGULATION_FLOOR;

/// A provisioning recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisionPlan {
    /// Energy the save path needs, including the safety margin.
    pub required_energy: Joules,
    /// Supercapacitance to add on the 12 V bus so that the usable 5 %
    /// regulation band alone covers the requirement.
    pub capacitance: Farads,
    /// Estimated component cost in US dollars.
    pub cost_usd: f64,
    /// The residual window the added capacitance provides by itself.
    pub provided_window: Nanos,
}

/// Sizes a supercapacitor for a given system.
///
/// Pricing uses the paper's Foresight market figures: below $0.01 per
/// farad and $2.85 per kilojoule, plus a small fixed packaging cost. The
/// paper's example — the Intel testbed's save powered by a 0.5 F part for
/// under US$2 — falls out of these numbers.
///
/// # Examples
///
/// ```
/// use wsp_power::SupercapProvisioner;
/// use wsp_units::{Nanos, Watts};
///
/// let prov = SupercapProvisioner::new(Watts::new(350.0), 3.0);
/// let plan = prov.plan(Nanos::from_millis(3));
/// assert!(plan.capacitance.get() <= 0.5);
/// assert!(plan.cost_usd < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupercapProvisioner {
    /// Worst-case system power draw during the save.
    pub system_load: Watts,
    /// Multiplicative safety margin on the save time (e.g. 3.0 = size for
    /// three times the measured save).
    pub safety_margin: f64,
}

impl SupercapProvisioner {
    /// Creates a provisioner.
    ///
    /// # Panics
    ///
    /// Panics if the margin is below 1.0.
    #[must_use]
    pub fn new(system_load: Watts, safety_margin: f64) -> Self {
        assert!(safety_margin >= 1.0, "safety margin must be at least 1.0");
        SupercapProvisioner {
            system_load,
            safety_margin,
        }
    }

    /// Plans the capacitance needed to power a save of `save_time`.
    #[must_use]
    pub fn plan(&self, save_time: Nanos) -> ProvisionPlan {
        let required = self.system_load * save_time * self.safety_margin;
        // Usable band on the 12 V bus: nominal down to the 95 % floor.
        let v0 = 12.0f64;
        let vf = v0 * REGULATION_FLOOR;
        let per_farad = (v0 * v0 - vf * vf) / 2.0;
        let capacitance = Farads::new(required.get() / per_farad);
        let stored_kj = Farads::new(capacitance.get())
            .stored_energy(Volts::new(v0))
            .get()
            / 1000.0;
        let cost_usd = 1.50 + 0.01 * capacitance.get() + 2.85 * stored_kj;
        let provided_window = required / self.system_load;
        ProvisionPlan {
            required_energy: required,
            capacitance,
            cost_usd,
            provided_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper §5.4: "the state save on our test platform could be powered
    /// by a 0.5 F supercapacitor that costs less than US$2".
    #[test]
    fn intel_save_fits_half_farad_under_two_dollars() {
        let prov = SupercapProvisioner::new(Watts::new(350.0), 3.0);
        let plan = prov.plan(Nanos::from_millis(3));
        assert!(
            plan.capacitance.get() > 0.3 && plan.capacitance.get() <= 0.55,
            "capacitance {}",
            plan.capacitance
        );
        assert!(plan.cost_usd < 2.0, "cost ${:.2}", plan.cost_usd);
    }

    #[test]
    fn margin_scales_linearly() {
        let base = SupercapProvisioner::new(Watts::new(100.0), 1.0).plan(Nanos::from_millis(10));
        let doubled = SupercapProvisioner::new(Watts::new(100.0), 2.0).plan(Nanos::from_millis(10));
        assert!((doubled.capacitance.get() / base.capacitance.get() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn provided_window_covers_margin() {
        let prov = SupercapProvisioner::new(Watts::new(200.0), 3.0);
        let plan = prov.plan(Nanos::from_millis(5));
        assert_eq!(plan.provided_window.as_millis(), 15);
    }

    #[test]
    #[should_panic(expected = "safety margin")]
    fn sub_unity_margin_rejected() {
        let _ = SupercapProvisioner::new(Watts::new(1.0), 0.5);
    }
}
