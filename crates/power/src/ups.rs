//! Uninterruptible power supplies and battery-backed alternatives —
//! the incumbent solutions the paper's §2 argues NVDIMMs displace.
//!
//! A UPS keeps the *whole system* powered for minutes-to-hours on
//! lead-acid batteries (bulky, environmentally unfriendly, a correlated
//! failure point); battery-backed NVRAM keeps only the memory alive and
//! still needs battery monitoring/replacement after a few hundred
//! cycles. NVDIMM ultracaps power a one-shot save and endure hundreds
//! of thousands of cycles.

use wsp_units::{Joules, Nanos, Watts};

use crate::{AgingModel, EnergyCell};

/// A battery-based backup supply.
#[derive(Debug, Clone, PartialEq)]
pub struct Ups {
    /// Model name.
    pub name: String,
    /// Usable stored energy when new.
    pub energy: Joules,
    /// Rack space consumed (units).
    pub rack_units: f64,
    /// Battery aging behaviour.
    pub aging: AgingModel,
    /// Full charge/discharge cycles experienced.
    pub cycles: u64,
}

impl Ups {
    /// A datacenter lead-acid UPS: ~5 kWh usable, 4U of rack space.
    #[must_use]
    pub fn lead_acid_rack() -> Self {
        Ups {
            name: "lead-acid rack UPS".to_owned(),
            energy: Joules::new(5_000.0 * 3_600.0),
            rack_units: 4.0,
            aging: AgingModel::Battery,
            cycles: 0,
        }
    }

    /// A per-server "distributed UPS" battery (the Open Compute style
    /// design the paper cites): ~50 Wh, inside the chassis.
    #[must_use]
    pub fn distributed_server_battery() -> Self {
        Ups {
            name: "distributed server battery".to_owned(),
            energy: Joules::new(50.0 * 3_600.0),
            rack_units: 0.0,
            aging: AgingModel::Battery,
            cycles: 0,
        }
    }

    /// Present usable energy, accounting for battery aging.
    #[must_use]
    pub fn usable_energy(&self) -> Joules {
        self.energy * self.aging.capacity_fraction(self.cycles)
    }

    /// How long the UPS carries a system drawing `load`.
    #[must_use]
    pub fn runtime(&self, load: Watts) -> Nanos {
        self.usable_energy() / load
    }

    /// Records one full discharge event (an outage it covered).
    pub fn discharge_cycle(&mut self) {
        self.cycles += 1;
    }
}

/// Comparison row between backup technologies for a given system.
#[derive(Debug, Clone, PartialEq)]
pub struct BackupComparison {
    /// Technology label.
    pub technology: String,
    /// How long the protected state survives an outage.
    pub protection: &'static str,
    /// Runtime/coverage on one charge (UPS: bridging time; NVDIMM:
    /// unlimited — the save completes and flash holds the data).
    pub coverage: Option<Nanos>,
    /// Usable capacity after 200 outage cycles, as a fraction of new.
    pub capacity_after_200_cycles: f64,
}

/// Compares a rack UPS, a distributed battery and the NVDIMM approach
/// for a server drawing `load`.
#[must_use]
pub fn compare_backup_technologies(load: Watts) -> Vec<BackupComparison> {
    let mk_ups = |ups: &Ups| BackupComparison {
        technology: ups.name.clone(),
        protection: "whole system stays up while charge lasts",
        coverage: Some(ups.runtime(load)),
        capacity_after_200_cycles: ups.aging.capacity_fraction(200),
    };
    vec![
        mk_ups(&Ups::lead_acid_rack()),
        mk_ups(&Ups::distributed_server_battery()),
        BackupComparison {
            technology: "NVDIMM ultracap + flash (WSP)".to_owned(),
            protection: "memory contents survive indefinitely in flash",
            coverage: None,
            capacity_after_200_cycles: AgingModel::UltracapWorst.capacity_fraction(200),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_ups_carries_a_rack_for_tens_of_minutes() {
        let ups = Ups::lead_acid_rack();
        // A 10 kW rack on 5 kWh: 30 minutes.
        let t = ups.runtime(Watts::new(10_000.0));
        assert!((t.as_secs_f64() / 60.0 - 30.0).abs() < 0.5, "{t}");
    }

    #[test]
    fn distributed_battery_bridges_one_server_briefly() {
        let ups = Ups::distributed_server_battery();
        let t = ups.runtime(Watts::new(350.0));
        let minutes = t.as_secs_f64() / 60.0;
        assert!((5.0..15.0).contains(&minutes), "{minutes} min");
    }

    #[test]
    fn batteries_fade_fast_ultracaps_do_not() {
        let mut ups = Ups::lead_acid_rack();
        let fresh = ups.usable_energy();
        for _ in 0..200 {
            ups.discharge_cycle();
        }
        let worn = ups.usable_energy();
        assert!(
            worn.get() < fresh.get() * 0.6,
            "200 cycles cost batteries >40%: {} -> {}",
            fresh,
            worn
        );
        let rows = compare_backup_technologies(Watts::new(350.0));
        let nvdimm = rows.last().unwrap();
        assert!(nvdimm.capacity_after_200_cycles > 0.99);
        assert!(rows[0].capacity_after_200_cycles < 0.6);
    }

    #[test]
    fn comparison_covers_all_three_technologies() {
        let rows = compare_backup_technologies(Watts::new(200.0));
        assert_eq!(rows.len(), 3);
        assert!(rows[0].coverage.is_some());
        assert!(rows[2].coverage.is_none(), "flash protection is open-ended");
    }
}
