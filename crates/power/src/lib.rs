//! Power-delivery models for the whole-system-persistence reproduction:
//! ATX power supplies and their residual energy windows, the power-fail
//! monitor, ultracapacitors (with cycle aging), and supercapacitor
//! provisioning.
//!
//! The feasibility of WSP's *flush-on-fail* rests on one inequality: the
//! time to save CPU contexts and flush caches must fit inside the
//! **residual energy window** — the time for which a PSU keeps its DC
//! output rails in regulation after signalling `PWR_OK` low. The paper
//! measures that window with an oscilloscope across four PSUs and two
//! load levels (Figures 6 and 7); this crate reproduces the measurement
//! with an effective-capacitance discharge model calibrated to those
//! observations.
//!
//! # Examples
//!
//! ```
//! use wsp_power::Psu;
//! use wsp_units::Watts;
//!
//! let psu = Psu::atx_1050w();
//! let window = psu.residual_window(Watts::new(350.0));
//! assert!(window.as_millis() >= 10); // tens of milliseconds
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod monitor;
mod provision;
mod psu;
mod scope;
mod ultracap;
mod ups;

pub use domain::{PowerDomain, ShardScope};
pub use monitor::{MonitorError, PowerFailEvent, PowerMonitor, PwrOkSample, PwrOkVerdict};
pub use provision::{ProvisionPlan, SupercapProvisioner};
pub use psu::{Psu, Rail};
pub use scope::{Oscilloscope, ScopeSample, ScopeTrace};
pub use ultracap::{AgingModel, EnergyCell, Ultracapacitor};
pub use ups::{compare_backup_technologies, BackupComparison, Ups};
