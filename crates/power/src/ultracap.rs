//! Ultracapacitor energy cells: the backup store that lets NVDIMMs finish
//! their DRAM→flash save after system power is gone, plus the cycle-aging
//! model of Figure 1.

use wsp_units::{Farads, Joules, Nanos, Volts, Watts};

/// Any rechargeable energy cell whose usable capacity degrades with
/// charge/discharge cycling — the axis of the paper's Figure 1 comparison
/// between ultracapacitors and lead-acid/Li-ion batteries.
pub trait EnergyCell {
    /// Usable capacity after `cycles` full charge/discharge cycles, as a
    /// fraction of the brand-new capacity (1.0 = like new).
    fn capacity_fraction(&self, cycles: u64) -> f64;

    /// Human-readable technology name.
    fn technology(&self) -> &str;
}

/// Capacitance-fade model for an ultracapacitor, and a battery foil.
///
/// Figure 1 (AgigA Tech data): after 100,000 cycles at elevated
/// temperature and voltage, ultracaps retain ~96 % (best case) to ~90 %
/// (worst case / data-sheet value) of their capacitance, while
/// rechargeable batteries degrade severely within a few hundred cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AgingModel {
    /// Ultracapacitor, best observed case (~4 % fade at 100 k cycles).
    UltracapBest,
    /// Ultracapacitor, worst case / data-sheet value (~10 % fade at
    /// 100 k cycles).
    UltracapWorst,
    /// Rechargeable battery: usable capacity collapses after a few
    /// hundred cycles (the paper's motivation for avoiding batteries).
    Battery,
}

impl EnergyCell for AgingModel {
    fn capacity_fraction(&self, cycles: u64) -> f64 {
        match self {
            // Square-root fade: fast initial conditioning loss, then
            // flattening — the shape of the Figure 1 curves.
            AgingModel::UltracapBest => 1.0 - 0.04 * (cycles as f64 / 100_000.0).sqrt().min(1.5),
            AgingModel::UltracapWorst => 1.0 - 0.10 * (cycles as f64 / 100_000.0).sqrt().min(1.5),
            // Linear collapse to a 10% floor within ~400 cycles.
            AgingModel::Battery => (1.0 - cycles as f64 / 450.0).max(0.10),
        }
    }

    fn technology(&self) -> &str {
        match self {
            AgingModel::UltracapBest => "ultracapacitor (best case)",
            AgingModel::UltracapWorst => "ultracapacitor (worst case)",
            AgingModel::Battery => "rechargeable battery",
        }
    }
}

/// An ultracapacitor bank: capacitance, charge state, cycling history and
/// a minimum usable voltage (the NVDIMM's regulator needs ~6 V input for
/// its 3.3 V internals — paper footnote 1).
///
/// # Examples
///
/// ```
/// use wsp_power::Ultracapacitor;
/// use wsp_units::{Farads, Nanos, Volts, Watts};
///
/// let mut cap = Ultracapacitor::new(Farads::new(50.0), Volts::new(12.0), Volts::new(6.0));
/// let supply = cap.supply_time(Watts::new(10.0));
/// assert!(supply.as_secs_f64() > 20.0); // tens of seconds for a save
/// cap.discharge(Watts::new(10.0), Nanos::from_secs(10));
/// assert!(cap.voltage() < Volts::new(12.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ultracapacitor {
    nominal_capacitance: Farads,
    charge_voltage: Volts,
    min_voltage: Volts,
    voltage: Volts,
    cycles: u64,
    aging: AgingModel,
}

impl Ultracapacitor {
    /// Creates a fully charged ultracapacitor bank with worst-case aging.
    ///
    /// # Panics
    ///
    /// Panics if `min_voltage >= charge_voltage` or capacitance is not
    /// positive.
    #[must_use]
    pub fn new(capacitance: Farads, charge_voltage: Volts, min_voltage: Volts) -> Self {
        assert!(capacitance.get() > 0.0, "capacitance must be positive");
        assert!(
            min_voltage < charge_voltage,
            "minimum usable voltage must be below the charge voltage"
        );
        Ultracapacitor {
            nominal_capacitance: capacitance,
            charge_voltage,
            min_voltage,
            voltage: charge_voltage,
            cycles: 0,
            aging: AgingModel::UltracapWorst,
        }
    }

    /// Replaces the aging model (default: worst case).
    #[must_use]
    pub fn with_aging(mut self, aging: AgingModel) -> Self {
        self.aging = aging;
        self
    }

    /// Pre-ages the cell to `cycles` completed charge/discharge cycles
    /// (a field-returned DIMM, Figure 1's x-axis) without simulating
    /// each recharge.
    #[must_use]
    pub fn with_cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Whether the cell's present usable energy covers drawing `load`
    /// for `duration` — the Figure 2 save-feasibility inequality with
    /// Figure 1 aging applied.
    #[must_use]
    pub fn covers(&self, load: Watts, duration: Nanos) -> bool {
        self.usable_energy() >= load * duration
    }

    /// Present capacitance, accounting for cycle aging.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.nominal_capacitance * self.aging.capacity_fraction(self.cycles)
    }

    /// Present terminal voltage.
    #[must_use]
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Completed charge/discharge cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Usable energy from the present voltage down to the minimum usable
    /// voltage.
    #[must_use]
    pub fn usable_energy(&self) -> Joules {
        self.capacitance().energy_between(self.voltage, self.min_voltage)
    }

    /// How long the cell can sustain a constant `load` before dropping
    /// below the minimum usable voltage.
    #[must_use]
    pub fn supply_time(&self, load: Watts) -> Nanos {
        self.usable_energy() / load
    }

    /// Drains the cell at constant `load` for `duration`, updating the
    /// terminal voltage. Returns `true` if the cell stayed above its
    /// minimum usable voltage for the whole interval.
    pub fn discharge(&mut self, load: Watts, duration: Nanos) -> bool {
        let drained = load * duration;
        self.voltage = self.capacitance().voltage_after(self.voltage, drained);
        self.voltage >= self.min_voltage
    }

    /// Recharges to full and records one charge/discharge cycle.
    pub fn recharge(&mut self) {
        self.voltage = self.charge_voltage;
        self.cycles += 1;
    }

    /// Harvesting-style partial recharge: deposits `energy` into the
    /// cell (`V' = sqrt(V² + 2E/C)` at the aged capacitance), capped at
    /// the full charge voltage. Returns `true` when the cell reached
    /// full charge — which, like [`Ultracapacitor::recharge`], records
    /// one Figure 1 aging cycle. A top-up that stops short records no
    /// cycle: dozens of micro-outage replenish intervals between storms
    /// must not each burn a full charge/discharge cycle.
    pub fn recharge_partial(&mut self, energy: Joules) -> bool {
        let c = self.capacitance();
        let v_sq =
            self.voltage.get() * self.voltage.get() + 2.0 * energy.get().max(0.0) / c.get();
        let v = Volts::new(v_sq.sqrt());
        if v >= self.charge_voltage {
            self.recharge();
            true
        } else {
            self.voltage = v;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Ultracapacitor {
        Ultracapacitor::new(Farads::new(50.0), Volts::new(12.0), Volts::new(6.0))
    }

    #[test]
    fn partial_recharge_tops_up_without_burning_a_cycle() {
        let mut c = cell();
        assert!(c.discharge(Watts::new(20.0), Nanos::from_secs(30)));
        let sagged = c.voltage();
        let drained = c.usable_energy();
        // A small deposit raises the voltage but records no cycle.
        assert!(!c.recharge_partial(Joules::new(100.0)));
        assert!(c.voltage() > sagged);
        assert!(c.voltage() < Volts::new(12.0));
        assert!(c.usable_energy() > drained);
        assert_eq!(c.cycles(), 0);
        // Overfilling caps at the charge voltage and counts the cycle.
        assert!(c.recharge_partial(Joules::new(1e9)));
        assert_eq!(c.voltage(), Volts::new(12.0));
        assert_eq!(c.cycles(), 1);
    }

    #[test]
    fn fig1_ultracap_retains_90_percent_at_100k_cycles() {
        let worst = AgingModel::UltracapWorst.capacity_fraction(100_000);
        let best = AgingModel::UltracapBest.capacity_fraction(100_000);
        assert!((worst - 0.90).abs() < 0.005, "worst case: {worst}");
        assert!((best - 0.96).abs() < 0.005, "best case: {best}");
    }

    #[test]
    fn fig1_battery_collapses_quickly() {
        let b = AgingModel::Battery;
        assert!(b.capacity_fraction(300) < 0.5);
        assert_eq!(b.capacity_fraction(10_000), 0.10);
        // Ultracaps at the same cycle count are nearly pristine.
        assert!(AgingModel::UltracapWorst.capacity_fraction(300) > 0.99);
    }

    #[test]
    fn aging_is_monotone_nonincreasing() {
        for model in [
            AgingModel::UltracapBest,
            AgingModel::UltracapWorst,
            AgingModel::Battery,
        ] {
            let mut last = model.capacity_fraction(0);
            assert!((last - 1.0).abs() < 1e-9, "{}", model.technology());
            for c in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
                let f = model.capacity_fraction(c);
                assert!(f <= last + 1e-12);
                assert!(f > 0.0);
                last = f;
            }
        }
    }

    #[test]
    fn discharge_tracks_energy() {
        let mut c = cell();
        let e0 = c.usable_energy();
        assert!(c.discharge(Watts::new(10.0), Nanos::from_secs(5)));
        let e1 = c.usable_energy();
        assert!((e0.get() - e1.get() - 50.0).abs() < 1e-6, "50 J drained");
    }

    #[test]
    fn discharge_fails_when_exhausted() {
        let mut c = cell();
        // 50 F * (144-36)/2 = 2700 J usable; drain 3000 J.
        assert!(!c.discharge(Watts::new(100.0), Nanos::from_secs(30)));
        assert!(c.voltage() < Volts::new(6.0));
    }

    #[test]
    fn supply_time_matches_energy_budget() {
        let c = cell();
        let t = c.supply_time(Watts::new(27.0));
        // 2700 J / 27 W = 100 s.
        assert!((t.as_secs_f64() - 100.0).abs() < 0.01);
    }

    #[test]
    fn recharge_counts_cycles_and_ages() {
        let mut c = cell();
        let fresh = c.capacitance();
        for _ in 0..100_000 {
            c.recharge();
        }
        assert_eq!(c.cycles(), 100_000);
        assert!(c.capacitance() < fresh);
        assert!((c.capacitance().get() / fresh.get() - 0.90).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "minimum usable voltage")]
    fn inverted_voltage_range_rejected() {
        let _ = Ultracapacitor::new(Farads::new(1.0), Volts::new(5.0), Volts::new(6.0));
    }

    #[test]
    fn with_cycles_matches_recharge_aging() {
        let mut recharged = cell();
        for _ in 0..50_000 {
            recharged.recharge();
        }
        let pre_aged = cell().with_cycles(50_000);
        assert_eq!(pre_aged.cycles(), 50_000);
        assert_eq!(pre_aged.capacitance(), recharged.capacitance());
    }

    #[test]
    fn aging_can_break_a_marginal_save_budget() {
        // A cap provisioned with ~5% margin over the save energy: fresh
        // it covers the save, aged to 100k cycles (worst case, ~10%
        // fade) it no longer does.
        let load = Watts::new(8.0);
        let duration = Nanos::from_secs(7);
        // Usable energy = C/2 · (12² − 6²) = 54·C joules; save needs
        // 56 J, so C = 1.09 F gives ≈5% fresh margin.
        let fresh = Ultracapacitor::new(Farads::new(1.09), Volts::new(12.0), Volts::new(6.0));
        assert!(fresh.covers(load, duration));
        let aged = fresh.clone().with_cycles(100_000);
        assert!(!aged.covers(load, duration));
    }
}
