//! A minimal JSON value type with an emitter and parser, sized for the
//! machine-readable benchmark baselines the workspace records
//! (`BENCH_PR2.json` and successors).
//!
//! Like the rest of this crate it is deliberately dependency-free: the
//! subset implemented (objects, arrays, strings, finite numbers, bools,
//! null; `\uXXXX` escapes on input, basic escapes on output) is exactly
//! what the baseline files need, not a general-purpose JSON library.
//!
//! # Examples
//!
//! ```
//! use wsp_microbench::json::Json;
//!
//! let doc = Json::object([
//!     ("ops_per_sec", Json::from(12500.0)),
//!     ("config", Json::from("fof")),
//! ]);
//! let text = doc.to_string_pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("ops_per_sec").and_then(Json::as_f64), Some(12500.0));
//! ```

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks a key up in an object node.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this node is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object entries, if this node is an object.
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => emit_number(out, *v),
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.emit(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    emit_string(out, k);
                    out.push_str(": ");
                    v.emit(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_number(out: &mut String, v: f64) {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {}", *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always at a boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::object([
            ("name", Json::from("hashtable")),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("rates", Json::array([Json::from(1.5), Json::from(2e6)])),
            (
                "nested",
                Json::object([("ops", Json::from(123456u64))]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::from(42u64).to_string_pretty().trim(), "42");
        assert_eq!(Json::from(2.5).to_string_pretty().trim(), "2.5");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::from("a\"b\\c\nd\te");
        let text = s.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), s);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::from("Aé")
        );
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x"}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr, &Json::array([1u64.into(), 2u64.into(), 3u64.into()]));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn preserves_key_order_on_emit() {
        let doc = Json::object([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        let text = doc.to_string_pretty();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }
}
