//! # wsp-microbench — an offline micro-benchmark harness
//!
//! A drop-in replacement for the slice of the `criterion` API the
//! workspace's benches use, with zero external dependencies so the
//! required build path never touches a registry. Timing is wall-clock
//! (`std::time::Instant`) over a fixed number of warm-up and measured
//! iterations; results print as a fixed-width table of min / mean / max
//! per iteration.
//!
//! This harness intentionally does no statistics beyond min/mean/max:
//! the workspace's quantitative claims come from the *simulated* clocks
//! in `wsp-units`, not from host timing. These benches exist to confirm
//! relative shapes on real hardware.
//!
//! # Examples
//!
//! ```
//! use wsp_microbench::Criterion;
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("sums");
//! group.sample_size(8);
//! group.bench_function("1..1000", |b| b.iter(|| (1..1000u64).sum::<u64>()));
//! group.finish();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How `iter_batched` amortises setup cost. The harness runs one setup
/// per iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values; criterion would batch many per allocation.
    SmallInput,
    /// Large setup values; criterion would batch few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for reporting group throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, printed as the row label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// (total, min, max) per-iteration durations of the measured runs.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    fn record(&mut self, times: &[Duration]) {
        let total: Duration = times.iter().sum();
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        self.result = Some((total, min, max));
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: a single untimed run primes caches and lazy statics.
        std_black_box(routine());
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std_black_box(routine());
                start.elapsed()
            })
            .collect();
        self.record(&times);
    }

    /// Times `routine` over fresh values from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std_black_box(routine(setup()));
        let times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                std_black_box(routine(input));
                start.elapsed()
            })
            .collect();
        self.record(&times);
    }
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut bencher);
        let Some((total, min, max)) = bencher.result else {
            println!("{}/{label}: no measurement recorded", self.name);
            return;
        };
        let mean = total / self.samples as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{:<44} [{:>10} {:>10} {:>10}]{rate}",
            format!("{}/{label}", self.name),
            human(min),
            human(mean),
            human(max),
        );
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group with default settings (10 measured
    /// iterations).
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("== {name} ==  (min / mean / max per iteration)");
        BenchmarkGroup {
            name,
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::LargeInput);
        });
        group.throughput(Throughput::Elements(100));
        group.bench_function("throughput", |b| b.iter(|| std::hint::black_box(42)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn human_durations_scale() {
        assert!(human(Duration::from_nanos(5)).ends_with("ns"));
        assert!(human(Duration::from_micros(50)).ends_with("µs"));
        assert!(human(Duration::from_millis(50)).ends_with("ms"));
        assert!(human(Duration::from_secs(50)).ends_with(" s"));
    }
}
