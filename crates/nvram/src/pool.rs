//! A pool of NVDIMMs forming the machine's main memory: linear address
//! concatenation, with saves and restores running on all modules in
//! parallel (they share no resources — paper §2).

use wsp_obs as obs;
use wsp_units::{ByteSize, Nanos};

use crate::dimm::DimmState;
use crate::{NvDimm, NvramError, SaveOutcome};

/// Result of a pool save that retried transient command failures.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSaveReport {
    /// Per-module outcomes, in address order.
    pub outcomes: Vec<SaveOutcome>,
    /// Total retries performed across all modules.
    pub retries: u32,
    /// Simulated time spent backing off between attempts.
    pub backoff: Nanos,
}

/// Main memory built from NVDIMMs.
///
/// # Examples
///
/// ```
/// use wsp_nvram::{NvDimm, NvramPool};
/// use wsp_units::ByteSize;
///
/// let pool = NvramPool::uniform(4, ByteSize::gib(1));
/// assert_eq!(pool.total_capacity(), ByteSize::gib(4));
/// // Saving 4 modules takes no longer than saving one.
/// let one = NvDimm::agiga(ByteSize::gib(1)).flash().full_save_time();
/// assert_eq!(pool.parallel_save_time(), one);
/// ```
#[derive(Debug, Clone)]
pub struct NvramPool {
    dimms: Vec<NvDimm>,
}

impl NvramPool {
    /// Builds a pool from modules.
    ///
    /// # Panics
    ///
    /// Panics if `dimms` is empty.
    #[must_use]
    pub fn new(dimms: Vec<NvDimm>) -> Self {
        assert!(!dimms.is_empty(), "a pool needs at least one module");
        NvramPool { dimms }
    }

    /// Builds a pool of `n` identical AgigaRAM-style modules.
    #[must_use]
    pub fn uniform(n: usize, capacity_each: ByteSize) -> Self {
        Self::new((0..n).map(|_| NvDimm::agiga(capacity_each)).collect())
    }

    /// The modules in address order.
    #[must_use]
    pub fn dimms(&self) -> &[NvDimm] {
        &self.dimms
    }

    /// Mutable module access — fault-injection harnesses use this to
    /// sabotage individual modules (e.g. drain an ultracapacitor so its
    /// save browns out mid-copy).
    pub fn dimms_mut(&mut self) -> &mut [NvDimm] {
        &mut self.dimms
    }

    /// Total pool capacity.
    #[must_use]
    pub fn total_capacity(&self) -> ByteSize {
        self.dimms.iter().map(NvDimm::capacity).sum()
    }

    fn locate(&self, addr: u64) -> Result<(usize, u64), NvramError> {
        let mut base = 0u64;
        for (i, d) in self.dimms.iter().enumerate() {
            let cap = d.capacity().as_u64();
            if addr < base + cap {
                return Ok((i, addr - base));
            }
            base += cap;
        }
        Err(NvramError::OutOfRange {
            addr,
            len: 0,
            capacity: self.total_capacity().as_u64(),
        })
    }

    /// Writes `data` at pool address `addr`, spanning modules as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool or a touched module is not
    /// active.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let mut pos = 0usize;
        while pos < data.len() {
            let (idx, offset) = self.locate(addr + pos as u64).unwrap();
            let room = (self.dimms[idx].capacity().as_u64() - offset) as usize;
            let chunk = room.min(data.len() - pos);
            self.dimms[idx].write(offset, &data[pos..pos + chunk]);
            pos += chunk;
        }
    }

    /// Reads into `buf` from pool address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool or a touched module is not
    /// active.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        let mut pos = 0usize;
        while pos < buf.len() {
            let (idx, offset) = self.locate(addr + pos as u64).unwrap();
            let room = (self.dimms[idx].capacity().as_u64() - offset) as usize;
            let chunk = room.min(buf.len() - pos);
            self.dimms[idx].read(offset, &mut buf[pos..pos + chunk]);
            pos += chunk;
        }
    }

    /// Enters self-refresh and saves every module. Modules save in
    /// parallel on their own ultracaps, so the pool save time is the
    /// slowest module's, not the sum.
    ///
    /// Returns per-module outcomes; the save as a whole succeeded only if
    /// [`NvramPool::all_saved`] is true afterwards.
    ///
    /// # Errors
    ///
    /// Propagates the first module handshake error.
    pub fn save_all(&mut self) -> Result<Vec<SaveOutcome>, NvramError> {
        Ok(self.save_all_with_retry(1)?.outcomes)
    }

    /// Base backoff between save-command attempts; doubles per retry
    /// (the monitor re-issues the I2C command after a quiet interval).
    pub const RETRY_BACKOFF_BASE: Nanos = Nanos::from_micros(100);

    /// Enters self-refresh and saves every module, retrying transient
    /// save-command failures up to `max_attempts` times per module with
    /// exponential backoff. Modules save in parallel on their own
    /// ultracaps, so the pool save time is the slowest module's plus the
    /// accumulated backoff.
    ///
    /// # Errors
    ///
    /// Returns [`NvramError::BadState`] if any module is powered off
    /// (instead of panicking inside the handshake),
    /// [`NvramError::SaveCommandFailed`] when a module's command keeps
    /// failing after `max_attempts` attempts, and propagates any other
    /// module error unchanged.
    pub fn save_all_with_retry(&mut self, max_attempts: u32) -> Result<PoolSaveReport, NvramError> {
        self.save_all_within(max_attempts, Nanos::MAX)
    }

    /// [`NvramPool::save_all_with_retry`] with a bounded backoff budget:
    /// when the *next* retry's exponential backoff would push the
    /// accumulated total past `window`, the pool refuses with
    /// [`NvramError::RetryWindowExhausted`] instead of spinning the
    /// simulated clock past the residual energy it does not have (the
    /// failure mode of every retry landing inside the same glitch
    /// storm).
    ///
    /// # Errors
    ///
    /// Everything [`NvramPool::save_all_with_retry`] returns, plus
    /// [`NvramError::RetryWindowExhausted`] for the budget refusal.
    pub fn save_all_within(
        &mut self,
        max_attempts: u32,
        window: Nanos,
    ) -> Result<PoolSaveReport, NvramError> {
        self.save_range_within(0..self.dimms.len(), max_attempts, window)
    }

    /// Region-scoped arm for a shared power domain: saves only the
    /// modules in `range` (a shard's region of the pool), leaving the
    /// rest active and writable, with the same retry/backoff budget as
    /// [`NvramPool::save_all_within`].
    ///
    /// # Errors
    ///
    /// Same contract as [`NvramPool::save_all_within`], scoped to the
    /// modules in `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the pool's module count.
    pub fn save_range_within(
        &mut self,
        range: std::ops::Range<usize>,
        max_attempts: u32,
        window: Nanos,
    ) -> Result<PoolSaveReport, NvramError> {
        let max_attempts = max_attempts.max(1);
        for d in &self.dimms[range.clone()] {
            if d.state() == DimmState::Off {
                return Err(NvramError::BadState {
                    state: "Off",
                    operation: "save",
                });
            }
        }
        self.dimms[range.clone()]
            .iter_mut()
            .for_each(NvDimm::enter_self_refresh);
        let mut outcomes = Vec::with_capacity(range.len());
        let mut retries = 0u32;
        let mut backoff = Nanos::ZERO;
        for (offset, d) in self.dimms[range.clone()].iter_mut().enumerate() {
            let module = range.start + offset;
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                match d.save() {
                    Ok(o) => {
                        outcomes.push(o);
                        obs::count(obs::Ctr::NvdimmModulesArmed);
                        break;
                    }
                    Err(NvramError::SaveCommandFailed { .. }) if attempt < max_attempts => {
                        let step = Self::RETRY_BACKOFF_BASE * (1u64 << (attempt - 1).min(6));
                        if backoff.saturating_add(step) > window {
                            obs::emit(
                                "nvram",
                                "save_window_exhausted",
                                backoff,
                                module as i64,
                                i64::from(attempt),
                            );
                            obs::count(obs::Ctr::NvdimmSaveFailures);
                            return Err(NvramError::RetryWindowExhausted {
                                attempts: attempt,
                                needed: backoff.saturating_add(step),
                                budget: window,
                            });
                        }
                        retries += 1;
                        backoff += step;
                        obs::emit(
                            "nvram",
                            "save_retry",
                            backoff,
                            module as i64,
                            i64::from(attempt),
                        );
                        obs::count(obs::Ctr::NvdimmSaveRetries);
                    }
                    Err(NvramError::SaveCommandFailed { .. }) => {
                        obs::emit(
                            "nvram",
                            "save_command_failed",
                            backoff,
                            module as i64,
                            i64::from(attempt),
                        );
                        obs::count(obs::Ctr::NvdimmSaveFailures);
                        return Err(NvramError::SaveCommandFailed { attempts: attempt });
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(PoolSaveReport {
            outcomes,
            retries,
            backoff,
        })
    }

    /// True if every module holds a valid flash image.
    #[must_use]
    pub fn all_saved(&self) -> bool {
        self.dimms.iter().all(|d| d.flash().has_valid_image())
    }

    /// Wall-clock time of a parallel pool save (slowest module).
    #[must_use]
    pub fn parallel_save_time(&self) -> Nanos {
        self.dimms
            .iter()
            .map(|d| d.flash().full_save_time())
            .fold(Nanos::ZERO, Nanos::max)
    }

    /// Wall-clock time of a parallel pool restore (slowest module).
    #[must_use]
    pub fn parallel_restore_time(&self) -> Nanos {
        self.dimms
            .iter()
            .map(|d| d.flash().full_restore_time())
            .fold(Nanos::ZERO, Nanos::max)
    }

    /// Drops system power on every module.
    pub fn power_loss(&mut self) {
        self.dimms.iter_mut().for_each(NvDimm::power_loss);
    }

    /// Restores system power to every module.
    pub fn power_on(&mut self) {
        self.dimms.iter_mut().for_each(NvDimm::power_on);
    }

    /// Restores every module from flash (in parallel; returns the slowest
    /// module's restore time).
    ///
    /// # Errors
    ///
    /// Fails with the first module that lacks a valid image or whose
    /// image fails checksum verification, and with
    /// [`NvramError::GenerationMismatch`] when modules hold images from
    /// different save generations (one module kept a stale image from an
    /// earlier save; mixing them would corrupt memory silently) — the
    /// caller must then recover from a lower ladder rung instead.
    pub fn restore_all(&mut self) -> Result<Nanos, NvramError> {
        if self.dimms.iter().all(|d| d.flash().has_valid_image()) {
            let gens = self.dimms.iter().map(|d| d.flash().generation());
            let newest = gens.clone().max().unwrap_or(0);
            let stale = gens.min().unwrap_or(0);
            if stale != newest {
                return Err(NvramError::GenerationMismatch { newest, stale });
            }
        }
        let mut worst = Nanos::ZERO;
        for d in &mut self.dimms {
            worst = worst.max(d.restore()?);
        }
        Ok(worst)
    }

    /// Clears all flash images after a successful resume.
    pub fn invalidate_images(&mut self) {
        self.dimms.iter_mut().for_each(NvDimm::invalidate_image);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NvramPool {
        NvramPool::uniform(2, ByteSize::mib(1))
    }

    #[test]
    fn addresses_concatenate_across_modules() {
        let mut p = pool();
        let boundary = ByteSize::mib(1).as_u64();
        p.write(boundary - 3, b"spanning");
        let mut buf = [0u8; 8];
        p.read(boundary - 3, &mut buf);
        assert_eq!(&buf, b"spanning");
        // The two halves live on different modules.
        let mut first = [0u8; 3];
        p.dimms()[0].read(boundary - 3, &mut first);
        assert_eq!(&first, b"spa");
        let mut second = [0u8; 5];
        p.dimms()[1].read(0, &mut second);
        assert_eq!(&second, b"nning");
    }

    #[test]
    fn save_power_cycle_restore_round_trip() {
        let mut p = pool();
        p.write(123, b"abc");
        p.write(ByteSize::mib(1).as_u64() + 7, b"def");
        let outcomes = p.save_all().unwrap();
        assert!(outcomes.iter().all(|o| o.completed));
        assert!(p.all_saved());
        p.power_loss();
        p.power_on();
        p.restore_all().unwrap();
        let mut buf = [0u8; 3];
        p.read(123, &mut buf);
        assert_eq!(&buf, b"abc");
        p.read(ByteSize::mib(1).as_u64() + 7, &mut buf);
        assert_eq!(&buf, b"def");
    }

    #[test]
    fn restore_fails_if_any_module_unsaved() {
        let mut p = pool();
        p.write(0, b"x");
        p.power_loss(); // no save
        p.power_on();
        assert_eq!(p.restore_all().unwrap_err(), NvramError::NoValidImage);
    }

    #[test]
    fn parallel_times_take_the_max_not_the_sum() {
        let p = NvramPool::uniform(8, ByteSize::gib(1));
        let single = NvDimm::agiga(ByteSize::gib(1));
        assert_eq!(p.parallel_save_time(), single.flash().full_save_time());
        assert_eq!(
            p.parallel_restore_time(),
            single.flash().full_restore_time()
        );
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn empty_pool_rejected() {
        let _ = NvramPool::new(Vec::new());
    }

    #[test]
    fn total_capacity_sums_modules() {
        assert_eq!(pool().total_capacity(), ByteSize::mib(2));
    }

    #[test]
    fn transient_command_faults_are_retried_with_backoff() {
        let mut p = pool();
        p.write(0, b"flaky");
        p.dimms_mut()[1].inject_save_command_faults(2);
        let report = p.save_all_with_retry(4).unwrap();
        assert!(report.outcomes.iter().all(|o| o.completed));
        assert_eq!(report.retries, 2);
        // 100 µs + 200 µs of exponential backoff.
        assert_eq!(report.backoff, Nanos::from_micros(300));
        assert!(p.all_saved());
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        let mut p = pool();
        p.dimms_mut()[0].inject_save_command_faults(10);
        assert_eq!(
            p.save_all_with_retry(3).unwrap_err(),
            NvramError::SaveCommandFailed { attempts: 3 }
        );
    }

    #[test]
    fn backoff_past_the_window_budget_refuses_instead_of_spinning() {
        let mut p = pool();
        p.dimms_mut()[1].inject_save_command_faults(3);
        // Four attempts would accumulate 100 + 200 + 400 µs of backoff;
        // a 250 µs budget covers the first retry but not the second.
        let err = p
            .save_all_within(4, Nanos::from_micros(250))
            .unwrap_err();
        assert_eq!(
            err,
            NvramError::RetryWindowExhausted {
                attempts: 2,
                needed: Nanos::from_micros(300),
                budget: Nanos::from_micros(250),
            }
        );
        // An unbounded window behaves exactly like save_all_with_retry.
        let mut p = pool();
        p.dimms_mut()[1].inject_save_command_faults(2);
        let report = p.save_all_within(4, Nanos::MAX).unwrap();
        assert_eq!(report.retries, 2);
        assert_eq!(report.backoff, Nanos::from_micros(300));
    }

    #[test]
    fn range_save_arms_only_the_region_modules() {
        let mut p = NvramPool::uniform(4, ByteSize::mib(1));
        p.write(0, b"control");
        p.write(ByteSize::mib(1).as_u64(), b"shard-one");
        let report = p.save_range_within(1..3, 4, Nanos::MAX).unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.outcomes.iter().all(|o| o.completed));
        assert!(!p.all_saved(), "modules outside the range are untouched");
        assert!(p.dimms()[1].flash().has_valid_image());
        assert!(p.dimms()[2].flash().has_valid_image());
        assert!(!p.dimms()[0].flash().has_valid_image());
        assert!(!p.dimms()[3].flash().has_valid_image());
        // The untouched modules are still active and writable.
        p.write(0, b"still-writable");
    }

    #[test]
    fn save_on_powered_off_pool_is_bad_state_not_panic() {
        let mut p = pool();
        p.power_loss();
        assert!(matches!(
            p.save_all(),
            Err(NvramError::BadState { state: "Off", .. })
        ));
    }

    #[test]
    fn mixed_generation_images_are_rejected() {
        let mut p = pool();
        p.write(0, b"gen1");
        p.save_all().unwrap(); // both modules at generation 1
        for d in p.dimms_mut() {
            d.exit_self_refresh().unwrap();
        }
        // Second save: module 0 succeeds (generation 2), module 1 keeps
        // failing and retains its valid generation-1 image.
        p.dimms_mut()[1].inject_save_command_faults(10);
        assert!(matches!(
            p.save_all_with_retry(2),
            Err(NvramError::SaveCommandFailed { .. })
        ));
        p.power_loss();
        p.power_on();
        assert_eq!(
            p.restore_all().unwrap_err(),
            NvramError::GenerationMismatch { newest: 2, stale: 1 }
        );
    }
}
