//! The NAND flash backing store inside an NVDIMM: invisible during normal
//! operation, written only by saves and read only by restores.

use std::collections::BTreeMap;

use wsp_units::{Bandwidth, ByteSize, Nanos};

use crate::error::NvramError;

/// Page granularity of the sparse DRAM/flash images.
pub(crate) const PAGE_SIZE: u64 = 4096;

pub(crate) type PageMap = BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>;

/// The flash side of an NVDIMM: an image slot plus transfer timing.
///
/// The image is a snapshot of the DRAM page map; `valid` tracks whether
/// the last save ran to completion (an interrupted save leaves a torn,
/// invalid image — the failure mode the paper's valid-marker protocol
/// exists to detect).
///
/// # Examples
///
/// ```
/// use wsp_nvram::FlashStore;
/// use wsp_units::{Bandwidth, ByteSize};
///
/// let flash = FlashStore::new(ByteSize::gib(1), Bandwidth::mib_per_sec(150.0));
/// assert!(!flash.has_valid_image());
/// let t = flash.full_save_time();
/// assert!(t.as_secs_f64() < 10.0); // paper: < 10 s for modules up to 8 GB
/// ```
#[derive(Debug, Clone)]
pub struct FlashStore {
    capacity: ByteSize,
    write_bandwidth: Bandwidth,
    read_bandwidth: Bandwidth,
    image: PageMap,
    valid: bool,
    /// Monotonic save-generation number, bumped on every image write.
    /// Lets a pool detect a module restoring a stale image from an
    /// earlier save (mixing generations silently corrupts memory).
    generation: u64,
    /// FNV-1a checksum over the pages recorded *at store time*. A torn
    /// save records the checksum of the full image it was trying to
    /// write, so verification against the torn contents fails.
    checksum: u64,
    pe_cycles: u64,
    endurance: u64,
}

/// FNV-1a over the page map (indices and contents), the controller's
/// end-of-save integrity record.
pub(crate) fn image_checksum(pages: &PageMap) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut step = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for (index, page) in pages {
        for b in index.to_le_bytes() {
            step(b);
        }
        for &b in page.iter() {
            step(b);
        }
    }
    h
}

/// Wear report for the NAND backing store. Every save is one full
/// program/erase cycle of the flash (the controller streams the whole
/// module); MLC NAND endures a few thousand such cycles — far more
/// outages than any server will see, but finite, so the model tracks
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashHealth {
    /// Program/erase cycles consumed so far.
    pub pe_cycles: u64,
    /// Rated endurance in cycles.
    pub endurance: u64,
}

impl FlashHealth {
    /// Fraction of rated life consumed (0.0 = fresh, 1.0 = worn out).
    #[must_use]
    pub fn wear(&self) -> f64 {
        self.pe_cycles as f64 / self.endurance as f64
    }

    /// Saves remaining within the rated endurance.
    #[must_use]
    pub fn saves_remaining(&self) -> u64 {
        self.endurance.saturating_sub(self.pe_cycles)
    }

    /// True once the rated endurance is exhausted; further saves risk
    /// retention failures and the module should be replaced.
    #[must_use]
    pub fn worn_out(&self) -> bool {
        self.pe_cycles >= self.endurance
    }
}

impl FlashStore {
    /// Creates an empty flash store. Reads (restores) run 2× the write
    /// bandwidth, as NAND reads do.
    #[must_use]
    pub fn new(capacity: ByteSize, write_bandwidth: Bandwidth) -> Self {
        FlashStore {
            capacity,
            write_bandwidth,
            read_bandwidth: write_bandwidth * 2.0,
            image: PageMap::new(),
            valid: false,
            generation: 0,
            checksum: 0,
            pe_cycles: 0,
            // MLC NAND: ~3000 full program/erase cycles.
            endurance: 3_000,
        }
    }

    /// Wear state of the NAND array.
    #[must_use]
    pub fn health(&self) -> FlashHealth {
        FlashHealth {
            pe_cycles: self.pe_cycles,
            endurance: self.endurance,
        }
    }

    /// Flash capacity (equal to the DRAM capacity on these parts).
    #[must_use]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// True if the store holds a complete, untorn image.
    #[must_use]
    pub fn has_valid_image(&self) -> bool {
        self.valid
    }

    /// Time for a complete DRAM→flash save. The controller streams the
    /// whole module regardless of how many pages are touched (it has no
    /// idea which DRAM bytes matter).
    #[must_use]
    pub fn full_save_time(&self) -> Nanos {
        self.write_bandwidth.transfer_time(self.capacity)
    }

    /// Time for a complete flash→DRAM restore.
    #[must_use]
    pub fn full_restore_time(&self) -> Nanos {
        self.read_bandwidth.transfer_time(self.capacity)
    }

    /// Stores a complete image (one program/erase cycle of wear),
    /// recording its checksum and bumping the save generation.
    pub(crate) fn store_image(&mut self, pages: &PageMap) {
        self.image = pages.clone();
        self.valid = true;
        self.checksum = image_checksum(pages);
        self.generation += 1;
        self.pe_cycles += 1;
    }

    /// Stores a torn prefix of an image (a save that lost power midway):
    /// only pages below `completed_bytes` land, and the image is invalid.
    /// The checksum recorded is the *intended* full image's, so even if
    /// the valid flag were later corrupted high, verification fails.
    pub(crate) fn store_torn_image(&mut self, pages: &PageMap, completed_bytes: u64) {
        self.image = pages
            .range(..completed_bytes / PAGE_SIZE)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        self.valid = false;
        self.checksum = image_checksum(pages);
        self.generation += 1;
        self.pe_cycles += 1;
    }

    /// Save generation of the stored image (0 = never saved).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Recomputes the image checksum and compares it against the value
    /// recorded at store time.
    ///
    /// # Errors
    ///
    /// [`NvramError::ChecksumMismatch`] when the contents do not hash to
    /// the recorded checksum (a torn or corrupted image).
    pub fn verify_image(&self) -> Result<(), NvramError> {
        let actual = image_checksum(&self.image);
        if actual == self.checksum {
            Ok(())
        } else {
            Err(NvramError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            })
        }
    }

    /// Test-harness sabotage: drops stored pages at and above
    /// `from_byte` but leaves the valid flag and recorded checksum
    /// untouched — the "valid marker written but data torn" corruption
    /// that only the checksum can detect.
    pub fn corrupt_tail(&mut self, from_byte: u64) {
        self.image.retain(|&idx, _| idx < from_byte / PAGE_SIZE);
    }

    /// Retrieves the image if valid.
    pub(crate) fn load_image(&self) -> Option<&PageMap> {
        self.valid.then_some(&self.image)
    }

    /// Invalidates the stored image (after a successful restore the host
    /// clears it so a stale image is never replayed twice).
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
        self.image.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Box<[u8; PAGE_SIZE as usize]> {
        Box::new([fill; PAGE_SIZE as usize])
    }

    #[test]
    fn save_time_scales_with_capacity() {
        let small = FlashStore::new(ByteSize::gib(1), Bandwidth::mib_per_sec(150.0));
        let t = small.full_save_time().as_secs_f64();
        assert!((t - 6.83).abs() < 0.1, "1 GiB at 150 MiB/s ~ 6.8 s, got {t}");
        assert!(small.full_restore_time() < small.full_save_time());
    }

    #[test]
    fn torn_image_is_invalid_and_partial() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        let mut pages = PageMap::new();
        pages.insert(0, page(1));
        pages.insert(10, page(2));
        pages.insert(100, page(3));
        flash.store_torn_image(&pages, 50 * PAGE_SIZE);
        assert!(!flash.has_valid_image());
        assert!(flash.load_image().is_none());
        assert_eq!(flash.image.len(), 2, "page 100 lost in the tear");
    }

    #[test]
    fn saves_accumulate_wear() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        assert_eq!(flash.health().pe_cycles, 0);
        assert!(!flash.health().worn_out());
        let pages = PageMap::new();
        for _ in 0..10 {
            flash.store_image(&pages);
        }
        flash.store_torn_image(&pages, 0);
        let h = flash.health();
        assert_eq!(h.pe_cycles, 11, "torn saves wear the array too");
        assert_eq!(h.saves_remaining(), 3_000 - 11);
        assert!((h.wear() - 11.0 / 3_000.0).abs() < 1e-12);
    }

    #[test]
    fn worn_out_after_rated_endurance() {
        let h = FlashHealth {
            pe_cycles: 3_000,
            endurance: 3_000,
        };
        assert!(h.worn_out());
        assert_eq!(h.saves_remaining(), 0);
    }

    #[test]
    fn checksum_verifies_on_complete_image() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        let mut pages = PageMap::new();
        pages.insert(1, page(9));
        pages.insert(7, page(4));
        flash.store_image(&pages);
        assert_eq!(flash.generation(), 1);
        assert!(flash.verify_image().is_ok());
    }

    #[test]
    fn torn_image_fails_checksum_even_if_marked_valid() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        let mut pages = PageMap::new();
        pages.insert(0, page(1));
        pages.insert(50, page(2));
        flash.store_torn_image(&pages, 10 * PAGE_SIZE);
        assert!(matches!(
            flash.verify_image(),
            Err(NvramError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_tail_keeps_valid_flag_but_breaks_checksum() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        let mut pages = PageMap::new();
        pages.insert(0, page(1));
        pages.insert(50, page(2));
        flash.store_image(&pages);
        flash.corrupt_tail(10 * PAGE_SIZE);
        assert!(flash.has_valid_image(), "sabotage leaves the marker high");
        assert!(matches!(
            flash.verify_image(),
            Err(NvramError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn generations_are_monotonic() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        let pages = PageMap::new();
        assert_eq!(flash.generation(), 0);
        flash.store_image(&pages);
        flash.store_torn_image(&pages, 0);
        flash.store_image(&pages);
        assert_eq!(flash.generation(), 3, "torn saves consume a generation");
    }

    #[test]
    fn complete_image_round_trips() {
        let mut flash = FlashStore::new(ByteSize::mib(1), Bandwidth::mib_per_sec(100.0));
        let mut pages = PageMap::new();
        pages.insert(3, page(7));
        flash.store_image(&pages);
        assert!(flash.has_valid_image());
        assert_eq!(flash.load_image().unwrap()[&3][0], 7);
        flash.invalidate();
        assert!(flash.load_image().is_none());
    }
}
