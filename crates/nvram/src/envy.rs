//! The eNVy architecture (Wu & Zwaenepoel, ASPLOS '94 — paper §7): a
//! battery-backed SRAM *buffer* in front of flash, presenting a
//! byte-addressable non-volatile store on the memory bus. The paper's
//! point about it: with a random-access workload the small buffer
//! thrashes and the system bottlenecks on paging to flash, whereas
//! NVDIMMs hold *everything* in DRAM and touch flash only at
//! failure/recovery. This model quantifies that comparison.

use wsp_units::{Bandwidth, ByteSize, Nanos};

/// An eNVy-style buffered non-volatile store.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvyStore {
    /// SRAM buffer size.
    pub buffer: ByteSize,
    /// Total (flash) capacity.
    pub capacity: ByteSize,
    /// SRAM access latency.
    pub sram_latency: Nanos,
    /// Flash page size for paging.
    pub page_size: ByteSize,
    /// Flash read bandwidth (page-in).
    pub flash_read: Bandwidth,
    /// Flash program bandwidth (page-out of dirty victims).
    pub flash_write: Bandwidth,
}

impl EnvyStore {
    /// The eNVy shape scaled to early-90s-relative proportions: a 1/32
    /// buffer-to-capacity ratio.
    #[must_use]
    pub fn classic(capacity: ByteSize) -> Self {
        EnvyStore {
            buffer: capacity / 32,
            capacity,
            sram_latency: Nanos::new(70),
            page_size: ByteSize::new(4096),
            flash_read: Bandwidth::mib_per_sec(80.0),
            flash_write: Bandwidth::mib_per_sec(30.0),
        }
    }

    /// Buffer hit probability for a uniformly random working set of
    /// `working_set` bytes (1.0 when it fits the buffer).
    #[must_use]
    pub fn hit_rate(&self, working_set: ByteSize) -> f64 {
        if working_set <= self.buffer {
            1.0
        } else {
            self.buffer.as_u64() as f64 / working_set.as_u64() as f64
        }
    }

    /// Expected access latency at a given working set and write
    /// fraction: hits cost SRAM; misses page in from flash (and page out
    /// a dirty victim `write_fraction` of the time).
    #[must_use]
    pub fn expected_latency(&self, working_set: ByteSize, write_fraction: f64) -> Nanos {
        let h = self.hit_rate(working_set);
        let page_in = self.flash_read.transfer_time(self.page_size);
        let page_out = self.flash_write.transfer_time(self.page_size);
        let miss = page_in + page_out * write_fraction;
        self.sram_latency + miss * (1.0 - h)
    }

    /// Slowdown relative to an NVDIMM store (plain DRAM latency) for the
    /// same workload.
    #[must_use]
    pub fn slowdown_vs_nvdimm(
        &self,
        working_set: ByteSize,
        write_fraction: f64,
        dram_latency: Nanos,
    ) -> f64 {
        self.expected_latency(working_set, write_fraction).as_nanos() as f64
            / dram_latency.as_nanos().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> EnvyStore {
        EnvyStore::classic(ByteSize::gib(8)) // 256 MiB buffer
    }

    #[test]
    fn buffer_resident_working_sets_run_at_sram_speed() {
        let s = store();
        let t = s.expected_latency(ByteSize::mib(128), 0.3);
        assert_eq!(t, s.sram_latency);
        assert_eq!(s.hit_rate(ByteSize::mib(128)), 1.0);
    }

    #[test]
    fn random_access_over_full_capacity_thrashes() {
        let s = store();
        let t = s.expected_latency(ByteSize::gib(8), 0.3);
        // ~97% miss rate at 4 KiB paging: tens of microseconds per access.
        assert!(t.as_micros() > 20, "{t}");
        let slowdown = s.slowdown_vs_nvdimm(ByteSize::gib(8), 0.3, Nanos::new(70));
        assert!(
            slowdown > 100.0,
            "paper: eNVy bottlenecks on paging; slowdown {slowdown:.0}x"
        );
    }

    #[test]
    fn slowdown_grows_with_working_set_and_writes() {
        let s = store();
        let small = s.expected_latency(ByteSize::mib(512), 0.0);
        let large = s.expected_latency(ByteSize::gib(4), 0.0);
        let large_writey = s.expected_latency(ByteSize::gib(4), 0.8);
        assert!(small < large);
        assert!(large < large_writey, "dirty victims cost flash programs");
    }

    #[test]
    fn nvdimms_are_flat_by_construction() {
        // The comparison the paper draws: NVDIMM latency is DRAM latency
        // at every working set; eNVy degrades past its buffer.
        let s = store();
        for mib in [64u64, 256, 1024, 4096] {
            let slowdown = s.slowdown_vs_nvdimm(ByteSize::mib(mib), 0.3, Nanos::new(70));
            if ByteSize::mib(mib) <= s.buffer {
                assert!((slowdown - 1.0).abs() < 1e-9);
            } else {
                assert!(slowdown > 1.0);
            }
        }
    }
}
