//! The I2C command surface the power-monitor microcontroller uses to talk
//! to NVDIMMs (paper §4, "NVDIMMs": save/restore commands relayed from
//! the host over the serial line).

use wsp_units::Nanos;

use crate::{DimmState, NvDimm, NvramError};

/// Commands the microcontroller can issue to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I2cCommand {
    /// Put the DRAM into self-refresh (precondition for save/restore).
    ArmSelfRefresh,
    /// Begin the ultracap-powered DRAM→flash save.
    Save,
    /// Begin the flash→DRAM restore.
    Restore,
    /// Leave self-refresh and resume normal operation.
    Resume,
    /// Query module status.
    Status,
}

/// Responses from a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I2cResponse {
    /// Command accepted; `duration` is the modelled completion time.
    Ack {
        /// How long the operation takes.
        duration: Nanos,
    },
    /// Status report.
    Status {
        /// Current state.
        state: DimmState,
        /// Whether flash holds a valid image.
        valid_image: bool,
    },
    /// Command rejected.
    Nak,
}

impl NvDimm {
    /// Dispatches an I2C command against this module.
    ///
    /// # Errors
    ///
    /// Maps module errors through unchanged ([`NvramError`]); protocol-
    /// level rejections (e.g. `Save` while active) surface as the
    /// underlying state error.
    pub fn handle_command(&mut self, cmd: I2cCommand) -> Result<I2cResponse, NvramError> {
        match cmd {
            I2cCommand::ArmSelfRefresh => {
                self.enter_self_refresh();
                Ok(I2cResponse::Ack {
                    duration: Nanos::from_micros(10),
                })
            }
            I2cCommand::Save => {
                let outcome = self.save()?;
                if outcome.completed {
                    Ok(I2cResponse::Ack {
                        duration: outcome.duration,
                    })
                } else {
                    Err(NvramError::UltracapDepleted)
                }
            }
            I2cCommand::Restore => {
                let duration = self.restore()?;
                Ok(I2cResponse::Ack { duration })
            }
            I2cCommand::Resume => {
                self.exit_self_refresh()?;
                Ok(I2cResponse::Ack {
                    duration: Nanos::from_micros(10),
                })
            }
            I2cCommand::Status => Ok(I2cResponse::Status {
                state: self.state(),
                valid_image: self.flash().has_valid_image(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_units::ByteSize;

    #[test]
    fn full_command_sequence() {
        let mut d = NvDimm::agiga(ByteSize::mib(16));
        d.write(0, b"cmd");
        assert!(matches!(
            d.handle_command(I2cCommand::ArmSelfRefresh),
            Ok(I2cResponse::Ack { .. })
        ));
        assert!(matches!(
            d.handle_command(I2cCommand::Save),
            Ok(I2cResponse::Ack { .. })
        ));
        d.power_loss();
        d.power_on();
        assert!(matches!(
            d.handle_command(I2cCommand::Restore),
            Ok(I2cResponse::Ack { .. })
        ));
        let status = d.handle_command(I2cCommand::Status).unwrap();
        assert!(matches!(
            status,
            I2cResponse::Status {
                state: DimmState::Active,
                valid_image: true,
            }
        ));
    }

    #[test]
    fn save_without_arm_is_rejected() {
        let mut d = NvDimm::agiga(ByteSize::mib(16));
        assert_eq!(
            d.handle_command(I2cCommand::Save).unwrap_err(),
            NvramError::NotInSelfRefresh
        );
    }

    #[test]
    fn status_never_mutates() {
        let mut d = NvDimm::agiga(ByteSize::mib(16));
        let before = d.state();
        d.handle_command(I2cCommand::Status).unwrap();
        assert_eq!(d.state(), before);
    }
}
