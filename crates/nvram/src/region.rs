//! Per-shard region accounting over a pool's flat address space.
//!
//! A shared power domain divides one NVDIMM pool among several
//! persistent heaps: each shard owns a module-aligned slice of the pool
//! (its **region**) so the domain supervisor can arm regions
//! independently ([`crate::NvramPool::save_range_within`]) and stamp a
//! per-region save marker, while a reserved prefix of modules holds the
//! domain's own control state (CPU contexts, global markers).
//!
//! Module alignment is what makes per-region arming physical: a save
//! command addresses whole DIMMs, so a region that split a module would
//! entangle two shards' durability.

use wsp_units::ByteSize;

use crate::NvramPool;

/// One shard's module-aligned slice of the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Owning shard index.
    pub shard: usize,
    /// Module indices the region owns (half-open).
    pub modules: std::ops::Range<usize>,
    /// First pool byte address of the region.
    pub base: u64,
    /// Region capacity.
    pub bytes: ByteSize,
}

impl Region {
    /// Pool address of the region's VALID save marker.
    #[must_use]
    pub fn marker_addr(&self) -> u64 {
        self.base
    }

    /// Pool address of the region's PARTIAL save marker.
    #[must_use]
    pub fn partial_marker_addr(&self) -> u64 {
        self.base + 8
    }

    /// One past the last pool byte address of the region.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.bytes.as_u64()
    }

    /// True if the pool address falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// The pool's shard-region layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    regions: Vec<Region>,
}

impl RegionMap {
    /// Partitions `pool` into `shards` module-aligned regions after
    /// setting aside the first `reserved_modules` modules for the
    /// domain's control state. Shards get an equal module count; any
    /// remainder modules go to the last shard.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero or the pool does not hold at least
    /// one module per shard beyond the reserved prefix.
    #[must_use]
    pub fn partition(pool: &NvramPool, shards: usize, reserved_modules: usize) -> Self {
        assert!(shards > 0, "a region map needs at least one shard");
        let total = pool.dimms().len();
        assert!(
            total >= reserved_modules + shards,
            "pool has {total} modules; {reserved_modules} reserved + {shards} shards \
             need at least one module each"
        );
        let per_shard = (total - reserved_modules) / shards;
        let mut base = 0u64;
        for d in &pool.dimms()[..reserved_modules] {
            base += d.capacity().as_u64();
        }
        let mut regions = Vec::with_capacity(shards);
        let mut module = reserved_modules;
        for shard in 0..shards {
            let last = shard == shards - 1;
            let end = if last { total } else { module + per_shard };
            let bytes = pool.dimms()[module..end]
                .iter()
                .map(|d| d.capacity().as_u64())
                .sum::<u64>();
            regions.push(Region {
                shard,
                modules: module..end,
                base,
                bytes: ByteSize::new(bytes),
            });
            base += bytes;
            module = end;
        }
        RegionMap { regions }
    }

    /// Regions in shard order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region owned by `shard`.
    #[must_use]
    pub fn region(&self, shard: usize) -> &Region {
        &self.regions[shard]
    }

    /// The shard owning pool address `addr`, if any (reserved control
    /// modules belong to no shard).
    #[must_use]
    pub fn region_of(&self, addr: u64) -> Option<usize> {
        self.regions.iter().find(|r| r.contains(addr)).map(|r| r.shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_module_aligned_disjoint_and_exhaustive() {
        let pool = NvramPool::uniform(4, ByteSize::mib(64));
        let map = RegionMap::partition(&pool, 3, 1);
        assert_eq!(map.regions().len(), 3);
        let mut next_module = 1;
        let mut next_base = ByteSize::mib(64).as_u64();
        for (shard, r) in map.regions().iter().enumerate() {
            assert_eq!(r.shard, shard);
            assert_eq!(r.modules.start, next_module);
            assert_eq!(r.base, next_base);
            assert_eq!(r.bytes, ByteSize::mib(64));
            next_module = r.modules.end;
            next_base = r.end();
        }
        assert_eq!(next_module, 4, "every non-reserved module is owned");
        assert_eq!(next_base, pool.total_capacity().as_u64());
    }

    #[test]
    fn remainder_modules_fold_into_the_last_shard() {
        let pool = NvramPool::uniform(6, ByteSize::mib(64));
        let map = RegionMap::partition(&pool, 2, 1);
        assert_eq!(map.region(0).modules, 1..3);
        assert_eq!(map.region(1).modules, 3..6, "remainder goes to the tail");
    }

    #[test]
    fn region_lookup_round_trips_and_reserved_space_is_unowned() {
        let pool = NvramPool::uniform(4, ByteSize::mib(64));
        let map = RegionMap::partition(&pool, 3, 1);
        assert_eq!(map.region_of(0), None, "control modules have no shard");
        for shard in 0..3 {
            let r = map.region(shard);
            assert_eq!(map.region_of(r.marker_addr()), Some(shard));
            assert_eq!(map.region_of(r.partial_marker_addr()), Some(shard));
            assert_eq!(map.region_of(r.end() - 1), Some(shard));
        }
        assert_eq!(map.region_of(pool.total_capacity().as_u64()), None);
    }

    #[test]
    #[should_panic(expected = "need at least one module each")]
    fn partition_refuses_more_shards_than_modules() {
        let pool = NvramPool::uniform(3, ByteSize::mib(64));
        let _ = RegionMap::partition(&pool, 3, 1);
    }
}
