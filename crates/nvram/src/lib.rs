//! Battery-free NVDIMM device models: DRAM + NAND flash + ultracapacitor
//! in one module, after the AgigaRAM / ArxCis-NV parts the paper builds
//! on (§2, "Battery-free NVDIMMs").
//!
//! The contract these devices offer the host is small and sharp:
//!
//! 1. During normal operation the host reads and writes plain DRAM; the
//!    flash is invisible.
//! 2. When the host (or the power monitor, over I2C) signals **save**,
//!    the module copies DRAM→flash *on its own ultracapacitor power* —
//!    system power can disappear immediately afterwards.
//! 3. On the next power-up the host signals **restore** and the module
//!    copies flash→DRAM before the OS resumes.
//!
//! The save must therefore only be *initiated* within the PSU's residual
//! energy window; it completes off the critical path. This crate models
//! the DRAM array (sparsely, so multi-gigabyte modules are cheap to
//! simulate), the flash store with its bandwidth, the self-refresh
//! handshake the real AgigaRAM parts require, ultracap energy accounting
//! during saves, and interleaved multi-DIMM pools.
//!
//! # Examples
//!
//! ```
//! use wsp_nvram::NvDimm;
//! use wsp_units::ByteSize;
//!
//! let mut dimm = NvDimm::agiga(ByteSize::gib(1));
//! dimm.write(0x1000, b"survives the outage");
//! dimm.enter_self_refresh();
//! let outcome = dimm.save().expect("ultracap is charged");
//! assert!(outcome.completed);
//! dimm.power_loss();
//! dimm.power_on();
//! dimm.restore().expect("valid image");
//! let mut buf = [0u8; 19];
//! dimm.read(0x1000, &mut buf);
//! assert_eq!(&buf, b"survives the outage");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod command;
mod dimm;
mod envy;
mod error;
mod flash;
mod pool;
mod region;

pub use command::{I2cCommand, I2cResponse};
pub use dimm::{DimmState, NvDimm, SaveOutcome, SaveTracePoint};
pub use envy::EnvyStore;
pub use error::NvramError;
pub use flash::{FlashHealth, FlashStore};
pub use pool::{NvramPool, PoolSaveReport};
pub use region::{Region, RegionMap};
