//! Error type for NVDIMM operations.

use std::error::Error;
use std::fmt;

use wsp_units::Nanos;

/// Errors returned by NVDIMM and pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NvramError {
    /// A save or restore was requested while the DRAM was not in
    /// self-refresh (the AgigaRAM parts require the handshake).
    NotInSelfRefresh,
    /// The operation is invalid in the module's current state.
    BadState {
        /// State the module was in.
        state: &'static str,
        /// Operation that was attempted.
        operation: &'static str,
    },
    /// The ultracapacitor ran out of usable energy before the save
    /// finished; the flash image is marked invalid.
    UltracapDepleted,
    /// A restore was requested but the flash holds no valid image.
    NoValidImage,
    /// An access fell outside the module's capacity.
    OutOfRange {
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
        /// Module capacity in bytes.
        capacity: u64,
    },
    /// The flash image's recorded checksum does not match its contents:
    /// a torn save slipped past the valid marker (silent corruption the
    /// per-DIMM checksums exist to catch).
    ChecksumMismatch {
        /// Checksum recorded when the image was stored.
        expected: u64,
        /// Checksum recomputed over the stored pages.
        actual: u64,
    },
    /// Modules in a pool carry images from different save generations —
    /// at least one module restored a stale image that must not be
    /// mixed with the newer ones.
    GenerationMismatch {
        /// Newest generation seen across the pool.
        newest: u64,
        /// The stale generation that conflicted with it.
        stale: u64,
    },
    /// The module's save command failed transiently (I2C relay dropped
    /// the command) and retries were exhausted.
    SaveCommandFailed {
        /// Attempts made, including the first.
        attempts: u32,
    },
    /// The exponential backoff of a retried save command would overrun
    /// the residual-energy window it must finish inside: the pool
    /// refuses with this typed error instead of spinning the simulated
    /// clock past power it does not have.
    RetryWindowExhausted {
        /// Attempts made before the refusal, including the first.
        attempts: u32,
        /// Backoff the next retry would have accumulated in total.
        needed: Nanos,
        /// The backoff budget the retries had to fit inside.
        budget: Nanos,
    },
}

impl fmt::Display for NvramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvramError::NotInSelfRefresh => {
                write!(f, "DRAM must be in self-refresh before save/restore")
            }
            NvramError::BadState { state, operation } => {
                write!(f, "cannot {operation} while module is {state}")
            }
            NvramError::UltracapDepleted => {
                write!(f, "ultracapacitor depleted before the save completed")
            }
            NvramError::NoValidImage => write!(f, "no valid image in flash"),
            NvramError::OutOfRange {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "access [{addr:#x}, {:#x}) exceeds capacity {capacity:#x}",
                addr + len
            ),
            NvramError::ChecksumMismatch { expected, actual } => write!(
                f,
                "image checksum mismatch: recorded {expected:#018x}, computed {actual:#018x}"
            ),
            NvramError::GenerationMismatch { newest, stale } => write!(
                f,
                "pool images span save generations {stale} and {newest}"
            ),
            NvramError::SaveCommandFailed { attempts } => {
                write!(f, "save command failed after {attempts} attempts")
            }
            NvramError::RetryWindowExhausted {
                attempts,
                needed,
                budget,
            } => write!(
                f,
                "save retries exhausted the residual window after {attempts} attempts: \
                 {needed} of backoff against a {budget} budget"
            ),
        }
    }
}

impl Error for NvramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let errors = [
            NvramError::NotInSelfRefresh,
            NvramError::UltracapDepleted,
            NvramError::NoValidImage,
            NvramError::OutOfRange {
                addr: 0x100,
                len: 8,
                capacity: 0x80,
            },
            NvramError::BadState {
                state: "Saving",
                operation: "write",
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(NvramError::NoValidImage);
        assert!(e.source().is_none());
    }
}
