//! Error type for NVDIMM operations.

use std::error::Error;
use std::fmt;

/// Errors returned by NVDIMM and pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NvramError {
    /// A save or restore was requested while the DRAM was not in
    /// self-refresh (the AgigaRAM parts require the handshake).
    NotInSelfRefresh,
    /// The operation is invalid in the module's current state.
    BadState {
        /// State the module was in.
        state: &'static str,
        /// Operation that was attempted.
        operation: &'static str,
    },
    /// The ultracapacitor ran out of usable energy before the save
    /// finished; the flash image is marked invalid.
    UltracapDepleted,
    /// A restore was requested but the flash holds no valid image.
    NoValidImage,
    /// An access fell outside the module's capacity.
    OutOfRange {
        /// First byte of the offending access.
        addr: u64,
        /// Length of the offending access.
        len: u64,
        /// Module capacity in bytes.
        capacity: u64,
    },
}

impl fmt::Display for NvramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvramError::NotInSelfRefresh => {
                write!(f, "DRAM must be in self-refresh before save/restore")
            }
            NvramError::BadState { state, operation } => {
                write!(f, "cannot {operation} while module is {state}")
            }
            NvramError::UltracapDepleted => {
                write!(f, "ultracapacitor depleted before the save completed")
            }
            NvramError::NoValidImage => write!(f, "no valid image in flash"),
            NvramError::OutOfRange {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "access [{addr:#x}, {:#x}) exceeds capacity {capacity:#x}",
                addr + len
            ),
        }
    }
}

impl Error for NvramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let errors = [
            NvramError::NotInSelfRefresh,
            NvramError::UltracapDepleted,
            NvramError::NoValidImage,
            NvramError::OutOfRange {
                addr: 0x100,
                len: 8,
                capacity: 0x80,
            },
            NvramError::BadState {
                state: "Saving",
                operation: "write",
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(NvramError::NoValidImage);
        assert!(e.source().is_none());
    }
}
