//! The NVDIMM device: DRAM array, self-refresh handshake, ultracap-powered
//! DRAM→flash save, and flash→DRAM restore.

use wsp_units::{Bandwidth, ByteSize, Farads, Joules, Nanos, Volts, Watts};
use wsp_power::Ultracapacitor;

use crate::flash::{FlashStore, PageMap, PAGE_SIZE};
use crate::NvramError;

/// Operating state of the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimmState {
    /// Normal operation: host loads/stores hit the DRAM.
    Active,
    /// DRAM is in self-refresh; the controller may save or restore.
    SelfRefresh,
    /// A save completed; DRAM contents are safely in flash.
    Saved,
    /// System power is gone. DRAM contents are lost; flash persists.
    Off,
}

impl DimmState {
    fn name(self) -> &'static str {
        match self {
            DimmState::Active => "Active",
            DimmState::SelfRefresh => "SelfRefresh",
            DimmState::Saved => "Saved",
            DimmState::Off => "Off",
        }
    }
}

/// Result of a save operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaveOutcome {
    /// True if the whole DRAM image reached flash before the ultracap
    /// dropped below its minimum usable voltage.
    pub completed: bool,
    /// Time the save ran (full save, or until energy ran out).
    pub duration: Nanos,
    /// Energy drawn from the ultracapacitor.
    pub energy_used: Joules,
    /// Ultracap terminal voltage when the save ended.
    pub final_voltage: Volts,
}

/// One point of a Figure-2-style save trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaveTracePoint {
    /// Time since the save began.
    pub t: Nanos,
    /// Ultracapacitor terminal voltage.
    pub voltage: Volts,
    /// Power drawn from the ultracapacitor.
    pub power: Watts,
    /// True once the save has completed.
    pub save_completed: bool,
}

/// A battery-free NVDIMM (DRAM + ultracapacitor + NAND flash).
///
/// See the crate-level docs for the device contract and an end-to-end
/// example. DRAM contents are stored sparsely (4 KiB pages), so simulating
/// multi-gigabyte modules costs memory only for pages actually written.
#[derive(Debug, Clone)]
pub struct NvDimm {
    capacity: ByteSize,
    state: DimmState,
    dram: PageMap,
    flash: FlashStore,
    ultracap: Ultracapacitor,
    save_power: Watts,
    /// Injected transient save-command failures still pending: each
    /// `save()` consumes one and fails before touching flash, modelling
    /// an I2C relay dropping the command.
    pending_command_faults: u32,
}

impl NvDimm {
    /// Creates an AgigaRAM-like module: flash sized 1:1 with DRAM, flash
    /// write bandwidth sized so a full save takes ~7 s regardless of
    /// capacity (bigger modules ship more flash channels; the paper
    /// reports < 10 s for modules up to 8 GB), an 8 W save draw, and
    /// 2.5 F of ultracap per GiB charged to 12 V with a 6 V usable floor
    /// — enough stored energy for at least twice the save time, as the
    /// paper measures.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn agiga(capacity: ByteSize) -> Self {
        assert!(!capacity.is_zero(), "capacity must be non-zero");
        let save_seconds = 7.0;
        let write_bw = Bandwidth::bytes_per_sec(capacity.as_u64() as f64 / save_seconds);
        // 2.5 F/GiB, floored so even small modules can power the fixed
        // ~7 s save for at least twice its duration (8 W x 14 s = 112 J
        // needs ~2.1 F between 12 V and the 6 V floor).
        let farads = (2.5 * capacity.as_gib_f64()).clamp(2.5, 50.0);
        NvDimm::new(
            capacity,
            write_bw,
            Ultracapacitor::new(Farads::new(farads), Volts::new(12.0), Volts::new(6.0)),
            Watts::new(8.0),
        )
    }

    /// Creates a module with explicit flash bandwidth, ultracap and save
    /// power draw.
    #[must_use]
    pub fn new(
        capacity: ByteSize,
        flash_write_bandwidth: Bandwidth,
        ultracap: Ultracapacitor,
        save_power: Watts,
    ) -> Self {
        NvDimm {
            capacity,
            state: DimmState::Active,
            dram: PageMap::new(),
            flash: FlashStore::new(capacity, flash_write_bandwidth),
            ultracap,
            save_power,
            pending_command_faults: 0,
        }
    }

    /// Module capacity.
    #[must_use]
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Current operating state.
    #[must_use]
    pub fn state(&self) -> DimmState {
        self.state
    }

    /// The backup flash store.
    #[must_use]
    pub fn flash(&self) -> &FlashStore {
        &self.flash
    }

    /// The ultracapacitor bank.
    #[must_use]
    pub fn ultracap(&self) -> &Ultracapacitor {
        &self.ultracap
    }

    /// Mutable ultracapacitor access — lets fault-injection harnesses
    /// pre-drain the bank so the next save tears partway through.
    pub fn ultracap_mut(&mut self) -> &mut Ultracapacitor {
        &mut self.ultracap
    }

    /// Power the module draws from its ultracapacitor during a
    /// DRAM→flash save. Together with
    /// [`FlashStore::full_save_time`] this is the energy a feasibility
    /// check must budget against [`Ultracapacitor::usable_energy`].
    #[must_use]
    pub fn save_power(&self) -> Watts {
        self.save_power
    }

    /// Arms `count` transient save-command failures: the next `count`
    /// calls to [`NvDimm::save`] fail with
    /// [`NvramError::SaveCommandFailed`] before touching flash (the I2C
    /// relay dropping the command; a retry succeeds once exhausted).
    pub fn inject_save_command_faults(&mut self, count: u32) {
        self.pending_command_faults = count;
    }

    /// Test-harness sabotage: tears the *stored* flash image from
    /// `from_byte` on while leaving the valid flag high — the silent
    /// corruption case the per-DIMM checksum exists to detect.
    pub fn tear_saved_image(&mut self, from_byte: u64) {
        self.flash.corrupt_tail(from_byte);
    }

    fn check_range(&self, addr: u64, len: u64) -> Result<(), NvramError> {
        if addr.checked_add(len).is_none_or(|end| end > self.capacity.as_u64()) {
            return Err(NvramError::OutOfRange {
                addr,
                len,
                capacity: self.capacity.as_u64(),
            });
        }
        Ok(())
    }

    /// Writes `data` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the module is not [`DimmState::Active`] or the range is
    /// out of bounds — host stores to a quiesced or absent DRAM are
    /// wiring errors, not recoverable conditions.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        assert_eq!(
            self.state,
            DimmState::Active,
            "write while module is {}",
            self.state.name()
        );
        self.check_range(addr, data.len() as u64).unwrap_or_else(|e| panic!("{e}"));
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = addr + pos as u64;
            let page_idx = abs / PAGE_SIZE;
            let offset = (abs % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE as usize) - offset).min(data.len() - pos);
            let page = self
                .dram
                .entry(page_idx)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
            page[offset..offset + chunk].copy_from_slice(&data[pos..pos + chunk]);
            pos += chunk;
        }
    }

    /// Reads into `buf` from byte address `addr`. Unwritten bytes read as
    /// zero (fresh DRAM is zero-filled in the model).
    ///
    /// # Panics
    ///
    /// Panics if the module is not [`DimmState::Active`] or the range is
    /// out of bounds.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        assert_eq!(
            self.state,
            DimmState::Active,
            "read while module is {}",
            self.state.name()
        );
        self.check_range(addr, buf.len() as u64).unwrap_or_else(|e| panic!("{e}"));
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = addr + pos as u64;
            let page_idx = abs / PAGE_SIZE;
            let offset = (abs % PAGE_SIZE) as usize;
            let chunk = ((PAGE_SIZE as usize) - offset).min(buf.len() - pos);
            match self.dram.get(&page_idx) {
                Some(page) => buf[pos..pos + chunk].copy_from_slice(&page[offset..offset + chunk]),
                None => buf[pos..pos + chunk].fill(0),
            }
            pos += chunk;
        }
    }

    /// Puts the DRAM into self-refresh (prerequisite for save/restore on
    /// the real AgigaRAM parts; needs BIOS support the paper discusses).
    ///
    /// # Panics
    ///
    /// Panics when the module is off.
    pub fn enter_self_refresh(&mut self) {
        assert_ne!(self.state, DimmState::Off, "module is powered off");
        if self.state == DimmState::Active {
            self.state = DimmState::SelfRefresh;
        }
    }

    /// Brings the DRAM out of self-refresh back to normal operation.
    ///
    /// # Errors
    ///
    /// Returns [`NvramError::BadState`] unless the module is in
    /// self-refresh or freshly saved.
    pub fn exit_self_refresh(&mut self) -> Result<(), NvramError> {
        match self.state {
            DimmState::SelfRefresh | DimmState::Saved => {
                self.state = DimmState::Active;
                Ok(())
            }
            s => Err(NvramError::BadState {
                state: s.name(),
                operation: "exit self-refresh",
            }),
        }
    }

    /// Runs the DRAM→flash save on ultracapacitor power.
    ///
    /// # Errors
    ///
    /// Returns [`NvramError::NotInSelfRefresh`] if the handshake was
    /// skipped, or [`NvramError::SaveCommandFailed`] if an injected
    /// transient command fault is pending (nothing is written; a retry
    /// may succeed). An energy shortfall is *not* an `Err`: it is
    /// reported via [`SaveOutcome::completed`] `== false` and leaves a
    /// torn, invalid image in flash.
    pub fn save(&mut self) -> Result<SaveOutcome, NvramError> {
        if self.state != DimmState::SelfRefresh {
            return Err(NvramError::NotInSelfRefresh);
        }
        if self.pending_command_faults > 0 {
            self.pending_command_faults -= 1;
            return Err(NvramError::SaveCommandFailed { attempts: 1 });
        }
        let full_time = self.flash.full_save_time();
        let available = self.ultracap.supply_time(self.save_power);
        if available >= full_time {
            let v0 = self.ultracap.voltage();
            self.ultracap.discharge(self.save_power, full_time);
            self.flash.store_image(&self.dram);
            self.state = DimmState::Saved;
            Ok(SaveOutcome {
                completed: true,
                duration: full_time,
                energy_used: self
                    .ultracap
                    .capacitance()
                    .energy_between(v0, self.ultracap.voltage()),
                final_voltage: self.ultracap.voltage(),
            })
        } else {
            let v0 = self.ultracap.voltage();
            self.ultracap.discharge(self.save_power, available);
            let completed_bytes = (self.capacity.as_u64() as f64
                * available.as_secs_f64()
                / full_time.as_secs_f64()) as u64;
            self.flash.store_torn_image(&self.dram, completed_bytes);
            // The module browns out where it stands.
            self.state = DimmState::Off;
            self.dram.clear();
            Ok(SaveOutcome {
                completed: false,
                duration: available,
                energy_used: self
                    .ultracap
                    .capacitance()
                    .energy_between(v0, self.ultracap.voltage()),
                final_voltage: self.ultracap.voltage(),
            })
        }
    }

    /// Produces a Figure-2-style (time, voltage, power) trace of a save
    /// starting now, without mutating the module. The trace extends past
    /// save completion to show the draw dropping to standby level.
    #[must_use]
    pub fn save_trace(&self, step: Nanos) -> Vec<SaveTracePoint> {
        let full_time = self.flash.full_save_time();
        let horizon = full_time * 2;
        let standby = Watts::new(0.2);
        let mut cap = self.ultracap.clone();
        let mut points = Vec::new();
        let mut t = Nanos::ZERO;
        while t <= horizon {
            let completed = t >= full_time;
            let power = if completed { standby } else { self.save_power };
            points.push(SaveTracePoint {
                t,
                voltage: cap.voltage(),
                power,
                save_completed: completed,
            });
            cap.discharge(power, step);
            t += step;
        }
        points
    }

    /// Models loss of system power. If the save had completed the flash
    /// image survives; either way the DRAM array is gone.
    pub fn power_loss(&mut self) {
        self.dram.clear();
        self.state = DimmState::Off;
    }

    /// Re-applies system power: the memory controller leaves the DRAM in
    /// self-refresh with undefined (zeroed) contents, and the ultracap
    /// recharges (counting one aging cycle).
    pub fn power_on(&mut self) {
        self.dram.clear();
        self.ultracap.recharge();
        self.state = DimmState::SelfRefresh;
    }

    /// Restores DRAM contents from the flash image.
    ///
    /// # Errors
    ///
    /// Returns [`NvramError::NotInSelfRefresh`] if the handshake was
    /// skipped, [`NvramError::NoValidImage`] if the last save never
    /// completed, or [`NvramError::ChecksumMismatch`] if the image is
    /// marked valid but its contents fail verification (a torn save that
    /// slipped past the marker). On either failure the boot path must
    /// fall back to a lower recovery rung.
    pub fn restore(&mut self) -> Result<Nanos, NvramError> {
        if self.state != DimmState::SelfRefresh {
            return Err(NvramError::NotInSelfRefresh);
        }
        if self.flash.load_image().is_none() {
            return Err(NvramError::NoValidImage);
        }
        self.flash.verify_image()?;
        let image = self.flash.load_image().ok_or(NvramError::NoValidImage)?;
        self.dram = image.clone();
        self.state = DimmState::Active;
        Ok(self.flash.full_restore_time())
    }

    /// Discards the flash image (the host clears it after a successful
    /// resume so a stale image can never be replayed twice).
    pub fn invalidate_image(&mut self) {
        self.flash.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NvDimm {
        NvDimm::agiga(ByteSize::mib(64))
    }

    #[test]
    fn save_restore_round_trip() {
        let mut d = small();
        d.write(12345, b"hello");
        d.write(4096 * 10 + 4090, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]); // page-crossing
        d.enter_self_refresh();
        let out = d.save().unwrap();
        assert!(out.completed);
        assert_eq!(d.state(), DimmState::Saved);
        d.power_loss();
        d.power_on();
        d.restore().unwrap();
        let mut buf = [0u8; 5];
        d.read(12345, &mut buf);
        assert_eq!(&buf, b"hello");
        let mut buf10 = [0u8; 10];
        d.read(4096 * 10 + 4090, &mut buf10);
        assert_eq!(buf10, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn power_loss_without_save_loses_dram() {
        let mut d = small();
        d.write(0, b"doomed");
        d.power_loss();
        d.power_on();
        assert_eq!(d.restore().unwrap_err(), NvramError::NoValidImage);
    }

    #[test]
    fn save_requires_self_refresh() {
        let mut d = small();
        assert_eq!(d.save().unwrap_err(), NvramError::NotInSelfRefresh);
    }

    #[test]
    fn depleted_ultracap_leaves_torn_invalid_image() {
        let mut d = NvDimm::new(
            ByteSize::mib(64),
            Bandwidth::mib_per_sec(10.0), // 6.4 s save
            Ultracapacitor::new(Farads::new(0.1), Volts::new(12.0), Volts::new(6.0)),
            Watts::new(8.0), // 5.4 J usable -> 0.675 s supply
        );
        d.write(0, b"payload");
        d.enter_self_refresh();
        let out = d.save().unwrap();
        assert!(!out.completed);
        assert!(out.duration < Nanos::from_secs(1));
        assert_eq!(d.state(), DimmState::Off);
        d.power_on();
        assert_eq!(d.restore().unwrap_err(), NvramError::NoValidImage);
    }

    #[test]
    fn agiga_ultracap_covers_at_least_twice_the_save() {
        for gib in [1u64, 2, 4, 8] {
            let d = NvDimm::agiga(ByteSize::gib(gib));
            let save = d.flash().full_save_time();
            let supply = d.ultracap().supply_time(Watts::new(8.0));
            assert!(save.as_secs_f64() < 10.0, "{gib} GiB save {save}");
            assert!(
                supply.as_secs_f64() >= 2.0 * save.as_secs_f64(),
                "{gib} GiB: supply {supply} < 2x save {save}"
            );
        }
    }

    #[test]
    fn fig2_trace_voltage_decays_and_power_steps_down() {
        let d = NvDimm::agiga(ByteSize::gib(1));
        let trace = d.save_trace(Nanos::from_millis(100));
        assert!(trace.len() > 100);
        let first = trace.first().unwrap();
        let last = trace.last().unwrap();
        assert_eq!(first.voltage, Volts::new(12.0));
        assert!(last.voltage < first.voltage);
        assert!(last.save_completed);
        assert!(last.power < first.power);
        // Voltage is non-increasing throughout.
        for w in trace.windows(2) {
            assert!(w[1].voltage <= w[0].voltage);
        }
        // And the module never dips below its 6 V usable floor.
        assert!(trace.iter().all(|p| p.voltage >= Volts::new(6.0)));
    }

    #[test]
    fn unwritten_dram_reads_zero() {
        let d = small();
        let mut buf = [7u8; 16];
        d.read(1 << 20, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn out_of_range_write_panics() {
        let mut d = small();
        d.write(ByteSize::mib(64).as_u64() - 2, b"overflow");
    }

    #[test]
    fn invalidate_image_prevents_second_restore() {
        let mut d = small();
        d.write(0, b"x");
        d.enter_self_refresh();
        d.save().unwrap();
        d.power_loss();
        d.power_on();
        d.restore().unwrap();
        d.invalidate_image();
        d.enter_self_refresh();
        assert_eq!(d.restore().unwrap_err(), NvramError::NoValidImage);
    }

    #[test]
    fn injected_command_fault_fails_then_clears() {
        let mut d = small();
        d.write(0, b"retry me");
        d.inject_save_command_faults(2);
        d.enter_self_refresh();
        assert_eq!(
            d.save().unwrap_err(),
            NvramError::SaveCommandFailed { attempts: 1 }
        );
        assert_eq!(
            d.save().unwrap_err(),
            NvramError::SaveCommandFailed { attempts: 1 }
        );
        let out = d.save().unwrap();
        assert!(out.completed, "third attempt succeeds");
    }

    #[test]
    fn torn_valid_image_is_caught_by_checksum() {
        let mut d = small();
        d.write(0, b"head");
        d.write(ByteSize::mib(32).as_u64(), b"tail");
        d.enter_self_refresh();
        d.save().unwrap();
        d.tear_saved_image(ByteSize::mib(1).as_u64());
        d.power_loss();
        d.power_on();
        assert!(matches!(
            d.restore(),
            Err(NvramError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn save_bumps_generation() {
        let mut d = small();
        d.enter_self_refresh();
        d.save().unwrap();
        assert_eq!(d.flash().generation(), 1);
        d.exit_self_refresh().unwrap();
        d.enter_self_refresh();
        d.save().unwrap();
        assert_eq!(d.flash().generation(), 2);
    }

    #[test]
    fn exit_self_refresh_resumes_access() {
        let mut d = small();
        d.enter_self_refresh();
        d.exit_self_refresh().unwrap();
        d.write(0, b"ok");
        // Exiting from Active is a BadState error.
        assert!(matches!(
            d.exit_self_refresh(),
            Err(NvramError::BadState { .. })
        ));
    }
}
