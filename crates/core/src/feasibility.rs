//! The §5.4 feasibility analysis: is the flush-on-fail save always
//! comfortably inside the residual energy window?
//!
//! The paper's claim: across its platforms the save consumes only
//! 2–35 % of the measured window, i.e. the window is 2.5–80× larger
//! than the save time.

use wsp_cache::FlushMethod;
use wsp_machine::{Machine, SystemLoad};
use wsp_nvram::{NvDimm, NvramPool};
use wsp_power::Psu;
use wsp_units::Nanos;

/// One row of the feasibility matrix: a (machine, PSU, load) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityRow {
    /// CPU/testbed name.
    pub machine: String,
    /// PSU name.
    pub psu: String,
    /// Load level label.
    pub load: &'static str,
    /// State-save time (contexts + wbinvd).
    pub save_time: Nanos,
    /// Residual energy window.
    pub window: Nanos,
    /// `save_time / window` (None for an unbounded window).
    pub fraction: Option<f64>,
    /// True if the save fits with the paper's implicit 1× margin.
    pub fits: bool,
}

/// Computes the feasibility matrix for the paper's two testbeds and the
/// PSUs measured with each (Figure 7 pairings: AMD with the 400 W and
/// 525 W units, Intel with the 750 W and 1050 W units).
#[must_use]
pub fn feasibility_matrix() -> Vec<FeasibilityRow> {
    let pairings: Vec<(Machine, Vec<Psu>)> = vec![
        (Machine::amd_testbed(), vec![Psu::atx_400w(), Psu::atx_525w()]),
        (
            Machine::intel_testbed(),
            vec![Psu::atx_750w(), Psu::atx_1050w()],
        ),
    ];
    let mut rows = Vec::new();
    for (machine, psus) in pairings {
        for psu in psus {
            let m = machine.clone().with_psu(psu);
            for load in SystemLoad::both() {
                let save_time = m
                    .flush_analysis()
                    .state_save_time(FlushMethod::Wbinvd, m.dirty_estimate(load));
                let window = m.residual_window(load);
                rows.push(FeasibilityRow {
                    machine: m.profile().name.clone(),
                    psu: m.psu().name.clone(),
                    load: load.label(),
                    save_time,
                    window,
                    fraction: save_time.ratio_of(window),
                    fits: save_time <= window,
                });
            }
        }
    }
    rows
}

/// Whether an NVDIMM's ultracapacitor — at its *current* age and charge
/// — still covers the module's DRAM→flash save.
///
/// This ties the paper's Figure 1 (energy-cell aging) to its Figure 2
/// (save-energy demand): a cell that has faded below the save budget
/// must surface here as `Degraded` *before* a save is attempted, never
/// as a save that silently tears.
#[derive(Debug, Clone, PartialEq)]
pub enum SaveFeasibility {
    /// The cell's usable energy covers the save.
    Feasible {
        /// Usable energy beyond the save's demand, in joules.
        margin_joules: f64,
    },
    /// The cell cannot power the save to completion; arming the module
    /// would tear its image. The node must plan for back-end recovery.
    Degraded {
        /// Which budget failed and by how much.
        reason: String,
    },
}

impl SaveFeasibility {
    /// True for the `Feasible` verdict.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, SaveFeasibility::Feasible { .. })
    }
}

/// Feasibility verdict for one module: can its aged ultracapacitor still
/// deliver `save_power × full_save_time`?
#[must_use]
pub fn nvdimm_save_feasibility(dimm: &NvDimm) -> SaveFeasibility {
    let need = dimm.save_power() * dimm.flash().full_save_time();
    let usable = dimm.ultracap().usable_energy();
    if dimm.ultracap().covers(dimm.save_power(), dimm.flash().full_save_time()) {
        SaveFeasibility::Feasible {
            margin_joules: usable.get() - need.get(),
        }
    } else {
        SaveFeasibility::Degraded {
            reason: format!(
                "ultracap usable energy {:.1} J (after {} charge cycles) < {:.1} J save demand",
                usable.get(),
                dimm.ultracap().cycles(),
                need.get()
            ),
        }
    }
}

/// Pool-wide verdict: `Feasible` only if *every* module's cell covers
/// its save (the pool save is only as strong as its weakest cell). The
/// save supervisor consults this before arming the modules.
#[must_use]
pub fn pool_save_feasibility(pool: &NvramPool) -> SaveFeasibility {
    let mut margin = f64::INFINITY;
    for (i, dimm) in pool.dimms().iter().enumerate() {
        match nvdimm_save_feasibility(dimm) {
            SaveFeasibility::Feasible { margin_joules } => margin = margin.min(margin_joules),
            SaveFeasibility::Degraded { reason } => {
                return SaveFeasibility::Degraded {
                    reason: format!("module {i}: {reason}"),
                }
            }
        }
    }
    SaveFeasibility::Feasible {
        margin_joules: margin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measured_combination_fits() {
        let rows = feasibility_matrix();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.fits,
                "{} + {} ({}): {} vs {}",
                row.machine, row.psu, row.load, row.save_time, row.window
            );
        }
    }

    /// §5.4: the save takes 2–35 % of the window (we allow 0.3–35 %, as
    /// the roomy AMD 400 W window pushes the lower bound down).
    #[test]
    fn fractions_land_in_the_papers_band() {
        for row in feasibility_matrix() {
            let f = row.fraction.expect("finite window");
            assert!(
                (0.002..0.35).contains(&f),
                "{} + {} ({}): fraction {f}",
                row.machine,
                row.psu,
                row.load
            );
        }
    }

    /// Equivalently: windows are 2.5–80x the save time (§5.3).
    #[test]
    fn window_to_save_ratio_matches_paper() {
        for row in feasibility_matrix() {
            let ratio = row.window.as_secs_f64() / row.save_time.as_secs_f64();
            assert!(ratio >= 2.5, "{} + {}: ratio {ratio}", row.machine, row.psu);
        }
    }

    #[test]
    fn fresh_agiga_pool_is_feasible() {
        use wsp_units::ByteSize;
        let pool = NvramPool::uniform(4, ByteSize::gib(1));
        let v = pool_save_feasibility(&pool);
        assert!(v.is_feasible(), "{v:?}");
    }

    #[test]
    fn drained_module_degrades_the_pool_verdict() {
        use wsp_units::{ByteSize, Nanos, Watts};
        let mut pool = NvramPool::uniform(4, ByteSize::gib(1));
        let cap = pool.dimms_mut()[2].ultracap_mut();
        let _ = cap.discharge(Watts::new(1e6), Nanos::from_secs(3600));
        match pool_save_feasibility(&pool) {
            SaveFeasibility::Degraded { reason } => {
                assert!(reason.starts_with("module 2:"), "{reason}");
            }
            other => panic!("drained cell must degrade the pool: {other:?}"),
        }
    }

    /// The satellite property: Figure 1's aging curves composed with
    /// Figure 2's save-energy demand. For marginally-provisioned cells
    /// at any age, the feasibility verdict must *predict* the actual
    /// save outcome — a cell the matrix calls `Degraded` never yields a
    /// completed save, and a `Feasible` cell never tears. Verdict and
    /// device model can therefore never disagree silently.
    #[test]
    fn aged_cell_feasibility_matches_actual_save_outcome() {
        use wsp_det::forall;
        use wsp_det::gen::{in_range, pair};
        use wsp_power::{AgingModel, Ultracapacitor};
        use wsp_units::{Bandwidth, ByteSize, Farads, Volts, Watts};

        // 0.90–1.30 F between 12 V and the 6 V floor gives 48.6–70.2 J
        // usable against a 56 J save (8 W × 7 s): both verdicts occur,
        // and worst-case aging (up to ~12 % fade by 150k cycles) flips
        // cells near the boundary.
        let gen = pair(in_range(90u64..=130), in_range(0u64..=150_000));
        forall(gen, |&(centifarads, cycles)| {
            let capacity = ByteSize::mib(1);
            let bw = Bandwidth::bytes_per_sec(capacity.as_u64() as f64 / 7.0);
            let cell = Ultracapacitor::new(
                Farads::new(centifarads as f64 / 100.0),
                Volts::new(12.0),
                Volts::new(6.0),
            )
            .with_aging(AgingModel::UltracapWorst)
            .with_cycles(cycles);
            let mut dimm = NvDimm::new(capacity, bw, cell, Watts::new(8.0));
            dimm.write(0x40, b"aged-cell probe");
            let verdict = nvdimm_save_feasibility(&dimm);
            dimm.enter_self_refresh();
            let outcome = dimm.save().expect("command accepted");
            match verdict {
                SaveFeasibility::Feasible { margin_joules } => {
                    assert!(
                        outcome.completed,
                        "feasible cell ({centifarads} cF, {cycles} cycles, \
                         margin {margin_joules:.2} J) must complete its save"
                    );
                }
                SaveFeasibility::Degraded { reason } => {
                    assert!(
                        !outcome.completed,
                        "degraded cell ({centifarads} cF, {cycles} cycles) \
                         must never report a successful save: {reason}"
                    );
                    assert!(
                        !dimm.flash().has_valid_image(),
                        "a torn save must leave an invalid image"
                    );
                }
            }
        });
    }
}
