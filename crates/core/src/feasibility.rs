//! The §5.4 feasibility analysis: is the flush-on-fail save always
//! comfortably inside the residual energy window?
//!
//! The paper's claim: across its platforms the save consumes only
//! 2–35 % of the measured window, i.e. the window is 2.5–80× larger
//! than the save time.

use wsp_cache::FlushMethod;
use wsp_machine::{Machine, SystemLoad};
use wsp_power::Psu;
use wsp_units::Nanos;

/// One row of the feasibility matrix: a (machine, PSU, load) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityRow {
    /// CPU/testbed name.
    pub machine: String,
    /// PSU name.
    pub psu: String,
    /// Load level label.
    pub load: &'static str,
    /// State-save time (contexts + wbinvd).
    pub save_time: Nanos,
    /// Residual energy window.
    pub window: Nanos,
    /// `save_time / window` (None for an unbounded window).
    pub fraction: Option<f64>,
    /// True if the save fits with the paper's implicit 1× margin.
    pub fits: bool,
}

/// Computes the feasibility matrix for the paper's two testbeds and the
/// PSUs measured with each (Figure 7 pairings: AMD with the 400 W and
/// 525 W units, Intel with the 750 W and 1050 W units).
#[must_use]
pub fn feasibility_matrix() -> Vec<FeasibilityRow> {
    let pairings: Vec<(Machine, Vec<Psu>)> = vec![
        (Machine::amd_testbed(), vec![Psu::atx_400w(), Psu::atx_525w()]),
        (
            Machine::intel_testbed(),
            vec![Psu::atx_750w(), Psu::atx_1050w()],
        ),
    ];
    let mut rows = Vec::new();
    for (machine, psus) in pairings {
        for psu in psus {
            let m = machine.clone().with_psu(psu);
            for load in SystemLoad::both() {
                let save_time = m
                    .flush_analysis()
                    .state_save_time(FlushMethod::Wbinvd, m.dirty_estimate(load));
                let window = m.residual_window(load);
                rows.push(FeasibilityRow {
                    machine: m.profile().name.clone(),
                    psu: m.psu().name.clone(),
                    load: load.label(),
                    save_time,
                    window,
                    fraction: save_time.ratio_of(window),
                    fits: save_time <= window,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measured_combination_fits() {
        let rows = feasibility_matrix();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.fits,
                "{} + {} ({}): {} vs {}",
                row.machine, row.psu, row.load, row.save_time, row.window
            );
        }
    }

    /// §5.4: the save takes 2–35 % of the window (we allow 0.3–35 %, as
    /// the roomy AMD 400 W window pushes the lower bound down).
    #[test]
    fn fractions_land_in_the_papers_band() {
        for row in feasibility_matrix() {
            let f = row.fraction.expect("finite window");
            assert!(
                (0.002..0.35).contains(&f),
                "{} + {} ({}): fraction {f}",
                row.machine,
                row.psu,
                row.load
            );
        }
    }

    /// Equivalently: windows are 2.5–80x the save time (§5.3).
    #[test]
    fn window_to_save_ratio_matches_paper() {
        for row in feasibility_matrix() {
            let ratio = row.window.as_secs_f64() / row.save_time.as_secs_f64();
            assert!(ratio >= 2.5, "{} + {}: ratio {ratio}", row.machine, row.psu);
        }
    }
}
