//! Deterministic interleaving sweep for the detectable lock-free
//! structures in [`wsp_pheap::lockfree`].
//!
//! The single-shard crash sweeps elsewhere in `faultsim` inject power
//! failure *between transactions*; this engine injects it *between
//! instructions*. Each scenario builds a region plus a set of
//! cloneable per-thread operation machines, then a cooperative
//! scheduler enumerates thread interleavings one visible step (shared
//! read, CAS, flush, fence) at a time:
//!
//! * **Exhaustive mode** walks the full interleaving tree by cloning
//!   the whole execution (region + machines) at every scheduling
//!   choice — every reachable intermediate memory state is visited.
//! * **Seeded mode** (`wsp-det`) replays pseudo-random schedules for
//!   scenarios whose trees are too deep to enumerate.
//!
//! At every tree node where a pending step is a CAS, flush, or fence —
//! the persistence-ordering instructions — the sweep cuts power, takes
//! a policy-faithful crash image (flush-on-commit loses dirty lines,
//! flush-on-fail keeps them), classifies every thread's in-flight
//! operation with [`classify_recovery`], re-executes exactly the
//! operations recovery proves effect-free, runs all plans to
//! completion, and audits exactly-once semantics: every pushed value
//! is on the stack or popped exactly once, every inserted key occupies
//! exactly one slot, every `Resolved` verdict is backed by a durably
//! absent effect. A crash pending a read is not a distinct point: the
//! image is identical to the one before the previous step.
//!
//! The recovery-and-completion audit is a pure function of the crash
//! image and each thread's progress, so audits are memoized per
//! subtree on that exact pair — different interleavings that persist
//! the same bytes share one audit without weakening coverage (each
//! node still contributes its own path-tagged fingerprint term).
//!
//! Sharding follows the faultsim convention: a serial frontier phase
//! explores the first few tree levels, then the frontier subtrees (or
//! the seeded schedules) are distributed over `WSP_FAULTSIM_THREADS`
//! workers and their tallies and traces are merged in deterministic
//! order — reports are bitwise identical for serial and sharded runs.

use std::collections::HashMap;

use wsp_det::{DetRng, Rng};
use wsp_obs::{self as obs, Capture, Ctr, Event, MetricsSnapshot};
use wsp_pheap::lockfree::{
    desc_snapshot, payload, preload_hash, preload_stack, recover_op, recovered_arena_next,
    recovered_pop_value, FlushPolicy, LfLayout, LfRegion, OpKind, OpResult, OpVerdict, StepKind,
    ThreadMachine, HEAD_ADDR, OP_POP,
};
use wsp_units::Nanos;

use crate::faultsim::{faultsim_threads, merge_point_captures, run_sharded};
use crate::WspError;

/// Which lock-free structure a sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfStructure {
    /// Detectable Treiber stack.
    Stack,
    /// Detectable open-addressed hash.
    Hash,
}

impl LfStructure {
    /// Stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LfStructure::Stack => "stack",
            LfStructure::Hash => "hash",
        }
    }
}

/// Per-scenario slice of a sweep report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// Complete schedules executed (tree leaves or seeded replays).
    pub schedules: u64,
    /// Crash points enumerated (pending CAS/flush/fence steps).
    pub crash_points: u64,
    /// Verdicts observed across all crash audits.
    pub completed: u64,
    /// See [`LfScenarioOutcome::completed`].
    pub not_started: u64,
    /// See [`LfScenarioOutcome::completed`].
    pub resolved: u64,
    /// Order-sensitive digest of every audit in this scenario.
    pub fingerprint: u64,
}

/// Result of sweeping one structure under one flush policy.
#[derive(Debug, Clone, PartialEq)]
pub struct LockfreeSweepReport {
    /// Structure swept.
    pub structure: LfStructure,
    /// Flush policy the structure ran under.
    pub policy: FlushPolicy,
    /// Per-scenario outcomes, in scenario order.
    pub scenarios: Vec<LfScenarioOutcome>,
    /// Complete schedules executed across all scenarios.
    pub schedules: u64,
    /// Crash points enumerated (one per pending CAS/flush/fence step
    /// per tree node; the audit for co-pending steps is shared, since
    /// the pre-step image does not depend on which step was next).
    pub crash_points: u64,
    /// Crash points whose pending step was a CAS.
    pub cas_points: u64,
    /// Crash points whose pending step was a flush.
    pub flush_points: u64,
    /// Crash points whose pending step was a fence.
    pub fence_points: u64,
    /// `Completed` verdicts across all crash audits.
    pub completed: u64,
    /// `NotStarted` verdicts across all crash audits.
    pub not_started: u64,
    /// `Resolved` verdicts across all crash audits.
    pub resolved: u64,
    /// Help notes recorded (post-crash completions and full runs).
    pub helps: u64,
    /// CAS conflicts (post-crash completions and full runs).
    pub conflicts: u64,
    /// Order-sensitive digest over every audit of every scenario.
    pub fingerprint: u64,
    /// Structured trace of the sweep.
    pub trace: Vec<Event>,
    /// Metrics accumulated during the sweep.
    pub metrics: MetricsSnapshot,
}

/// Classifies one thread's in-flight operation against a recovered
/// region, wrapping detectability failures in the typed [`WspError`]
/// and emitting exactly one refusal trace event per error return
/// (PR 4 convention).
///
/// # Errors
///
/// [`WspError::Detectability`] when the durable descriptor is torn or
/// the operation cannot be resolved.
pub fn classify_recovery(
    region: &LfRegion,
    tid: u8,
    current_seq: u64,
) -> Result<OpVerdict, WspError> {
    obs::count(Ctr::LockfreeRecoveries);
    match recover_op(region, tid, current_seq) {
        Ok(v) => Ok(v),
        Err(e) => {
            let err = WspError::from(e);
            obs::count(Ctr::LockfreeRefusals);
            obs::emit_detail(
                "lockfree",
                "refusal",
                Nanos::ZERO,
                i64::from(tid),
                current_seq as i64,
                err.kind().into(),
            );
            Err(err)
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_u64(h: u64, v: u64) -> u64 {
    v.to_le_bytes()
        .iter()
        .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Serial tree levels explored before sharding subtrees to workers.
const FRONTIER_DEPTH: usize = 3;
/// Hard ceiling on tree nodes per explored subtree — a scenario that
/// trips this was sized wrong, not a machine that loops.
const MAX_NODES: u64 = 20_000_000;

#[derive(Debug, Clone, Copy)]
struct Tally {
    nodes: u64,
    schedules: u64,
    cas_points: u64,
    flush_points: u64,
    fence_points: u64,
    completed: u64,
    not_started: u64,
    resolved: u64,
    helps: u64,
    conflicts: u64,
    fingerprint: u64,
}

impl Tally {
    fn new() -> Self {
        Tally {
            nodes: 0,
            schedules: 0,
            cas_points: 0,
            flush_points: 0,
            fence_points: 0,
            completed: 0,
            not_started: 0,
            resolved: 0,
            helps: 0,
            conflicts: 0,
            fingerprint: FNV_OFFSET,
        }
    }

    fn crash_points(&self) -> u64 {
        self.cas_points + self.flush_points + self.fence_points
    }

    fn merge(&mut self, other: &Tally) {
        self.nodes += other.nodes;
        self.schedules += other.schedules;
        self.cas_points += other.cas_points;
        self.flush_points += other.flush_points;
        self.fence_points += other.fence_points;
        self.completed += other.completed;
        self.not_started += other.not_started;
        self.resolved += other.resolved;
        self.helps += other.helps;
        self.conflicts += other.conflicts;
        self.fingerprint = fnv_u64(self.fingerprint, other.fingerprint);
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Exhaustive,
    Seeded(usize),
}

#[derive(Clone)]
struct Scenario {
    name: &'static str,
    structure: LfStructure,
    lay: LfLayout,
    stack_preload: Vec<u64>,
    hash_preload: Vec<(u64, u64)>,
    plans: Vec<Vec<OpKind>>,
    mode: Mode,
}

impl Scenario {
    /// Every value the scenario's pushes (preload included) introduce.
    /// Values are distinct by construction so the exactly-once audit
    /// can use multisets without aliasing.
    fn all_pushed(&self) -> Vec<u64> {
        let mut v = self.stack_preload.clone();
        for plan in &self.plans {
            for op in plan {
                if let OpKind::Push(x) = op {
                    v.push(*x);
                }
            }
        }
        v.sort_unstable();
        v
    }

    /// Keys that must occupy exactly one slot in any completed image:
    /// the preloads plus every planned insert (inserts of a live key
    /// return `Exists`; a duplicate slot is a lost-evidence bug).
    fn must_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.hash_preload.iter().map(|p| p.0).collect();
        for plan in &self.plans {
            for op in plan {
                if let OpKind::Insert(k, _) = op {
                    keys.push(*k);
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    fn value_candidates(&self, key: u64) -> Vec<u64> {
        let mut vals: Vec<u64> = self
            .hash_preload
            .iter()
            .filter(|p| p.0 == key)
            .map(|p| p.1)
            .collect();
        for plan in &self.plans {
            for op in plan {
                match op {
                    OpKind::Insert(k, v) | OpKind::Update(k, v) if *k == key => vals.push(*v),
                    _ => {}
                }
            }
        }
        vals
    }
}

#[derive(Clone)]
struct SweepState {
    region: LfRegion,
    machines: Vec<ThreadMachine>,
    path: Vec<u8>,
}

impl SweepState {
    fn new(sc: &Scenario) -> Self {
        let mut region = LfRegion::create(sc.lay);
        if !sc.stack_preload.is_empty() {
            preload_stack(&mut region, &sc.stack_preload);
        }
        if !sc.hash_preload.is_empty() {
            preload_hash(&mut region, &sc.hash_preload);
        }
        let mut machines: Vec<ThreadMachine> = sc
            .plans
            .iter()
            .enumerate()
            .map(|(t, plan)| ThreadMachine::new(sc.lay, t as u8, plan.clone()))
            .collect();
        for m in &mut machines {
            m.prepare(&mut region);
        }
        SweepState { region, machines, path: Vec::new() }
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.machines.len())
            .filter(|&i| !self.machines[i].done())
            .collect()
    }

    fn step(&mut self, i: usize) {
        self.machines[i].step(&mut self.region);
        self.path.push(i as u8);
    }
}

fn result_code(r: OpResult) -> u64 {
    match r {
        OpResult::Pushed => 1,
        OpResult::Popped(v) => 0x100 + v,
        OpResult::Empty => 2,
        OpResult::Inserted => 3,
        OpResult::Exists => 4,
        OpResult::Updated => 5,
        OpResult::NotFound => 6,
        OpResult::Found(v) => 0x1_0000 + v,
        OpResult::TableFull => 7,
    }
}

/// Walks the durable stack chain of a recovered (or quiescent) region.
fn walk_stack(fr: &LfRegion) -> Vec<u64> {
    let mut vals = Vec::new();
    let mut cur = fr.durable_word(HEAD_ADDR);
    let cap = fr.layout().capacity().as_u64() / 64;
    while payload(cur) != 0 {
        let node = payload(cur);
        vals.push(fr.durable_word(node));
        cur = fr.durable_word(node + 8);
        assert!(vals.len() as u64 <= cap, "cycle in durable stack chain");
    }
    vals
}

/// Walks the durable hash table, in slot order.
fn walk_hash(fr: &LfRegion) -> Vec<(u64, u64)> {
    let lay = fr.layout();
    (0..lay.slots)
        .filter_map(|i| {
            let w = fr.durable_word(lay.slot_addr(i));
            (payload(w) != 0).then(|| {
                let e = payload(w);
                (fr.durable_word(e), fr.durable_word(e + 8))
            })
        })
        .collect()
}

/// Audits a fully-completed durable image against the scenario's
/// exactly-once expectations; returns a digest of the final state.
fn audit_final_image(sc: &Scenario, fr: &LfRegion, popped: &[u64], ctx: &str) -> u64 {
    let mut digest = FNV_OFFSET;
    match sc.structure {
        LfStructure::Stack => {
            let chain = walk_stack(fr);
            for &v in &chain {
                digest = fnv_u64(digest, v);
            }
            let mut have: Vec<u64> = chain.iter().chain(popped.iter()).copied().collect();
            have.sort_unstable();
            assert_eq!(
                have,
                sc.all_pushed(),
                "{}: {ctx}: stack lost or duplicated nodes (chain {chain:?}, popped {popped:?})",
                sc.name
            );
        }
        LfStructure::Hash => {
            let table = walk_hash(fr);
            for &(k, v) in &table {
                digest = fnv_u64(fnv_u64(digest, k), v);
            }
            let mut keys: Vec<u64> = table.iter().map(|p| p.0).collect();
            keys.sort_unstable();
            let deduped = {
                let mut d = keys.clone();
                d.dedup();
                d
            };
            assert_eq!(keys, deduped, "{}: {ctx}: duplicated key in table", sc.name);
            assert_eq!(
                keys,
                sc.must_keys(),
                "{}: {ctx}: table keys diverge from the planned key set",
                sc.name
            );
            for &(k, v) in &table {
                assert!(
                    sc.value_candidates(k).contains(&v),
                    "{}: {ctx}: key {k} holds phantom value {v}",
                    sc.name
                );
            }
        }
    }
    digest
}

/// Memoized result of one recovery-and-completion audit. The audit is
/// a pure function of (crash image, per-thread results-so-far): the
/// verdicts, the re-execution, and the final-state checks all derive
/// from exactly those inputs, so two interleavings that persisted the
/// same bytes at the same per-thread progress share one audit.
#[derive(Clone, Copy)]
struct CachedAudit {
    completed: u64,
    not_started: u64,
    resolved: u64,
    helps: u64,
    conflicts: u64,
    digest: u64,
}

type AuditCache = HashMap<(Vec<u8>, Vec<u64>), CachedAudit>;

/// Recovers from `image`, re-executes exactly what recovery licenses,
/// completes every plan, and audits exactly-once semantics.
fn audit_recovery(
    sc: &Scenario,
    image: Vec<u8>,
    machines: &[ThreadMachine],
    path: &[u8],
) -> CachedAudit {
    let lay = sc.lay;
    let mut r = LfRegion::from_image(image, lay);
    let mut out = CachedAudit {
        completed: 0,
        not_started: 0,
        resolved: 0,
        helps: 0,
        conflicts: 0,
        digest: FNV_OFFSET,
    };
    let mut popped: Vec<u64> = Vec::new();
    let mut post: Vec<ThreadMachine> = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        let tid = i as u8;
        let plan = m.plan();
        let verdict = classify_recovery(&r, tid, m.current_seq()).unwrap_or_else(|e| {
            panic!("{}: path {path:?}: protocol produced a corrupt descriptor: {e}", sc.name)
        });
        match verdict {
            OpVerdict::Completed => out.completed += 1,
            OpVerdict::NotStarted => out.not_started += 1,
            OpVerdict::Resolved => out.resolved += 1,
        }
        out.digest = fnv_u64(out.digest, verdict as u64);
        for &res in m.results() {
            out.digest = fnv_u64(out.digest, result_code(res));
            if let OpResult::Popped(v) = res {
                popped.push(v);
            }
        }
        if m.done() {
            // A returned effectful answer must still be justified by
            // the durable image — durable linearizability.
            if m.results().last().is_some_and(|r| r.effectful()) {
                assert_eq!(
                    verdict,
                    OpVerdict::Completed,
                    "{}: path {path:?}: thread {tid} returned an effectful result the image lost",
                    sc.name
                );
            }
            continue;
        }
        let returned = m.ops_returned();
        let consumed = match verdict {
            OpVerdict::Completed => {
                let snap = desc_snapshot(&r, tid);
                if snap.opcode == OP_POP {
                    popped.push(recovered_pop_value(&r, tid));
                }
                returned + 1
            }
            OpVerdict::NotStarted | OpVerdict::Resolved => {
                if verdict == OpVerdict::Resolved {
                    // Resolution's contract: re-execution is safe only
                    // if the effect is provably absent from the media.
                    let snap = desc_snapshot(&r, tid);
                    assert_ne!(
                        r.durable_word(snap.target),
                        snap.new_val,
                        "{}: path {path:?}: thread {tid} resolved an op whose effect is durable",
                        sc.name
                    );
                }
                returned
            }
        };
        if consumed < plan.len() {
            post.push(ThreadMachine::with_progress(
                lay,
                tid,
                plan[consumed..].to_vec(),
                consumed as u64 + 1,
                recovered_arena_next(&r, tid),
            ));
        }
    }
    // Finish every surviving plan, deterministic round-robin.
    for m in &mut post {
        m.prepare(&mut r);
    }
    let mut guard = 0u32;
    while post.iter().any(|m| !m.done()) {
        for m in &mut post {
            if !m.done() {
                m.step(&mut r);
            }
        }
        guard += 1;
        assert!(guard < 100_000, "{}: post-crash completion did not quiesce", sc.name);
    }
    for m in &post {
        out.helps += m.stats().helps;
        out.conflicts += m.stats().cas_conflicts;
        for &res in m.results() {
            out.digest = fnv_u64(out.digest, result_code(res));
            if let OpResult::Popped(v) = res {
                popped.push(v);
            }
        }
    }
    let final_digest = match lay.policy {
        // Completed FoC ops flushed their effects at return; the live
        // durable bytes already are the post-completion crash image.
        FlushPolicy::FlushOnCommit => audit_final_image(sc, &r, &popped, "post-crash"),
        FlushPolicy::FlushOnFail => {
            let fr = LfRegion::from_image(r.crash_image(), lay);
            audit_final_image(sc, &fr, &popped, "post-crash")
        }
    };
    out.digest = fnv_u64(out.digest, final_digest);
    out
}

/// Per-machine progress signature for the audit cache key.
fn progress_sig(machines: &[ThreadMachine]) -> Vec<u64> {
    let mut sig = Vec::new();
    for m in machines {
        sig.push(m.results().len() as u64);
        sig.extend(m.results().iter().map(|&r| result_code(r)));
        sig.push(u64::MAX);
    }
    sig
}

/// Cuts power at the current tree node and audits (memoized).
fn audit_crash(sc: &Scenario, state: &SweepState, t: &mut Tally, cache: &mut AuditCache) {
    obs::count(Ctr::FaultsInjected);
    let image = match sc.lay.policy {
        FlushPolicy::FlushOnCommit => state.region.durable_snapshot(),
        FlushPolicy::FlushOnFail => state.region.crash_image(),
    };
    let key = (image, progress_sig(&state.machines));
    let cached = match cache.get(&key) {
        Some(&c) => c,
        None => {
            let c = audit_recovery(sc, key.0.clone(), &state.machines, &state.path);
            cache.insert(key, c);
            c
        }
    };
    t.completed += cached.completed;
    t.not_started += cached.not_started;
    t.resolved += cached.resolved;
    t.helps += cached.helps;
    t.conflicts += cached.conflicts;
    let mut digest = FNV_OFFSET;
    for &b in &state.path {
        digest = fnv_u64(digest, u64::from(b));
    }
    t.fingerprint = fnv_u64(t.fingerprint, fnv_u64(digest, cached.digest));
}

/// Audits a schedule that ran to completion without a crash.
fn audit_leaf(sc: &Scenario, state: &SweepState, t: &mut Tally) {
    let mut digest = FNV_OFFSET;
    for &b in &state.path {
        digest = fnv_u64(digest, u64::from(b));
    }
    let mut popped: Vec<u64> = Vec::new();
    let mut ops = 0u64;
    for m in &state.machines {
        t.helps += m.stats().helps;
        t.conflicts += m.stats().cas_conflicts;
        obs::count_by(Ctr::LockfreeCas, m.stats().cas_attempts);
        obs::count_by(Ctr::LockfreeCasConflicts, m.stats().cas_conflicts);
        obs::count_by(Ctr::LockfreeHelps, m.stats().helps);
        ops += m.results().len() as u64;
        for &res in m.results() {
            digest = fnv_u64(digest, result_code(res));
            if let OpResult::Popped(v) = res {
                popped.push(v);
            }
        }
    }
    obs::count_by(Ctr::LockfreeOps, ops);
    let final_digest = match sc.lay.policy {
        FlushPolicy::FlushOnCommit => audit_final_image(sc, &state.region, &popped, "complete run"),
        FlushPolicy::FlushOnFail => {
            let fr = LfRegion::from_image(state.region.crash_image(), sc.lay);
            audit_final_image(sc, &fr, &popped, "complete run")
        }
    };
    digest = fnv_u64(digest, final_digest);
    t.fingerprint = fnv_u64(t.fingerprint, digest);
}

/// Counts this node's pending crash points and audits once if any.
/// (The image depends only on the executed prefix, never on which
/// pending step would have run next, so one audit covers them all.)
fn audit_node(sc: &Scenario, state: &SweepState, t: &mut Tally, cache: &mut AuditCache) {
    let mut pending = 0;
    for m in &state.machines {
        match m.peek_kind() {
            Some(StepKind::Cas) => {
                t.cas_points += 1;
                pending += 1;
            }
            Some(StepKind::Flush) => {
                t.flush_points += 1;
                pending += 1;
            }
            Some(StepKind::Fence) => {
                t.fence_points += 1;
                pending += 1;
            }
            Some(StepKind::Read) | None => {}
        }
    }
    if pending > 0 {
        audit_crash(sc, state, t, cache);
    }
}

/// Depth-first exploration. With `remaining = Some(k)`, stops after
/// `k` levels and parks audited states on `frontier` for workers;
/// with `None`, explores the subtree to its leaves.
fn explore(
    sc: &Scenario,
    state: SweepState,
    remaining: Option<usize>,
    frontier: &mut Vec<SweepState>,
    t: &mut Tally,
    cache: &mut AuditCache,
) {
    t.nodes += 1;
    assert!(t.nodes <= MAX_NODES, "{}: interleaving tree exceeded {MAX_NODES} nodes", sc.name);
    let runnable = state.runnable();
    if runnable.is_empty() {
        t.schedules += 1;
        audit_leaf(sc, &state, t);
        return;
    }
    audit_node(sc, &state, t, cache);
    if remaining == Some(0) {
        frontier.push(state);
        return;
    }
    let next = remaining.map(|k| k - 1);
    let (&last, rest) = runnable.split_last().expect("runnable is non-empty");
    for &i in rest {
        let mut child = state.clone();
        child.step(i);
        explore(sc, child, next, frontier, t, cache);
    }
    // Last branch takes ownership instead of cloning.
    let mut child = state;
    child.step(last);
    explore(sc, child, next, frontier, t, cache);
}

/// Expands a frontier state (already audited) into its full subtrees.
fn expand_frontier(sc: &Scenario, state: &SweepState, t: &mut Tally) {
    let mut no_frontier = Vec::new();
    let mut cache = AuditCache::new();
    for &i in &state.runnable() {
        let mut child = state.clone();
        child.step(i);
        explore(sc, child, None, &mut no_frontier, t, &mut cache);
    }
    debug_assert!(no_frontier.is_empty());
}

fn run_exhaustive(sc: &Scenario, threads: usize) -> (Tally, Vec<Capture>) {
    let mut frontier = Vec::new();
    let mut tally = Tally::new();
    let ((), head_cap) = obs::capture(|| {
        let mut cache = AuditCache::new();
        explore(sc, SweepState::new(sc), Some(FRONTIER_DEPTH), &mut frontier, &mut tally, &mut cache);
    });
    let shards = run_sharded(frontier, threads, |state| {
        obs::capture(|| {
            let mut t = Tally::new();
            expand_frontier(sc, &state, &mut t);
            t
        })
    });
    let mut captures = vec![head_cap];
    for (t, cap) in shards {
        tally.merge(&t);
        captures.push(cap);
    }
    (tally, captures)
}

fn run_seeded(
    sc: &Scenario,
    schedules: usize,
    rng: &mut DetRng,
    threads: usize,
) -> (Tally, Vec<Capture>) {
    // Split every schedule's PRNG serially before any worker runs —
    // the sharded replay order cannot perturb the streams.
    let rngs: Vec<DetRng> = (0..schedules).map(|_| rng.split()).collect();
    let shards = run_sharded(rngs, threads, |mut srng| {
        obs::capture(|| {
            let mut t = Tally::new();
            let mut cache = AuditCache::new();
            let mut state = SweepState::new(sc);
            loop {
                let runnable = state.runnable();
                if runnable.is_empty() {
                    t.schedules += 1;
                    audit_leaf(sc, &state, &mut t);
                    break;
                }
                audit_node(sc, &state, &mut t, &mut cache);
                let pick = runnable[srng.gen_range(0..runnable.len())];
                state.step(pick);
            }
            t
        })
    });
    let mut tally = Tally::new();
    let mut captures = Vec::new();
    for (t, cap) in shards {
        tally.merge(&t);
        captures.push(cap);
    }
    (tally, captures)
}

fn colliding_key(lay: &LfLayout, base: u64) -> u64 {
    let home = lay.home_slot(base);
    (base + 1..base + 10_000)
        .find(|&k| lay.home_slot(k) == home)
        .expect("a colliding key exists in range")
}

fn scenarios(structure: LfStructure, policy: FlushPolicy) -> Vec<Scenario> {
    // Flush-on-fail operations have no flush/fence steps, so their
    // interleaving trees are shallow enough to enumerate everywhere.
    // Under flush-on-commit the two longest-path scenarios switch to
    // seeded replays; exhaustive coverage of every step kind comes
    // from the remaining scenarios.
    let wide = |seeded| match policy {
        FlushPolicy::FlushOnFail => Mode::Exhaustive,
        FlushPolicy::FlushOnCommit => Mode::Seeded(seeded),
    };
    let blank = |name, lay, plans, mode| Scenario {
        name,
        structure,
        lay,
        stack_preload: Vec::new(),
        hash_preload: Vec::new(),
        plans,
        mode,
    };
    match structure {
        LfStructure::Stack => {
            let lay2 = LfLayout::new(2, 0, 8, policy);
            let lay3 = LfLayout::new(3, 0, 8, policy);
            vec![
                blank(
                    "stack-push-push",
                    lay2,
                    vec![vec![OpKind::Push(0xA1)], vec![OpKind::Push(0xB1)]],
                    Mode::Exhaustive,
                ),
                Scenario {
                    stack_preload: vec![0x51],
                    ..blank(
                        "stack-push-pop",
                        lay2,
                        vec![vec![OpKind::Push(0xA2)], vec![OpKind::Pop]],
                        Mode::Exhaustive,
                    )
                },
                Scenario {
                    stack_preload: vec![0x52, 0x53],
                    ..blank(
                        "stack-pop-pop",
                        lay2,
                        vec![vec![OpKind::Pop], vec![OpKind::Pop]],
                        wide(32),
                    )
                },
                Scenario {
                    stack_preload: vec![0x54],
                    ..blank(
                        "stack-mixed-3t",
                        lay3,
                        vec![
                            vec![OpKind::Push(0x61), OpKind::Pop],
                            vec![OpKind::Push(0x62), OpKind::Pop],
                            vec![OpKind::Push(0x63)],
                        ],
                        Mode::Seeded(12),
                    )
                },
            ]
        }
        LfStructure::Hash => {
            let lay2 = LfLayout::new(2, 16, 8, policy);
            let lay3 = LfLayout::new(3, 16, 8, policy);
            let k2 = colliding_key(&lay2, 9);
            vec![
                blank(
                    "hash-insert-race",
                    lay2,
                    vec![vec![OpKind::Insert(7, 0x70)], vec![OpKind::Insert(7, 0x71)]],
                    Mode::Exhaustive,
                ),
                blank(
                    "hash-collide",
                    lay2,
                    vec![vec![OpKind::Insert(9, 0x90)], vec![OpKind::Insert(k2, 0x91)]],
                    Mode::Exhaustive,
                ),
                Scenario {
                    hash_preload: vec![(5, 0x50)],
                    ..blank(
                        "hash-update-race",
                        lay2,
                        vec![vec![OpKind::Update(5, 0x51)], vec![OpKind::Update(5, 0x52)]],
                        wide(32),
                    )
                },
                Scenario {
                    hash_preload: vec![(5, 0x50)],
                    ..blank(
                        "hash-insert-update",
                        lay2,
                        vec![vec![OpKind::Insert(11, 0xB0)], vec![OpKind::Update(5, 0x53)]],
                        Mode::Exhaustive,
                    )
                },
                Scenario {
                    hash_preload: vec![(5, 0x50)],
                    ..blank(
                        "hash-mixed-3t",
                        lay3,
                        vec![
                            vec![OpKind::Insert(21, 0xC1), OpKind::Get(5)],
                            vec![OpKind::Update(5, 0x55), OpKind::Insert(22, 0xC2)],
                            vec![OpKind::Get(21), OpKind::Update(5, 0x56)],
                        ],
                        Mode::Seeded(12),
                    )
                },
            ]
        }
    }
}

/// Sweeps `structure` under `policy` with the ambient worker count.
#[must_use]
pub fn sweep_lockfree(structure: LfStructure, policy: FlushPolicy, seed: u64) -> LockfreeSweepReport {
    sweep_lockfree_threads(structure, policy, seed, faultsim_threads())
}

/// Sweeps with an explicit worker count (`1` forces the serial path;
/// any count yields a bitwise-identical report).
#[must_use]
pub fn sweep_lockfree_threads(
    structure: LfStructure,
    policy: FlushPolicy,
    seed: u64,
    threads: usize,
) -> LockfreeSweepReport {
    let mut rng = DetRng::seed_from_u64(seed ^ (policy.code() << 32) ^ structure as u64);
    let mut total = Tally::new();
    let mut scenario_outs = Vec::new();
    let mut merged: Option<Capture> = None;
    for sc in scenarios(structure, policy) {
        let ((), hdr) = obs::capture(|| {
            obs::emit_detail(
                "lockfree",
                "scenario",
                Nanos::ZERO,
                sc.plans.len() as i64,
                0,
                format!("{} [{}/{}]", sc.name, structure.label(), policy.label()),
            );
        });
        let (tally, captures) = match sc.mode {
            Mode::Exhaustive => run_exhaustive(&sc, threads),
            Mode::Seeded(n) => run_seeded(&sc, n, &mut rng, threads),
        };
        scenario_outs.push(LfScenarioOutcome {
            name: sc.name,
            schedules: tally.schedules,
            crash_points: tally.crash_points(),
            completed: tally.completed,
            not_started: tally.not_started,
            resolved: tally.resolved,
            fingerprint: tally.fingerprint,
        });
        total.merge(&tally);
        let mut scenario_cap = hdr;
        scenario_cap.absorb(merge_point_captures(captures));
        merged = Some(match merged.take() {
            None => scenario_cap,
            Some(mut m) => {
                m.absorb(scenario_cap);
                m
            }
        });
    }
    let cap = merged.expect("at least one scenario per structure");
    LockfreeSweepReport {
        structure,
        policy,
        scenarios: scenario_outs,
        schedules: total.schedules,
        crash_points: total.crash_points(),
        cas_points: total.cas_points,
        flush_points: total.flush_points,
        fence_points: total.fence_points,
        completed: total.completed,
        not_started: total.not_started,
        resolved: total.resolved,
        helps: total.helps,
        conflicts: total.conflicts,
        fingerprint: total.fingerprint,
        trace: cap.trace.events().to_vec(),
        metrics: cap.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_push_push_covers_all_kinds_foc() {
        let r = sweep_lockfree_threads(LfStructure::Stack, FlushPolicy::FlushOnCommit, 7, 1);
        assert!(r.cas_points > 0 && r.flush_points > 0 && r.fence_points > 0);
        assert!(r.completed > 0 && r.not_started > 0 && r.resolved > 0);
        assert!(r.schedules > 100);
    }

    #[test]
    fn fof_has_no_flush_or_fence_points() {
        let r = sweep_lockfree_threads(LfStructure::Stack, FlushPolicy::FlushOnFail, 7, 1);
        assert!(r.cas_points > 0);
        assert_eq!(r.flush_points, 0);
        assert_eq!(r.fence_points, 0);
    }

    #[test]
    fn hash_serial_matches_sharded() {
        let a = sweep_lockfree_threads(LfStructure::Hash, FlushPolicy::FlushOnCommit, 42, 1);
        let b = sweep_lockfree_threads(LfStructure::Hash, FlushPolicy::FlushOnCommit, 42, 4);
        assert_eq!(a, b);
    }
}
