//! Per-VM persistence (paper §4 and "Future work": "hypervisor support
//! for per-VM persistence" with a fresh host OS and transparent I/O
//! replay). After a power failure the host OS and physical device stack
//! boot from scratch — no device-restart problem at all — and each VM's
//! memory is already sitting in NVRAM; the hypervisor re-attaches VMs in
//! priority order and replays their in-flight virtual I/O.

use wsp_machine::Machine;
use wsp_units::{ByteSize, Nanos};

/// One guest VM on the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmInstance {
    /// VM name.
    pub name: String,
    /// Guest memory footprint (resident in host NVRAM).
    pub memory: ByteSize,
    /// Restore priority (0 = first; the revenue-critical database comes
    /// back before the batch tier).
    pub priority: u8,
    /// Virtual I/Os in flight at the failure (to be replayed).
    pub inflight_io: u32,
}

impl VmInstance {
    /// Creates a VM description.
    #[must_use]
    pub fn new(name: impl Into<String>, memory: ByteSize, priority: u8) -> Self {
        VmInstance {
            name: name.into(),
            memory,
            priority,
            inflight_io: 0,
        }
    }

    /// Sets the in-flight I/O count.
    #[must_use]
    pub fn with_inflight_io(mut self, n: u32) -> Self {
        self.inflight_io = n;
        self
    }
}

/// A VM's recovery milestone in the restore schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmRestoreMilestone {
    /// VM name.
    pub name: String,
    /// Time (from power-up) at which the VM resumes execution.
    pub ready_at: Nanos,
}

/// The full restore schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmRestoreSchedule {
    /// Per-VM readiness, in restore order.
    pub milestones: Vec<VmRestoreMilestone>,
    /// Time until the highest-priority VM is serving again.
    pub time_to_first: Nanos,
    /// Time until every VM is serving.
    pub time_to_all: Nanos,
}

/// A virtualized WSP host: fresh host-OS boot on restore, then per-VM
/// re-attach and I/O replay.
///
/// # Examples
///
/// ```
/// use wsp_core::{VirtualizedHost, VmInstance};
/// use wsp_machine::Machine;
/// use wsp_units::ByteSize;
///
/// let host = VirtualizedHost::new(vec![
///     VmInstance::new("db", ByteSize::gib(32), 0),
///     VmInstance::new("batch", ByteSize::gib(8), 5),
/// ]);
/// let schedule = host.restore_schedule(&Machine::intel_testbed());
/// assert_eq!(schedule.milestones[0].name, "db");
/// assert!(schedule.time_to_first < schedule.time_to_all);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualizedHost {
    vms: Vec<VmInstance>,
    /// Fresh host OS + device stack boot.
    pub host_boot: Nanos,
    /// Hypervisor page-table re-attach cost per GiB of guest memory
    /// (the memory itself is already in NVRAM — only mappings rebuild).
    pub reattach_per_gib: Nanos,
    /// Per-virtual-I/O replay cost.
    pub replay_per_io: Nanos,
}

impl VirtualizedHost {
    /// Creates a host with typical costs: 8 s host boot, 20 ms/GiB
    /// re-attach, 50 µs per replayed I/O.
    #[must_use]
    pub fn new(vms: Vec<VmInstance>) -> Self {
        VirtualizedHost {
            vms,
            host_boot: Nanos::from_secs(8),
            reattach_per_gib: Nanos::from_millis(20),
            replay_per_io: Nanos::from_micros(50),
        }
    }

    /// The guests.
    #[must_use]
    pub fn vms(&self) -> &[VmInstance] {
        &self.vms
    }

    /// Total guest memory (must fit the machine's NVRAM).
    #[must_use]
    pub fn total_guest_memory(&self) -> ByteSize {
        self.vms.iter().map(|v| v.memory).sum()
    }

    fn reattach_time(&self, vm: &VmInstance) -> Nanos {
        self.reattach_per_gib * vm.memory.as_gib_f64()
            + self.replay_per_io * u64::from(vm.inflight_io)
    }

    /// Computes the restore schedule on `machine`: NVDIMM restore (all
    /// modules in parallel), host OS boot (overlapped with nothing —
    /// the BIOS path needs memory first), then VMs sequentially in
    /// priority order.
    ///
    /// # Panics
    ///
    /// Panics if the guests do not fit the machine's NVRAM.
    #[must_use]
    pub fn restore_schedule(&self, machine: &Machine) -> VmRestoreSchedule {
        assert!(
            self.total_guest_memory() <= machine.nvram().total_capacity(),
            "guests exceed NVRAM capacity"
        );
        let mut order: Vec<&VmInstance> = self.vms.iter().collect();
        order.sort_by_key(|v| (v.priority, v.name.clone()));

        let mut at = machine.nvram().parallel_restore_time() + self.host_boot;
        let mut milestones = Vec::with_capacity(order.len());
        for vm in order {
            at += self.reattach_time(vm);
            milestones.push(VmRestoreMilestone {
                name: vm.name.clone(),
                ready_at: at,
            });
        }
        VmRestoreSchedule {
            time_to_first: milestones.first().map_or(Nanos::ZERO, |m| m.ready_at),
            time_to_all: milestones.last().map_or(Nanos::ZERO, |m| m.ready_at),
            milestones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> VirtualizedHost {
        VirtualizedHost::new(vec![
            VmInstance::new("batch", ByteSize::gib(16), 5).with_inflight_io(100),
            VmInstance::new("db", ByteSize::gib(24), 0).with_inflight_io(40),
            VmInstance::new("cache", ByteSize::gib(4), 1),
        ])
    }

    #[test]
    fn priority_order_restores_critical_vm_first() {
        let schedule = host().restore_schedule(&Machine::intel_testbed());
        let names: Vec<&str> = schedule.milestones.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["db", "cache", "batch"]);
        assert!(schedule.time_to_first < schedule.time_to_all);
    }

    #[test]
    fn reattach_is_fast_compared_to_the_flash_restore() {
        let schedule = host().restore_schedule(&Machine::intel_testbed());
        let machine = Machine::intel_testbed();
        let flash = machine.nvram().parallel_restore_time();
        // Everything after the flash restore + boot is under two seconds:
        // memory is already local, only mappings and replay remain.
        let tail = schedule.time_to_all - flash - Nanos::from_secs(8);
        assert!(tail.as_secs_f64() < 2.0, "reattach tail {tail}");
    }

    #[test]
    fn milestones_are_monotone() {
        let schedule = host().restore_schedule(&Machine::intel_testbed());
        assert!(schedule
            .milestones
            .windows(2)
            .all(|w| w[0].ready_at <= w[1].ready_at));
    }

    #[test]
    fn io_replay_costs_show_up() {
        let quiet = VirtualizedHost::new(vec![VmInstance::new("a", ByteSize::gib(8), 0)]);
        let busy = VirtualizedHost::new(vec![
            VmInstance::new("a", ByteSize::gib(8), 0).with_inflight_io(10_000),
        ]);
        let m = Machine::amd_testbed();
        assert!(
            busy.restore_schedule(&m).time_to_all > quiet.restore_schedule(&m).time_to_all
        );
    }

    #[test]
    #[should_panic(expected = "exceed NVRAM capacity")]
    fn oversubscribed_guests_rejected() {
        let host = VirtualizedHost::new(vec![VmInstance::new(
            "huge",
            ByteSize::gib(100),
            0,
        )]);
        let _ = host.restore_schedule(&Machine::amd_testbed()); // 8 GiB NVRAM
    }

    #[test]
    fn ties_break_deterministically_by_name() {
        let host = VirtualizedHost::new(vec![
            VmInstance::new("zeta", ByteSize::gib(1), 3),
            VmInstance::new("alpha", ByteSize::gib(1), 3),
        ]);
        let s = host.restore_schedule(&Machine::intel_testbed());
        assert_eq!(s.milestones[0].name, "alpha");
    }
}
