//! Power-storm survival: dozens of sequential micro-outages against one
//! shared power domain, each landing mid-recovery of the previous one.
//!
//! Intermittent-computing supplies (harvested energy, brown-out-prone
//! racks) do not fail once — they fail in *storms*: partial saves and
//! partial restores interleave, and every recovery must assume it will
//! itself be interrupted. [`run_power_storm`] drives a sharded fleet
//! through that regime:
//!
//! * every outage runs the domain supervisor's triaged save
//!   ([`crate::domain_save`]) with an injected decision cut, so across a
//!   storm every triage decision point is crashed at least once;
//! * every recovery climbs the ladder (resolve in-doubt 2PC → log
//!   replay / full resume → cluster rebuild for sacrificed shards), and
//!   the *next* outage lands on a chosen rung of that climb — the climb
//!   is then re-run from the same durable state and must produce
//!   identical heap contents (idempotent re-climb);
//! * cross-shard transactions run in the foreground, including
//!   interleaved in-flight pairs left in doubt at the outage, and the
//!   in-memory model is checked cell-for-cell after every recovery: a
//!   committed transaction survives every storm, even when the
//!   coordinator's own shard was sacrificed (the routing log closes
//!   that gap — see [`crate::reapply_routed`]).
//!
//! [`sweep_power_storm`] fans the storm over rung phases and triage
//! biases, sharded over [`faultsim_threads`] workers with bitwise
//! deterministic results.

use std::collections::BTreeSet;

use wsp_cache::FlushMethod;
use wsp_cluster::ClusterSpec;
use wsp_det::{DetRng, Rng};
use wsp_machine::{Machine, SystemLoad};
use wsp_obs as obs;
use wsp_obs::{Ctr, MetricsSnapshot, Trace};
use wsp_pheap::{BackendStore, CrashImage, HeapConfig, PersistentHeap, PmPtr, RecoveryLadder};
use wsp_power::{PowerDomain, Psu, Ultracapacitor};
use wsp_units::{ByteSize, Farads, Nanos, Volts, Watts};

use crate::domain::{
    domain_decision_points, domain_save, DomainBudget, DomainInput, DomainVerdict, ShardVerdict,
};
use crate::faultsim::{faultsim_threads, merge_point_captures, run_sharded};
use crate::supervisor::{clean_failure_trace, MARKER_COST};
use crate::txn::{reapply_routed, recover_routing, resolve_cross_shard, TxnCoordinator, TxnOutcome};
use crate::WspError;

/// Cells committed per shard, on distinct cache lines: cell 0 carries
/// the foreground transfers, cell 1 the decided half of the interleaved
/// in-doubt pairs, cell 2 the presumed-abort half.
const STORM_CELLS: usize = 3;

/// One storm scenario: how many outages, how the triage is biased, and
/// which recovery rung each follow-on outage lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormSpec {
    /// Heap configuration for every shard (must be flush-on-commit).
    pub config: HeapConfig,
    /// Shards sharing the power domain.
    pub shards: usize,
    /// Sequential micro-outages to fire.
    pub outages: usize,
    /// Pin the coordinator's home shard (shard 0) to zero staleness so
    /// the triage ranks it last and tight windows sacrifice it — the
    /// adversarial case for cross-shard decisions.
    pub sacrifice_coordinator: bool,
    /// Offset into the ladder-rung rotation the follow-on outage lands
    /// on (`(outage / decisions + phase) % 3`).
    pub rung_phase: usize,
}

impl StormSpec {
    /// The standard storm: three shards, three full rotations of the
    /// triage decision points (27 outages — every decision cut crossed
    /// with every ladder rung).
    #[must_use]
    pub fn standard(config: HeapConfig) -> Self {
        let shards = 3;
        StormSpec {
            config,
            shards,
            outages: 3 * domain_decision_points(shards),
            sacrifice_coordinator: false,
            rung_phase: 0,
        }
    }
}

/// What one full storm survived, with coverage accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormStats {
    /// Outages fired.
    pub outages: usize,
    /// Cross-shard transactions committed (foreground + decided pairs).
    pub committed_txns: usize,
    /// In-flight transactions resolved by presumed abort across all
    /// recoveries.
    pub presumed_aborts: usize,
    /// Shard-epochs that sealed a complete image.
    pub complete: usize,
    /// Shard-epochs that sealed only the priority stage.
    pub partial: usize,
    /// Shard-epochs sacrificed by the triage (typed refusals, no
    /// image).
    pub sacrificed: usize,
    /// Sacrificed shard-epochs rebuilt from a back-end checkpoint plus
    /// routed-write replay.
    pub rebuilt: usize,
    /// Outages where the coordinator's home shard was itself sacrificed
    /// while transactions were in doubt.
    pub coordinator_shard_sacrifices: usize,
    /// Committed words re-applied to rebuilt shards from the routing
    /// log.
    pub rerouted_writes: u64,
    /// Interrupted recovery climbs whose re-climb produced identical
    /// heap contents.
    pub reclimbs_verified: usize,
    /// Power cycles, counting the mid-recovery interruptions.
    pub power_cycles: usize,
    /// Distinct triage decision indices the storm cut at.
    pub decision_cuts: BTreeSet<usize>,
    /// Distinct ladder rungs follow-on outages landed on.
    pub crash_rungs: BTreeSet<usize>,
    /// Every shard's cell values after the final recovery, in
    /// shard-major order — the serial/parallel equality witness.
    pub final_cells: Vec<u64>,
}

/// One point of [`sweep_power_storm`]: a full storm at one rung phase
/// and triage bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormPoint {
    /// Rung-rotation offset for this storm.
    pub phase: usize,
    /// Whether the triage is biased against the coordinator's shard.
    pub sacrifice_coordinator: bool,
}

/// A sweep point's storm result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormPointOutcome {
    /// The scenario.
    pub point: StormPoint,
    /// What it survived.
    pub stats: StormStats,
}

/// The full storm sweep for one heap configuration.
#[derive(Debug, Clone)]
pub struct PowerStormReport {
    /// Heap configuration under test.
    pub config: HeapConfig,
    /// Per-point storms, in injection order.
    pub points: Vec<StormPointOutcome>,
    /// Total outages fired across all points.
    pub outages: usize,
    /// Distinct triage decision indices cut, unioned across points.
    pub decision_cuts_covered: usize,
    /// Distinct ladder rungs landed on, unioned across points.
    pub crash_rungs_covered: usize,
    /// Sacrificed shard-epochs rebuilt via checkpoint + routed replay.
    pub rebuilt: usize,
    /// Committed words re-applied from the routing log.
    pub rerouted_writes: u64,
    /// Per-point traces merged in point order — identical for any
    /// `WSP_FAULTSIM_THREADS`.
    pub trace: Trace,
    /// Metrics aggregated across every point, in the same order.
    pub metrics: MetricsSnapshot,
}

fn read_cell(heap: &mut PersistentHeap, addr: u64) -> u64 {
    let p = PmPtr::new(addr).expect("storm cells are aligned");
    let mut tx = heap.begin();
    let v = tx.read_word(p).expect("storm cell readable");
    tx.commit().expect("read-only commit");
    v
}

/// The shared reserve behind the PSU hold-up: a rack-level
/// ultracapacitor bank sized for hundreds of milliseconds at full
/// draw, ground down and partially re-fed as the storm progresses.
fn storm_reserve() -> Ultracapacitor {
    Ultracapacitor::new(Farads::new(2.0), Volts::new(12.0), Volts::new(6.0))
}

/// One recovery climb from the outage's durable state: resolve every
/// surviving shard against the coordinator's decision log and, when
/// `rebuild` is set, rebuild the sacrificed ones from their back-end
/// checkpoint plus the routing log. Pure in its inputs — re-running it
/// from the same images must yield the same heap contents, which is
/// exactly what the storm asserts when a follow-on outage interrupts
/// the first attempt.
fn climb(
    coordinator_image: &[u8],
    images: &[Option<CrashImage>],
    backends: &[RecoveryLadder],
    cluster: &ClusterSpec,
    rebuild: bool,
) -> (Vec<Option<PersistentHeap>>, u64, usize, usize) {
    let routed = recover_routing(coordinator_image);
    let recovery = resolve_cross_shard(coordinator_image, images.to_vec(), cluster);
    let mut heaps = Vec::with_capacity(recovery.shards.len());
    let mut rerouted = 0u64;
    let mut rebuilt = 0usize;
    let mut aborted = 0usize;
    for shard in recovery.shards {
        if let Some(resolution) = &shard.resolution {
            aborted += resolution.aborted.len();
        }
        match shard.heap {
            Some(heap) => {
                assert!(
                    shard.outcome.is_recovered(),
                    "shard {} returned a heap without a recovered verdict: {:?}",
                    shard.shard,
                    shard.outcome
                );
                heaps.push(Some(heap));
            }
            None if rebuild => {
                // Sacrificed by the triage: typed refusal, ladder
                // degrades to a cluster rebuild — checkpoint plus the
                // routed writes of every decided transaction.
                assert!(
                    matches!(shard.refusal, Some(WspError::BackendRecoveryRequired { .. })),
                    "shard {} lost its image without a typed refusal",
                    shard.shard
                );
                let (mut heap, _source, _took) = backends[shard.shard]
                    .recover_from_checkpoint()
                    .expect("every shard was checkpointed before the storm");
                rerouted += reapply_routed(&mut heap, shard.shard, &routed, &recovery.decided)
                    .expect("routed replay targets checkpointed cells");
                rebuilt += 1;
                heaps.push(Some(heap));
            }
            None => heaps.push(None),
        }
    }
    (heaps, rerouted, rebuilt, aborted)
}

/// Drives one full power storm and checks every invariant along the
/// way. Panics are contract violations (a silent tear, a lost committed
/// transaction, a non-idempotent re-climb); the returned [`StormStats`]
/// is the coverage record.
///
/// # Panics
///
/// Panics when `spec.config` is not flush-on-commit (cross-shard 2PC
/// cannot prepare), when `spec.shards < 3` (the interleaved pairs need
/// a third participant), and on any invariant violation.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_power_storm(spec: &StormSpec, seed: u64) -> StormStats {
    assert!(
        spec.config.flush_on_commit(),
        "power storm needs a flush-on-commit configuration, got {}",
        spec.config
    );
    assert!(spec.shards >= 3, "power storm needs >= 3 shards");
    let mut rng = DetRng::seed_from_u64(seed);
    let shards = spec.shards;
    let decisions = domain_decision_points(shards);
    let load = SystemLoad::Busy;

    let mut machine = Machine::intel_testbed();
    machine.apply_load(load, rng.gen());
    let mut domain = PowerDomain::new(
        Psu::atx_750w(),
        storm_reserve(),
        machine.power_draw(load),
        shards,
    );

    // Seed the fleet: STORM_CELLS committed cells per shard, then
    // checkpoint each shard to its back end ONCE — every later rebuild
    // must climb back from this deliberately stale state via the
    // routing log.
    let mut heaps: Vec<PersistentHeap> = Vec::with_capacity(shards);
    let mut cells: Vec<Vec<u64>> = Vec::with_capacity(shards);
    let mut model: Vec<Vec<u64>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let mut heap = PersistentHeap::create(ByteSize::kib(256), spec.config);
        let mut tx = heap.begin();
        let base = tx.alloc(STORM_CELLS as u64 * 64).expect("seed allocation");
        let mut shard_cells = Vec::with_capacity(STORM_CELLS);
        let mut shard_model = Vec::with_capacity(STORM_CELLS);
        for c in 0..STORM_CELLS {
            let p = base.byte_offset(c as u64 * 64);
            let v = rng.gen::<u64>();
            tx.write_word(p, v).expect("seed cell writable");
            shard_cells.push(p.offset());
            shard_model.push(v);
        }
        tx.set_root(base).expect("root");
        tx.commit().expect("seed commit");
        heaps.push(heap);
        cells.push(shard_cells);
        model.push(shard_model);
    }
    let backends: Vec<RecoveryLadder> = heaps
        .iter()
        .map(|heap| {
            let mut backend = RecoveryLadder::new(BackendStore::disk_array());
            backend.checkpoint(heap);
            backend
        })
        .collect();

    let mut coordinator = TxnCoordinator::with_routing();
    let mut staleness = vec![Nanos::ZERO; shards];
    let cluster = ClusterSpec::memcache_tier(8);

    let mut stats = StormStats {
        outages: spec.outages,
        committed_txns: 0,
        presumed_aborts: 0,
        complete: 0,
        partial: 0,
        sacrificed: 0,
        rebuilt: 0,
        coordinator_shard_sacrifices: 0,
        rerouted_writes: 0,
        reclimbs_verified: 0,
        power_cycles: 0,
        decision_cuts: BTreeSet::new(),
        crash_rungs: BTreeSet::new(),
        final_cells: Vec::new(),
    };

    for k in 0..spec.outages {
        // ---- Foreground work: one committed cross-shard transfer.
        let a = k % shards;
        let b = (k + 1) % shards;
        let (va, vb) = (rng.gen::<u64>(), rng.gen::<u64>());
        let mut txn = coordinator.begin(shards);
        txn.stage(a, cells[a][0], va);
        txn.stage(b, cells[b][0], vb);
        let outcome = coordinator
            .commit(&mut heaps, &txn)
            .expect("healthy fleet commits");
        assert_eq!(outcome, TxnOutcome::Committed, "outage {k} foreground txn");
        model[a][0] = va;
        model[b][0] = vb;
        stats.committed_txns += 1;

        // ---- Every third outage: an interleaved in-flight pair. Both
        // prepare on the overlapping shard `b` (disjoint cells), only A
        // reaches a durable decision — the outage must resolve A
        // committed and B presumed-abort from the same recovered logs.
        let mut in_doubt = false;
        if k % 3 == 0 {
            let c = (k + 2) % shards;
            let (wa, wb) = (rng.gen::<u64>(), rng.gen::<u64>());
            let mut pair_a = coordinator.begin(shards);
            pair_a.stage(a, cells[a][1], wa);
            pair_a.stage(b, cells[b][1], wb);
            let mut pair_b = coordinator.begin(shards);
            pair_b.stage(b, cells[b][2], rng.gen::<u64>());
            pair_b.stage(c, cells[c][2], rng.gen::<u64>());
            coordinator
                .prepare_shard(&mut heaps[a], a, &pair_a)
                .expect("pair A prepares on its first shard");
            coordinator
                .prepare_shard(&mut heaps[b], b, &pair_b)
                .expect("pair B prepares on the overlapping shard");
            coordinator
                .prepare_shard(&mut heaps[b], b, &pair_a)
                .expect("pair A prepares on the overlapping shard");
            coordinator
                .prepare_shard(&mut heaps[c], c, &pair_b)
                .expect("pair B prepares on its second shard");
            coordinator.record_decision(&pair_a);
            model[a][1] = wa;
            model[b][1] = wb;
            stats.committed_txns += 1;
            in_doubt = true;
        }

        // ---- The outage: triaged domain save with an injected cut and
        // a contention-forcing window. Mode 0 trusts the measured
        // window (everything fits), mode 1 covers one full save plus
        // one priority stage, mode 2 a single priority stage.
        let cut = k % decisions;
        stats.decision_cuts.insert(cut);
        let window_cap = match k % 3 {
            0 => None,
            mode => {
                let detection = machine.monitor().debounce
                    + machine.monitor().interrupt_latency
                    + machine.profile().ipi_latency;
                let fixed = detection
                    + machine.profile().context_save
                    + machine.monitor().i2c_command_latency;
                let arm = machine.monitor().i2c_command_latency;
                let share = machine.flush_analysis().flush_time(
                    FlushMethod::Wbinvd,
                    machine.dirty_estimate(load) / shards as u64,
                );
                let (mut max_full, mut max_partial) = (Nanos::ZERO, Nanos::ZERO);
                for heap in &heaps {
                    let (stage_a, _probe) = obs::capture(|| {
                        let mut probe = heap.clone();
                        probe.priority_flush()
                    });
                    max_full = max_full.max(stage_a + share + MARKER_COST + arm);
                    max_partial = max_partial.max(stage_a + MARKER_COST + arm);
                }
                if mode == 1 {
                    Some(fixed + max_full + max_partial)
                } else {
                    Some(fixed + max_partial)
                }
            }
        };
        obs::count(Ctr::StormOutages);
        obs::emit("faultsim", "storm_outage", Nanos::ZERO, k as i64, cut as i64);
        let report = domain_save(DomainInput {
            machine: &mut machine,
            domain: &mut domain,
            heaps: &mut heaps,
            staleness: &staleness,
            load,
            trace: &clean_failure_trace(),
            budget: DomainBudget {
                window_cap,
                cut_decision: Some(cut),
                ..DomainBudget::trusting()
            },
        })
        .expect("storm outages yield verdicts, not errors");
        assert_eq!(report.verdict, DomainVerdict::Triaged, "outage {k}");
        for s in &report.shards {
            match s.verdict {
                ShardVerdict::Complete => stats.complete += 1,
                ShardVerdict::PartialPriority => stats.partial += 1,
                ShardVerdict::Sacrificed => stats.sacrificed += 1,
            }
            assert_eq!(
                s.verdict != ShardVerdict::Sacrificed,
                s.sealed,
                "outage {k}: shard {} verdict {:?} vs sealed {}",
                s.shard,
                s.verdict,
                s.sealed
            );
            assert_eq!(
                s.verdict == ShardVerdict::Sacrificed,
                s.refusal.is_some(),
                "outage {k}: shard {} sacrifice must carry a typed refusal (and only then)",
                s.shard
            );
        }
        if in_doubt && report.shards[0].verdict == ShardVerdict::Sacrificed {
            stats.coordinator_shard_sacrifices += 1;
        }

        // ---- Power actually dies: images exist exactly per verdict.
        let outgoing: Vec<PersistentHeap> = std::mem::take(&mut heaps);
        let images: Vec<Option<CrashImage>> = outgoing
            .into_iter()
            .zip(&report.shards)
            .map(|(heap, s)| match s.verdict {
                ShardVerdict::Complete => Some(heap.crash(true)),
                ShardVerdict::PartialPriority => Some(heap.crash(false)),
                ShardVerdict::Sacrificed => None,
            })
            .collect();
        let coordinator_image = coordinator.crash_image();
        coordinator = TxnCoordinator::recover_routed(&coordinator_image);
        machine.system_power_loss();
        machine.system_power_on();
        for dimm in machine.nvram_mut().dimms_mut() {
            dimm.exit_self_refresh()
                .expect("fresh power-on leaves every module in self-refresh");
        }
        for core in machine.cores_mut() {
            core.halted = false;
        }
        stats.power_cycles += 1;
        domain.drain_outage(Nanos::from_millis(20));
        let _topped_up = domain.replenish(
            Watts::new(2000.0),
            Nanos::from_millis(20 + (k as u64 % 5) * 10),
        );

        // ---- Recovery, interrupted: the follow-on outage lands on
        // `crash_rung` of the first climb (0 = before resolution, 1 =
        // after resolution but before the rebuilds, 2 = after the
        // rebuilds). The interrupted attempt is discarded — everything
        // it did was derived from durable state — and the re-climb must
        // reach identical contents.
        let crash_rung = ((k / decisions) + spec.rung_phase) % 3;
        stats.crash_rungs.insert(crash_rung);
        let first = match crash_rung {
            0 => None,
            rung => Some(climb(
                &coordinator_image,
                &images,
                &backends,
                &cluster,
                rung == 2,
            )),
        };
        if first.is_some() {
            stats.power_cycles += 1; // the outage that cut the climb short
        }
        let (new_heaps, rerouted, rebuilt, aborted) =
            climb(&coordinator_image, &images, &backends, &cluster, true);
        let mut new_heaps: Vec<PersistentHeap> = new_heaps
            .into_iter()
            .map(|h| h.expect("the full climb rebuilds every shard"))
            .collect();
        if let Some((first_heaps, first_rerouted, first_rebuilt, first_aborted)) = first {
            if crash_rung == 2 {
                assert_eq!(first_rerouted, rerouted, "outage {k}: re-climb rerouted differently");
                assert_eq!(first_rebuilt, rebuilt, "outage {k}: re-climb rebuilt differently");
            }
            assert_eq!(first_aborted, aborted, "outage {k}: re-climb resolved differently");
            for (s, first_heap) in first_heaps.into_iter().enumerate() {
                let Some(mut first_heap) = first_heap else {
                    continue; // rung-1 interruption never reached this rebuild
                };
                for (c, &cell) in cells[s].iter().enumerate() {
                    assert_eq!(
                        read_cell(&mut first_heap, cell),
                        read_cell(&mut new_heaps[s], cell),
                        "outage {k}: re-climb diverged on shard {s} cell {c}"
                    );
                }
            }
            stats.reclimbs_verified += 1;
        }
        stats.rerouted_writes += rerouted;
        stats.rebuilt += rebuilt;
        stats.presumed_aborts += aborted;

        // ---- The survival contract: every committed value, every
        // shard, every outage — sacrificed shards included.
        heaps = new_heaps;
        for s in 0..shards {
            for c in 0..STORM_CELLS {
                assert_eq!(
                    read_cell(&mut heaps[s], cells[s][c]),
                    model[s][c],
                    "outage {k}: shard {s} cell {c} lost a committed value \
                     (verdict {:?})",
                    report.shards[s].verdict
                );
            }
        }

        // ---- Staleness: reset by a complete seal, otherwise grows.
        for (stale, shard) in staleness.iter_mut().zip(&report.shards) {
            *stale = if shard.verdict == ShardVerdict::Complete {
                Nanos::ZERO
            } else {
                stale.saturating_add(Nanos::from_millis(1))
            };
        }
        if spec.sacrifice_coordinator {
            staleness[0] = Nanos::ZERO;
        }
    }

    for (heap, shard_cells) in heaps.iter_mut().zip(&cells) {
        for &cell in shard_cells.iter().take(STORM_CELLS) {
            stats.final_cells.push(read_cell(heap, cell));
        }
    }
    stats
}

/// Runs [`run_power_storm`] across every rung phase and both triage
/// biases, sharded over [`faultsim_threads`] workers — bitwise
/// identical to the serial order.
///
/// # Panics
///
/// As [`run_power_storm`]: any surviving panic is a broken storm
/// invariant.
#[must_use]
pub fn sweep_power_storm(config: HeapConfig, seed: u64) -> PowerStormReport {
    sweep_power_storm_threads(config, seed, faultsim_threads())
}

/// [`sweep_power_storm`] with an explicit worker count, for proving the
/// sharding invisible: any `threads` yields a bitwise-identical report.
///
/// # Panics
///
/// As [`run_power_storm`].
#[must_use]
pub fn sweep_power_storm_threads(
    config: HeapConfig,
    seed: u64,
    threads: usize,
) -> PowerStormReport {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut points: Vec<(StormPoint, u64)> = Vec::new();
    for phase in 0..3 {
        for sacrifice_coordinator in [false, true] {
            let point = StormPoint {
                phase,
                sacrifice_coordinator,
            };
            points.push((point, rng.gen::<u64>()));
        }
    }

    let results = run_sharded(points, threads, |(point, point_seed)| {
        let (stats, cap) = obs::capture(|| {
            obs::emit_detail(
                "faultsim",
                "inject",
                Nanos::ZERO,
                point.phase as i64,
                i64::from(point.sacrifice_coordinator),
                format!("{point:?}"),
            );
            obs::count(Ctr::FaultsInjected);
            let spec = StormSpec {
                sacrifice_coordinator: point.sacrifice_coordinator,
                rung_phase: point.phase,
                ..StormSpec::standard(config)
            };
            run_power_storm(&spec, point_seed)
        });
        (point, stats, cap)
    });

    let mut outcomes = Vec::with_capacity(results.len());
    let mut captures = Vec::with_capacity(results.len());
    for (point, stats, cap) in results {
        captures.push(cap);
        outcomes.push(StormPointOutcome { point, stats });
    }
    let merged = merge_point_captures(captures);

    let mut cuts: BTreeSet<usize> = BTreeSet::new();
    let mut rungs: BTreeSet<usize> = BTreeSet::new();
    let mut outages = 0usize;
    let mut rebuilt = 0usize;
    let mut rerouted_writes = 0u64;
    for outcome in &outcomes {
        cuts.extend(outcome.stats.decision_cuts.iter().copied());
        rungs.extend(outcome.stats.crash_rungs.iter().copied());
        outages += outcome.stats.outages;
        rebuilt += outcome.stats.rebuilt;
        rerouted_writes += outcome.stats.rerouted_writes;
    }

    PowerStormReport {
        config,
        points: outcomes,
        outages,
        decision_cuts_covered: cuts.len(),
        crash_rungs_covered: rungs.len(),
        rebuilt,
        rerouted_writes,
        trace: merged.trace,
        metrics: merged.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_storm_covers_every_decision_and_rung() {
        let spec = StormSpec::standard(HeapConfig::FocUndo);
        let stats = run_power_storm(&spec, 42);
        assert!(stats.outages >= 24, "{} outages", stats.outages);
        assert_eq!(
            stats.decision_cuts.len(),
            domain_decision_points(spec.shards),
            "every triage decision point crashed: {:?}",
            stats.decision_cuts
        );
        assert_eq!(stats.crash_rungs.len(), 3, "{:?}", stats.crash_rungs);
        assert!(stats.complete > 0, "some shards sealed complete images");
        assert!(stats.partial > 0, "some shards sealed priority-only images");
        assert!(stats.sacrificed > 0, "the shared window forced sacrifices");
        assert_eq!(
            stats.rebuilt, stats.sacrificed,
            "every sacrificed shard-epoch was rebuilt exactly once"
        );
        assert!(stats.rerouted_writes > 0, "rebuilds replayed routed writes");
        assert!(stats.presumed_aborts > 0, "in-doubt pairs presumed abort");
        assert!(
            stats.reclimbs_verified >= stats.outages / 2,
            "most recoveries were interrupted and re-climbed: {}",
            stats.reclimbs_verified
        );
        assert!(stats.power_cycles > stats.outages, "mid-recovery outages counted");
    }

    #[test]
    fn coordinator_shard_sacrifices_never_lose_decided_txns() {
        // The survival assertions live inside run_power_storm; what
        // this test pins is that the adversarial scenario actually
        // occurred — the coordinator's home shard was sacrificed while
        // transactions were in doubt — in both triage biases.
        for sacrifice_coordinator in [false, true] {
            let spec = StormSpec {
                sacrifice_coordinator,
                ..StormSpec::standard(HeapConfig::FocUndo)
            };
            let stats = run_power_storm(&spec, 7);
            assert!(
                stats.coordinator_shard_sacrifices >= 3,
                "bias {sacrifice_coordinator}: {} coordinator-shard sacrifices",
                stats.coordinator_shard_sacrifices
            );
        }
    }

    #[test]
    fn storms_are_reproducible() {
        let spec = StormSpec::standard(HeapConfig::FocStm);
        let once = run_power_storm(&spec, 1234);
        let twice = run_power_storm(&spec, 1234);
        assert_eq!(once, twice);
        assert_ne!(
            once.final_cells,
            run_power_storm(&spec, 1235).final_cells,
            "different seeds drive different storms"
        );
    }

    #[test]
    #[should_panic(expected = "flush-on-commit")]
    fn storm_rejects_flush_on_fail_configs() {
        let _ = run_power_storm(&StormSpec::standard(HeapConfig::Fof), 1);
    }

    #[test]
    fn parallel_storm_sweep_matches_serial() {
        let serial = sweep_power_storm_threads(HeapConfig::FocUndo, 4242, 1);
        assert_eq!(serial.points.len(), 6);
        assert_eq!(serial.decision_cuts_covered, domain_decision_points(3));
        assert_eq!(serial.crash_rungs_covered, 3);
        for threads in [2, 4] {
            let parallel = sweep_power_storm_threads(HeapConfig::FocUndo, 4242, threads);
            assert_eq!(parallel.points, serial.points, "{threads} threads");
            if let Err(report) =
                wsp_obs::diff_traces(&serial.trace, &parallel.trace, wsp_obs::DiffMode::Full)
            {
                panic!("{threads}-thread storm sweep trace diverges:\n{report}");
            }
            if let Some(diff) = serial.metrics.first_difference(&parallel.metrics) {
                panic!("{threads}-thread storm sweep metrics diverge: {diff}");
            }
        }
    }
}
