//! The domain supervisor: triaged, staged saves for many heaps sharing
//! **one** power domain.
//!
//! The PR 3 supervisor budgets a single heap against a private residual
//! window. Under a shared NVDIMM power domain there is no private
//! window: a brown-out gives every shard's flush a claim on the same
//! pool of joules ([`PowerDomain`]), and the supervisor must *choose*.
//! [`domain_save`] runs that choice:
//!
//! 1. The `PWR_OK` trace is debounced once, domain-wide.
//! 2. Every shard is scored for **urgency** — in-doubt 2PC pins (losing
//!    a prepared shard forfeits votes other shards' outcomes depend
//!    on), staleness since its last complete save, and dirty-line debt
//!    — and ranked.
//! 3. The global window is carved greedily in rank order: a shard whose
//!    full save (priority flush + bulk `wbinvd` share + marker + region
//!    arm) fits gets [`ShardVerdict::Complete`]; one whose priority
//!    stage fits gets [`ShardVerdict::PartialPriority`]; the rest are
//!    [`ShardVerdict::Sacrificed`] with a typed
//!    [`WspError::WindowExhausted`] refusal. Priority lines flush first
//!    everywhere before any bulk stage runs.
//! 4. Execution seals shards one at a time: per-region marker, then a
//!    region-scoped NVDIMM arm ([`NvramPool::save_range_within`]) whose
//!    retry backoff is bounded by the remaining window. A shard is
//!    durable exactly from its seal onward — a truncation before the
//!    seal leaves that shard with *no* marker, never a torn one.
//!
//! Every verdict is typed and every sacrifice carries a refusal: the
//! contract is the supervisor's "never a silent tear", applied
//! fleet-wide under contention.
//!
//! [`NvramPool::save_range_within`]: wsp_nvram::NvramPool::save_range_within

use wsp_cache::FlushMethod;
use wsp_machine::{CpuContext, Machine, SystemLoad};
use wsp_nvram::{NvramError, RegionMap};
use wsp_obs as obs;
use wsp_pheap::PersistentHeap;
use wsp_power::{PowerDomain, PwrOkSample, PwrOkVerdict};
use wsp_units::Nanos;

use crate::feasibility::{pool_save_feasibility, SaveFeasibility};
use crate::layout;
use crate::supervisor::MARKER_COST;
use crate::WspError;

/// Pool modules reserved for the domain's control state (CPU contexts,
/// global markers) ahead of the shard regions.
pub const DOMAIN_CONTROL_MODULES: usize = 1;

/// Urgency weight of one in-doubt 2PC pin: a prepared-but-undecided
/// transaction is worth a millisecond of staleness — losing it blocks
/// other shards' recovery, not just this one's.
const PIN_WEIGHT: Nanos = Nanos::from_millis(1);

/// Urgency weight of one dirty heap line (committed but unflushed).
const LINE_WEIGHT: Nanos = Nanos::from_micros(1);

/// Per-shard triage verdict under the shared window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardVerdict {
    /// Priority flush, bulk flush and seal all fit: the shard's region
    /// holds a complete, resumable image.
    Complete,
    /// Only the priority stage fit; the region's PARTIAL marker is set
    /// and the shard recovers by log replay.
    PartialPriority,
    /// The window could not cover even the priority stage (or power cut
    /// before the seal): the shard gets no durable image and a typed
    /// refusal — never an unmarked, torn one.
    Sacrificed,
}

impl ShardVerdict {
    /// Stable label for trace events.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShardVerdict::Complete => "complete",
            ShardVerdict::PartialPriority => "partial-priority",
            ShardVerdict::Sacrificed => "sacrificed",
        }
    }
}

/// One shard's triage score and plan, in rank order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTriage {
    /// Shard index.
    pub shard: usize,
    /// In-doubt 2PC pins held at triage time.
    pub pins: u64,
    /// Committed-but-unflushed heap lines.
    pub dirty_lines: u64,
    /// Time since the shard's last complete save.
    pub staleness: Nanos,
    /// The combined urgency score the ranking sorted by.
    pub urgency: Nanos,
    /// Window cost of a full save (both stages + seal).
    pub full_need: Nanos,
    /// Window cost of a priority-only save (stage A + seal).
    pub partial_need: Nanos,
    /// What the plan granted from the shared window.
    pub planned: ShardVerdict,
}

/// One shard's executed outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSaveReport {
    /// Shard index.
    pub shard: usize,
    /// Rank the triage assigned (0 = most urgent, first to flush).
    pub rank: usize,
    /// Final verdict after execution (a cut can downgrade the plan).
    pub verdict: ShardVerdict,
    /// Stage-A cost actually spent.
    pub stage_a: Nanos,
    /// Stage-B cost actually spent.
    pub stage_b: Nanos,
    /// True once the shard's region marker is stamped and its modules
    /// armed — the shard is durable from here, no matter what power
    /// does next.
    pub sealed: bool,
    /// The typed refusal behind a sacrifice.
    pub refusal: Option<WspError>,
}

/// How the domain save ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainVerdict {
    /// The trace was a glitch storm; nothing was touched on any shard.
    GlitchIgnored {
        /// Sub-threshold dips observed.
        dips: u32,
        /// The longest dip.
        longest_dip: Nanos,
    },
    /// The outage was real and the triage ran; per-shard verdicts are
    /// in [`DomainSaveReport::shards`].
    Triaged,
}

/// Budget constraints for a domain save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainBudget {
    /// Caps the global window below the measured value.
    pub window_cap: Option<Nanos>,
    /// Power dies at the start of this decision index: that decision
    /// and every later one do not execute
    /// (see [`domain_decision_points`]).
    pub cut_decision: Option<usize>,
    /// Save-command attempts per module (0 is treated as 1).
    pub max_attempts: u32,
}

impl DomainBudget {
    /// The unconstrained budget.
    #[must_use]
    pub fn trusting() -> Self {
        DomainBudget {
            window_cap: None,
            cut_decision: None,
            max_attempts: crate::supervisor::SaveBudget::DEFAULT_ATTEMPTS,
        }
    }
}

/// Everything a domain save needs, borrowed in one bundle.
pub struct DomainInput<'a> {
    /// The machine whose pool holds every shard's region.
    pub machine: &'a mut Machine,
    /// The shared power domain the window comes from.
    pub domain: &'a mut PowerDomain,
    /// The shards, in shard order.
    pub heaps: &'a mut [PersistentHeap],
    /// Per-shard time since the last complete save.
    pub staleness: &'a [Nanos],
    /// Load level (sets draw and the bulk-flush estimate).
    pub load: SystemLoad,
    /// The `PWR_OK` trace that triggered the save.
    pub trace: &'a [PwrOkSample],
    /// Budget constraints and injected cuts.
    pub budget: DomainBudget,
}

/// The domain save's full account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSaveReport {
    /// How the save ended.
    pub verdict: DomainVerdict,
    /// The global window the triage budgeted against.
    pub window: Nanos,
    /// Wall clock consumed.
    pub used: Nanos,
    /// Shortfall of the window against full saves everywhere (zero when
    /// every shard fit [`ShardVerdict::Complete`]).
    pub deficit: Nanos,
    /// Triage scores in rank order (most urgent first).
    pub triage: Vec<ShardTriage>,
    /// Per-shard outcomes in *shard* order.
    pub shards: Vec<ShardSaveReport>,
    /// Decision points that actually executed (a cut truncates).
    pub decisions_taken: usize,
    /// True once the control region (contexts, global state) was armed.
    pub armed: bool,
    /// Save-command retries absorbed across all region arms.
    pub retries: u32,
    /// Simulated time spent in retry backoff.
    pub backoff: Nanos,
}

impl DomainSaveReport {
    /// Shards by final verdict.
    #[must_use]
    pub fn count(&self, verdict: ShardVerdict) -> usize {
        self.shards.iter().filter(|s| s.verdict == verdict).count()
    }
}

/// Number of injectable decision points in a `shards`-wide domain save:
/// the triage gate, the contexts stage, then a flush and a seal
/// decision per rank, and the final control-region arm.
#[must_use]
pub fn domain_decision_points(shards: usize) -> usize {
    3 + 2 * shards
}

/// Runs the triaged, staged domain save. Mutates `machine` (contexts,
/// region markers, region arms), `domain` (reservation scopes) and each
/// heap (priority lines flushed) exactly as far as the budget and the
/// injected cut allow — and no further.
///
/// # Errors
///
/// [`WspError::Monitor`] for a malformed `PWR_OK` trace and
/// [`WspError::Nvram`] for an unusable pool (module powered off).
/// Window shortfalls, sacrifices and command failures are typed
/// verdicts inside the report, not errors.
///
/// # Panics
///
/// Panics when `staleness.len() != heaps.len()` or the machine's pool
/// cannot give every shard a module past the control prefix.
#[allow(clippy::too_many_lines)]
pub fn domain_save(input: DomainInput<'_>) -> Result<DomainSaveReport, WspError> {
    let DomainInput {
        machine,
        domain,
        heaps,
        staleness,
        load,
        trace,
        budget,
    } = input;
    let shard_count = heaps.len();
    assert_eq!(
        staleness.len(),
        shard_count,
        "one staleness entry per shard"
    );
    let monitor = machine.monitor().clone();
    let profile = machine.profile().clone();

    // Decision 0a: debounce, domain-wide. A glitch touches nothing.
    match monitor.classify_pwr_ok(trace)? {
        PwrOkVerdict::Glitch { dips, longest_dip } => {
            obs::emit(
                "domain",
                "glitch_ignored",
                longest_dip,
                i64::from(dips),
                longest_dip.as_nanos() as i64,
            );
            obs::count(obs::Ctr::GlitchesIgnored);
            return Ok(DomainSaveReport {
                verdict: DomainVerdict::GlitchIgnored { dips, longest_dip },
                window: Nanos::ZERO,
                used: Nanos::ZERO,
                deficit: Nanos::ZERO,
                triage: Vec::new(),
                shards: Vec::new(),
                decisions_taken: 0,
                armed: false,
                retries: 0,
                backoff: Nanos::ZERO,
            });
        }
        PwrOkVerdict::PowerFail { .. } => {}
    }

    let total_decisions = domain_decision_points(shard_count);
    let cut_at = budget.cut_decision;
    let truncated = |decision: usize| cut_at.is_some_and(|c| decision >= c.min(total_decisions));

    // The *global* window: one number for the whole fleet.
    let measured = domain.global_window();
    let window = budget.window_cap.map_or(measured, |cap| cap.min(measured));
    let mut used = monitor.debounce + monitor.interrupt_latency + profile.ipi_latency;
    obs::gauge_set(obs::Gauge::ResidualWindow, window.as_nanos() as i64);
    obs::emit(
        "domain",
        "outage_detected",
        used,
        window.as_nanos() as i64,
        cut_at.map_or(-1, |c| c as i64),
    );

    let regions = RegionMap::partition(machine.nvram(), shard_count, DOMAIN_CONTROL_MODULES);
    let arm_cost = monitor.i2c_command_latency;
    let contexts_cost = profile.context_save;
    let attempts = budget.max_attempts.max(1);

    // Decision 0b: feasibility + triage plan. The scores and needs are
    // probed on clones — planning costs no trace events.
    let infeasible = match pool_save_feasibility(machine.nvram()) {
        SaveFeasibility::Degraded { reason } => Some(reason),
        _ => None,
    };
    let stage_b_share = machine
        .flush_analysis()
        .flush_time(FlushMethod::Wbinvd, machine.dirty_estimate(load) / shard_count as u64);
    let mut triage: Vec<ShardTriage> = heaps
        .iter()
        .enumerate()
        .map(|(shard, heap)| {
            let pins = heap.in_doubt_pins();
            let dirty_lines = heap.unflushed_line_count();
            let stage_a = {
                let mut probe = heap.clone();
                let (cost, _hypothetical) = obs::capture(|| probe.priority_flush());
                cost
            };
            let urgency = (PIN_WEIGHT * pins)
                .saturating_add(staleness[shard])
                .saturating_add(LINE_WEIGHT * dirty_lines);
            ShardTriage {
                shard,
                pins,
                dirty_lines,
                staleness: staleness[shard],
                urgency,
                full_need: stage_a + stage_b_share + MARKER_COST + arm_cost,
                partial_need: stage_a + MARKER_COST + arm_cost,
                planned: ShardVerdict::Sacrificed,
            }
        })
        .collect();
    // Most urgent first; shard index breaks ties deterministically.
    triage.sort_by(|a, b| b.urgency.cmp(&a.urgency).then(a.shard.cmp(&b.shard)));

    // Greedy carve: priority stages are cheap and flush first
    // everywhere, so grant them in rank order; bulk stages only for
    // shards whose full need still fits.
    let fixed = used + contexts_cost + arm_cost; // detection, contexts, control arm
    let mut remaining = window.saturating_sub(fixed);
    let mut full_demand = fixed;
    domain.release_all();
    for t in &mut triage {
        full_demand = full_demand.saturating_add(t.full_need);
        if infeasible.is_some() {
            continue; // every shard stays Sacrificed
        }
        let (granted, verdict) = if t.full_need <= remaining {
            (t.full_need, ShardVerdict::Complete)
        } else if t.partial_need <= remaining {
            (t.partial_need, ShardVerdict::PartialPriority)
        } else {
            (Nanos::ZERO, ShardVerdict::Sacrificed)
        };
        if verdict != ShardVerdict::Sacrificed {
            remaining = remaining.saturating_sub(granted);
            domain.reserve_for(t.shard, granted);
        }
        t.planned = verdict;
    }
    let deficit = full_demand.saturating_sub(window);
    obs::gauge_set(obs::Gauge::WindowDeficit, deficit.as_nanos() as i64);
    obs::count(obs::Ctr::DomainTriageRuns);
    for (rank, t) in triage.iter().enumerate() {
        obs::emit_detail(
            "domain",
            "triage",
            used,
            t.shard as i64,
            rank as i64,
            t.planned.label().into(),
        );
    }

    let mut shards: Vec<ShardSaveReport> = (0..shard_count)
        .map(|shard| ShardSaveReport {
            shard,
            rank: triage.iter().position(|t| t.shard == shard).expect("ranked"),
            verdict: ShardVerdict::Sacrificed,
            stage_a: Nanos::ZERO,
            stage_b: Nanos::ZERO,
            sealed: false,
            refusal: None,
        })
        .collect();
    let mut retries = 0u32;
    let mut backoff = Nanos::ZERO;
    let mut decisions_taken = 0usize;
    let mut armed = false;

    let finish = |verdict: DomainVerdict,
                  used: Nanos,
                  shards: Vec<ShardSaveReport>,
                  triage: Vec<ShardTriage>,
                  decisions_taken: usize,
                  armed: bool,
                  retries: u32,
                  backoff: Nanos,
                  domain: &mut PowerDomain| {
        let sacrificed = shards
            .iter()
            .filter(|s| s.verdict == ShardVerdict::Sacrificed)
            .count();
        obs::count_by(obs::Ctr::ShardsSacrificed, sacrificed as u64);
        obs::observe(obs::Hist::DomainUsed, used);
        obs::emit(
            "domain",
            "save_done",
            used,
            (shards.len() - sacrificed) as i64,
            sacrificed as i64,
        );
        domain.release_all();
        DomainSaveReport {
            verdict,
            window,
            used,
            deficit,
            triage,
            shards,
            decisions_taken,
            armed,
            retries,
            backoff,
        }
    };
    macro_rules! bail {
        () => {
            return Ok(finish(
                DomainVerdict::Triaged,
                used,
                shards,
                triage,
                decisions_taken,
                armed,
                retries,
                backoff,
                domain,
            ))
        };
    }
    let sacrifice = |report: &mut ShardSaveReport, refusal: WspError, used: Nanos| {
        obs::emit_detail(
            "domain",
            "shard_sacrificed",
            used,
            report.shard as i64,
            0,
            refusal.kind().to_string(),
        );
        report.verdict = ShardVerdict::Sacrificed;
        report.refusal = Some(refusal);
    };

    // Decision 0 complete (gate + plan).
    if truncated(0) {
        for s in &mut shards {
            s.refusal = Some(WspError::WindowExhausted {
                needed: triage[s.rank].partial_need,
                window: Nanos::ZERO,
            });
        }
        bail!();
    }
    decisions_taken = 1;
    if let Some(reason) = infeasible {
        for s in &mut shards {
            s.refusal = Some(WspError::BackendRecoveryRequired {
                reason: format!("NVDIMM save infeasible: {reason}"),
            });
        }
        bail!();
    }

    // Decision 1: contexts — cheapest, most valuable bytes first.
    if truncated(1) {
        for s in &mut shards {
            let refusal = WspError::WindowExhausted {
                needed: triage[s.rank].partial_need,
                window: window.saturating_sub(used),
            };
            sacrifice(s, refusal, used);
        }
        bail!();
    }
    let contexts: Vec<(u32, CpuContext)> = machine
        .cores()
        .iter()
        .map(|c| (c.id, c.context))
        .collect();
    let core_count = contexts.len() as u64;
    machine
        .nvram_mut()
        .write(layout::CORE_COUNT_ADDR, &core_count.to_le_bytes());
    for (id, ctx) in &contexts {
        let addr = layout::CONTEXTS_BASE + u64::from(*id) * CpuContext::SIZE;
        machine.nvram_mut().write(addr, &ctx.to_bytes());
    }
    used += contexts_cost;
    decisions_taken = 2;
    obs::emit(
        "domain",
        "contexts_saved",
        used,
        core_count as i64,
        contexts_cost.as_nanos() as i64,
    );

    // Per-rank flush + seal decisions.
    let plan: Vec<(usize, ShardVerdict)> = triage.iter().map(|t| (t.shard, t.planned)).collect();
    'ranks: for (rank, &(shard, planned)) in plan.iter().enumerate() {
        let flush_decision = 2 + 2 * rank;
        let seal_decision = 3 + 2 * rank;

        if truncated(flush_decision) {
            for &(late_shard, _) in &plan[rank..] {
                let refusal = WspError::WindowExhausted {
                    needed: triage.iter().find(|t| t.shard == late_shard).expect("ranked").partial_need,
                    window: window.saturating_sub(used),
                };
                sacrifice(&mut shards[late_shard], refusal, used);
            }
            bail!();
        }
        decisions_taken = flush_decision + 1;
        if planned == ShardVerdict::Sacrificed {
            let refusal = WspError::WindowExhausted {
                needed: triage.iter().find(|t| t.shard == shard).expect("ranked").partial_need,
                window: window.saturating_sub(used),
            };
            sacrifice(&mut shards[shard], refusal, used);
            continue 'ranks;
        }

        // Stage A on the live heap (the plan probed a clone, so the
        // cost matches); stage B is charged only for full grants.
        let stage_a = heaps[shard].priority_flush();
        used += stage_a;
        shards[shard].stage_a = stage_a;
        let mut verdict = planned;
        if verdict == ShardVerdict::Complete {
            // Retry backoff upstream may have eaten the bulk share;
            // downgrade rather than overrun.
            if used + stage_b_share + MARKER_COST + arm_cost <= window {
                used += stage_b_share;
                shards[shard].stage_b = stage_b_share;
            } else {
                verdict = ShardVerdict::PartialPriority;
            }
        }
        obs::emit_detail(
            "domain",
            "shard_flushed",
            used,
            shard as i64,
            (stage_a + shards[shard].stage_b).as_nanos() as i64,
            verdict.label().into(),
        );

        if truncated(seal_decision) {
            // Flushed but unmarked: honest sacrifice, not a tear —
            // nothing attests to this region, so recovery will not
            // trust it.
            let refusal = WspError::WindowExhausted {
                needed: MARKER_COST + arm_cost,
                window: window.saturating_sub(used),
            };
            sacrifice(&mut shards[shard], refusal, used);
            for &(late_shard, _) in &plan[rank + 1..] {
                let refusal = WspError::WindowExhausted {
                    needed: triage.iter().find(|t| t.shard == late_shard).expect("ranked").partial_need,
                    window: window.saturating_sub(used),
                };
                sacrifice(&mut shards[late_shard], refusal, used);
            }
            bail!();
        }
        decisions_taken = seal_decision + 1;
        if used + MARKER_COST + arm_cost > window {
            let refusal = WspError::WindowExhausted {
                needed: MARKER_COST + arm_cost,
                window: window.saturating_sub(used),
            };
            sacrifice(&mut shards[shard], refusal, used);
            continue 'ranks;
        }
        let region = regions.region(shard);
        if verdict == ShardVerdict::Complete {
            machine
                .nvram_mut()
                .write(region.marker_addr(), &layout::VALID_MAGIC.to_le_bytes());
        } else {
            machine.nvram_mut().write(
                region.partial_marker_addr(),
                &layout::PARTIAL_MAGIC.to_le_bytes(),
            );
        }
        used += MARKER_COST;
        let arm_window = window.saturating_sub(used + arm_cost);
        match machine
            .nvram_mut()
            .save_range_within(region.modules.clone(), attempts, arm_window)
        {
            Ok(r) => {
                used += arm_cost + r.backoff;
                retries += r.retries;
                backoff += r.backoff;
                shards[shard].sealed = true;
                shards[shard].verdict = verdict;
                obs::emit_detail(
                    "domain",
                    "shard_sealed",
                    used,
                    shard as i64,
                    rank as i64,
                    verdict.label().into(),
                );
            }
            Err(NvramError::RetryWindowExhausted { needed, budget, .. }) => {
                used += arm_cost;
                let refusal = WspError::WindowExhausted {
                    needed,
                    window: budget,
                };
                sacrifice(&mut shards[shard], refusal, used);
            }
            Err(NvramError::SaveCommandFailed { attempts }) => {
                used += arm_cost;
                let refusal = WspError::Nvram(NvramError::SaveCommandFailed { attempts });
                sacrifice(&mut shards[shard], refusal, used);
            }
            Err(other) => return Err(other.into()),
        }
    }

    // Final decision: arm the control region (contexts + global state).
    let control_decision = 2 + 2 * shard_count;
    if truncated(control_decision) {
        bail!();
    }
    decisions_taken = control_decision + 1;
    if used + arm_cost <= window {
        let arm_window = window.saturating_sub(used + arm_cost);
        match machine
            .nvram_mut()
            .save_range_within(0..DOMAIN_CONTROL_MODULES, attempts, arm_window)
        {
            Ok(r) => {
                used += arm_cost + r.backoff;
                retries += r.retries;
                backoff += r.backoff;
                armed = true;
                obs::emit(
                    "domain",
                    "control_armed",
                    used,
                    r.retries as i64,
                    r.backoff.as_nanos() as i64,
                );
            }
            Err(
                NvramError::RetryWindowExhausted { .. } | NvramError::SaveCommandFailed { .. },
            ) => {
                used += arm_cost;
            }
            Err(other) => return Err(other.into()),
        }
    }

    for core in machine.cores_mut().iter_mut() {
        core.halted = true;
    }
    bail!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsp_pheap::HeapConfig;
    use wsp_power::{Psu, Ultracapacitor};
    use wsp_units::{ByteSize, Farads, Volts, Watts};

    use crate::supervisor::clean_failure_trace;

    fn storm_domain(shards: usize) -> PowerDomain {
        let reserve =
            Ultracapacitor::new(Farads::new(0.5), Volts::new(12.0), Volts::new(6.0));
        PowerDomain::new(Psu::atx_750w(), reserve, Watts::new(300.0), shards)
    }

    fn shard_fleet(n: usize) -> Vec<PersistentHeap> {
        (0..n)
            .map(|i| {
                let mut heap = PersistentHeap::create(ByteSize::kib(256), HeapConfig::FocUndo);
                let mut tx = heap.begin();
                let p = tx.alloc(8).expect("room");
                tx.write_word(p, 0xA0 + i as u64).expect("writable");
                tx.set_root(p).expect("root");
                tx.commit().expect("commit");
                heap
            })
            .collect()
    }

    fn save_with(
        budget: DomainBudget,
        staleness: &[Nanos],
    ) -> (DomainSaveReport, Vec<PersistentHeap>) {
        let mut machine = Machine::intel_testbed();
        machine.apply_load(SystemLoad::Busy, 9);
        let mut domain = storm_domain(3);
        let mut heaps = shard_fleet(3);
        let report = domain_save(DomainInput {
            machine: &mut machine,
            domain: &mut domain,
            heaps: &mut heaps,
            staleness,
            load: SystemLoad::Busy,
            trace: &clean_failure_trace(),
            budget,
        })
        .expect("verdict, not error");
        (report, heaps)
    }

    #[test]
    fn ample_window_completes_every_shard() {
        let (report, _) = save_with(DomainBudget::trusting(), &[Nanos::ZERO; 3]);
        assert_eq!(report.verdict, DomainVerdict::Triaged);
        assert_eq!(report.count(ShardVerdict::Complete), 3);
        assert!(report.armed);
        assert_eq!(report.deficit, Nanos::ZERO);
        assert!(report.shards.iter().all(|s| s.sealed && s.refusal.is_none()));
        assert_eq!(
            report.decisions_taken,
            domain_decision_points(3),
            "every decision executed"
        );
    }

    #[test]
    fn staleness_orders_the_triage() {
        let staleness = [Nanos::from_millis(1), Nanos::from_millis(9), Nanos::from_millis(5)];
        let (report, _) = save_with(DomainBudget::trusting(), &staleness);
        let ranks: Vec<usize> = report.triage.iter().map(|t| t.shard).collect();
        assert_eq!(ranks, vec![1, 2, 0], "most stale flushes first");
    }

    #[test]
    fn tight_window_triages_complete_partial_sacrificed() {
        // Window: fixed costs + shard 1's full save + shard 2's priority
        // stage — shard 0 (least stale) must be sacrificed, typed.
        let staleness = [Nanos::ZERO, Nanos::from_millis(9), Nanos::from_millis(5)];
        let probe = {
            let (mut report, _) = save_with(DomainBudget::trusting(), &staleness);
            report.triage.sort_by_key(|t| t.shard);
            report
        };
        let mut machine = Machine::intel_testbed();
        machine.apply_load(SystemLoad::Busy, 9);
        let detection = machine.monitor().debounce
            + machine.monitor().interrupt_latency
            + machine.profile().ipi_latency;
        let fixed = detection
            + machine.profile().context_save
            + machine.monitor().i2c_command_latency;
        let cap = fixed + probe.triage[1].full_need + probe.triage[2].partial_need;
        let (report, _) = save_with(
            DomainBudget {
                window_cap: Some(cap),
                ..DomainBudget::trusting()
            },
            &staleness,
        );
        assert_eq!(report.shards[1].verdict, ShardVerdict::Complete);
        assert_eq!(report.shards[2].verdict, ShardVerdict::PartialPriority);
        assert_eq!(report.shards[0].verdict, ShardVerdict::Sacrificed);
        assert!(matches!(
            report.shards[0].refusal,
            Some(WspError::WindowExhausted { .. })
        ));
        assert!(report.deficit > Nanos::ZERO);
        assert!(report.shards[1].sealed && report.shards[2].sealed);
        assert!(!report.shards[0].sealed, "a sacrifice leaves no marker");
    }

    #[test]
    fn pins_outrank_staleness() {
        let mut machine = Machine::intel_testbed();
        machine.apply_load(SystemLoad::Busy, 9);
        let mut domain = storm_domain(3);
        let mut heaps = shard_fleet(3);
        // Shard 0 holds an in-doubt prepared transaction; shard 2 is
        // merely stale.
        heaps[0]
            .prepare_distributed(1 << 48, &[(64, 7)])
            .expect("preparable");
        let staleness = [Nanos::ZERO, Nanos::ZERO, Nanos::from_micros(900)];
        let report = domain_save(DomainInput {
            machine: &mut machine,
            domain: &mut domain,
            heaps: &mut heaps,
            staleness: &staleness,
            load: SystemLoad::Busy,
            trace: &clean_failure_trace(),
            budget: DomainBudget::trusting(),
        })
        .expect("verdict");
        assert_eq!(
            report.triage[0].shard, 0,
            "a 2PC pin outweighs sub-millisecond staleness"
        );
        assert_eq!(report.triage[0].pins, 1);
    }

    #[test]
    fn every_cut_decision_yields_typed_verdicts_and_no_silent_tear() {
        for cut in 0..domain_decision_points(3) {
            let (report, _) = save_with(
                DomainBudget {
                    cut_decision: Some(cut),
                    ..DomainBudget::trusting()
                },
                &[Nanos::ZERO; 3],
            );
            assert!(
                report.decisions_taken <= cut.max(1),
                "cut {cut}: no decision at or past the cut may run \
                 (took {})",
                report.decisions_taken
            );
            for s in &report.shards {
                if s.verdict == ShardVerdict::Sacrificed {
                    assert!(
                        s.refusal.is_some(),
                        "cut {cut}: sacrifice of shard {} must be typed",
                        s.shard
                    );
                    assert!(!s.sealed);
                } else {
                    assert!(s.sealed, "cut {cut}: surviving verdicts are sealed");
                }
            }
            // Monotone: ranks seal in order, so a sealed shard never
            // follows a sacrificed one in rank order.
            let mut seen_sacrifice = false;
            let mut by_rank: Vec<&ShardSaveReport> = report.shards.iter().collect();
            by_rank.sort_by_key(|s| s.rank);
            for s in by_rank {
                if s.verdict == ShardVerdict::Sacrificed {
                    seen_sacrifice = true;
                } else {
                    assert!(
                        !seen_sacrifice,
                        "cut {cut}: sealed shard {} after a sacrifice",
                        s.shard
                    );
                }
            }
        }
    }

    #[test]
    fn glitch_storms_touch_nothing() {
        let mut machine = Machine::intel_testbed();
        machine.apply_load(SystemLoad::Busy, 9);
        let mut domain = storm_domain(3);
        let mut heaps = shard_fleet(3);
        let report = domain_save(DomainInput {
            machine: &mut machine,
            domain: &mut domain,
            heaps: &mut heaps,
            staleness: &[Nanos::ZERO; 3],
            load: SystemLoad::Busy,
            trace: &crate::supervisor::glitch_storm_trace(4),
            budget: DomainBudget::trusting(),
        })
        .expect("verdict");
        assert!(matches!(report.verdict, DomainVerdict::GlitchIgnored { dips: 4, .. }));
        assert!(report.shards.is_empty());
        assert!(!machine.nvram().all_saved());
        assert!(machine.cores().iter().all(|c| !c.halted));
    }
}
